//! Executable checks of the paper's central claims at test scale. These
//! are the claims EXPERIMENTS.md reports at benchmark scale; here they are
//! asserted as invariants so regressions that break a *shape* fail CI.

use std::sync::atomic::Ordering;
use unikv::{UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;
use unikv_hashstore::{HashStore, HashStoreOptions};
use unikv_lsm::{Baseline, LsmDb, LsmOptions};
use unikv_workload::{format_key, make_value};

fn load_unikv(opts: UniKvOptions, n: u64, vs: usize) -> UniKv {
    let db = UniKv::open(MemEnv::shared(), "/db", opts).unwrap();
    // Deterministic shuffle so UnsortedStore tables overlap.
    let mut order: Vec<u64> = (0..n).collect();
    let mut s = 0xabcdu64;
    for i in (1..order.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    for i in order {
        db.put(&format_key(i), &make_value(i, 0, vs)).unwrap();
    }
    db
}

/// Claim (§Hash indexing): the two-level hash index resolves UnsortedStore
/// lookups with ~1 table probe; without it, lookups scan overlapping
/// tables.
#[test]
fn claim_hash_index_cuts_table_probes() {
    let probes_per_get = |enable: bool| {
        let mut opts = UniKvOptions::small_for_tests();
        opts.enable_hash_index = enable;
        opts.enable_scan_optimization = false; // keep tables overlapping
        opts.unsorted_limit_bytes = 64 << 20; // everything stays unsorted
        opts.enable_partitioning = false;
        let db = load_unikv(opts, 2_000, 100);
        let reads = 500u64;
        for i in 0..reads {
            let k = (i * 7919) % 2_000;
            assert!(db.get(&format_key(k)).unwrap().is_some());
        }
        db.stats().tables_checked.load(Ordering::Relaxed) as f64 / reads as f64
    };
    let with_index = probes_per_get(true);
    let without = probes_per_get(false);
    assert!(
        with_index < 1.6,
        "indexed lookups should touch ~1 table, got {with_index}"
    );
    assert!(
        without > with_index * 2.0,
        "unindexed ({without}) should probe far more tables than indexed ({with_index})"
    );
}

/// Claim (§Partial KV separation): merges do not rewrite already-separated
/// values, so merge write volume is far below the no-separation variant.
#[test]
fn claim_partial_separation_cuts_merge_writes() {
    let merge_bytes = |separate: bool| {
        let mut opts = UniKvOptions::small_for_tests();
        opts.enable_kv_separation = separate;
        opts.enable_partitioning = false;
        let db = load_unikv(opts, 1_500, 200);
        db.compact_all().unwrap();
        let before = db.stats().merge_bytes_written.load(Ordering::Relaxed);
        // Second batch of fresh keys, then merge again.
        for i in 1_500..2_250u64 {
            db.put(&format_key(i), &make_value(i, 1, 200)).unwrap();
        }
        db.compact_all().unwrap();
        db.stats().merge_bytes_written.load(Ordering::Relaxed) - before
    };
    let with_sep = merge_bytes(true);
    let without = merge_bytes(false);
    assert!(
        without as f64 > with_sep as f64 * 1.5,
        "no-separation merge ({without}B) should rewrite much more than \
         separation ({with_sep}B)"
    );
}

/// Claim (§Memory overhead): the hash index costs 8 B per resident entry
/// and a small fraction of the data it indexes.
#[test]
fn claim_index_memory_overhead_small() {
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_partitioning = false;
    let db = load_unikv(opts, 3_000, 200);
    let idx = db.index_memory_bytes() as f64;
    let data = db.logical_bytes() as f64;
    assert!(idx < 0.05 * data, "index {idx}B vs data {data}B");
}

/// Claim (§Motivation, Fig. 2a): with bounded memory, a hash store's read
/// cost grows linearly with data while the LSM's stays near-logarithmic.
#[test]
fn claim_hash_store_degrades_with_scale() {
    let env = MemEnv::shared();
    let hs = HashStore::create(
        env,
        "/hs",
        HashStoreOptions {
            num_buckets: 64,
            sync_writes: false,
        },
    )
    .unwrap();
    let mut probes_at = Vec::new();
    for (lo, hi) in [(0u64, 2_000u64), (2_000, 8_000)] {
        for i in lo..hi {
            hs.put(&format_key(i), b"v").unwrap();
        }
        let mut probes = 0;
        for i in 0..200 {
            probes += hs.get_traced(&format_key(i * (hi - 1) / 200)).unwrap().1;
        }
        probes_at.push(probes);
    }
    assert!(
        probes_at[1] > probes_at[0] * 2,
        "hash-store probe cost should grow with data: {probes_at:?}"
    );
    assert!(hs.scan(b"", 10).is_err(), "hash stores cannot scan");
}

/// Claim (§I/O cost): UniKV's write amplification on a random load is
/// below the leveled-LSM baseline's.
#[test]
fn claim_write_amp_below_leveled_lsm() {
    let n = 6_000u64;
    let vs = 128usize;
    let mut uopts = UniKvOptions::small_for_tests();
    uopts.write_buffer_size = 8 << 10;
    uopts.unsorted_limit_bytes = 64 << 10;
    uopts.partition_size_limit = 256 << 10;
    let uni = UniKv::open(MemEnv::shared(), "/u", uopts).unwrap();

    let mut lopts = LsmOptions::baseline(Baseline::LevelDb);
    lopts.write_buffer_size = 8 << 10;
    lopts.table_size = 8 << 10;
    lopts.base_level_bytes = 32 << 10;
    let lsm = LsmDb::open(MemEnv::shared(), "/l", lopts).unwrap();

    let mut s = 0x1234u64;
    let mut order: Vec<u64> = (0..n).collect();
    for i in (1..order.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    for &i in &order {
        uni.put(&format_key(i), &make_value(i, 0, vs)).unwrap();
        lsm.put(&format_key(i), &make_value(i, 0, vs)).unwrap();
    }
    let uni_wa = uni.stats().write_amplification();
    let lsm_wa = lsm.stats().write_amplification();
    assert!(
        uni_wa < lsm_wa,
        "UniKV WA ({uni_wa:.2}) should undercut leveled LSM WA ({lsm_wa:.2})"
    );
}

/// Claim (§Dynamic range partitioning): partitions have disjoint ranges,
/// reads route to exactly one, and scans cross boundaries seamlessly.
#[test]
fn claim_partitioning_scales_out() {
    let db = load_unikv(UniKvOptions::small_for_tests(), 4_000, 128);
    assert!(db.partition_count() >= 2, "expected splits");
    let bounds = db.partition_boundaries();
    assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    let items = db.scan(&format_key(0), 3_000).unwrap();
    assert_eq!(items.len(), 3_000);
    assert!(items.windows(2).all(|w| w[0].key < w[1].key));
}

/// Claim (§Scan optimization): the size-based merge keeps scans efficient
/// while leaving point-read results identical.
#[test]
fn claim_scan_merge_preserves_results() {
    let run = |opt: bool| {
        let mut opts = UniKvOptions::small_for_tests();
        opts.enable_scan_optimization = opt;
        let db = load_unikv(opts, 2_000, 100);
        db.scan(&format_key(500), 100).unwrap()
    };
    assert_eq!(run(true), run(false));
}
