//! Crash-consistency matrix: crash the UniKV engine at many points in a
//! randomized workload and verify that recovery never loses synced data,
//! never resurrects deleted data, and always yields an internally
//! consistent store.

use std::collections::BTreeMap;
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;
use unikv_workload::{format_key, make_value};

fn crash_opts() -> UniKvOptions {
    UniKvOptions {
        sync_writes: true, // every committed write must survive
        ..UniKvOptions::small_for_tests()
    }
}

/// With `sync_writes`, every acknowledged operation must survive a crash
/// at any point, across many crash positions.
#[test]
fn synced_writes_survive_crashes_at_many_points() {
    for crash_after in [50u64, 333, 1_000, 2_500, 4_999] {
        let fault = FaultInjectionEnv::new(MemEnv::shared());
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        {
            let db = UniKv::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
            let mut s = crash_after; // varied seed per scenario
            for i in 0..crash_after {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = format_key(s % 400);
                if s % 13 == 0 {
                    db.delete(&k).unwrap();
                    model.insert(k, None);
                } else {
                    let v = make_value(i, 9, 60);
                    db.put(&k, &v).unwrap();
                    model.insert(k, Some(v));
                }
            }
        }
        fault.crash().unwrap();
        let db = UniKv::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
        for (k, expect) in &model {
            assert_eq!(
                db.get(k).unwrap().as_ref(),
                expect.as_ref(),
                "crash_after={crash_after}, key={}",
                String::from_utf8_lossy(k)
            );
        }
        // Scans must agree with the surviving model too.
        let live: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v)))
            .collect();
        let scanned = db.scan(b"", live.len() + 10).unwrap();
        assert_eq!(scanned.len(), live.len(), "crash_after={crash_after}");
        for (got, (k, v)) in scanned.iter().zip(&live) {
            assert_eq!(&got.key, k);
            assert_eq!(&got.value, v);
        }
    }
}

/// Repeated crash → recover → write cycles must not corrupt the store.
#[test]
fn repeated_crash_cycles() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for round in 0..6u64 {
        {
            let db = UniKv::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
            // Everything from prior rounds must still be there.
            for (k, v) in &expect {
                assert_eq!(
                    db.get(k).unwrap().as_deref(),
                    Some(v.as_slice()),
                    "round {round}"
                );
            }
            for i in 0..400u64 {
                let k = format_key(round * 400 + i);
                let v = make_value(i, round, 80);
                db.put(&k, &v).unwrap();
                expect.insert(k, v);
            }
        }
        fault.crash().unwrap();
    }
    let db = UniKv::open(fault as Arc<_>, "/db", crash_opts()).unwrap();
    assert_eq!(db.scan(b"", 10_000).unwrap().len(), expect.len());
}

/// Injected write failures surface as errors and do not corrupt prior
/// state once the fault clears and the database is reopened.
#[test]
fn write_errors_do_not_corrupt() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    {
        let db = UniKv::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
        for i in 0..500u64 {
            db.put(&format_key(i), &make_value(i, 0, 60)).unwrap();
        }
        fault.fail_after_appends(40);
        let mut saw_error = false;
        for i in 500..2_000u64 {
            if db.put(&format_key(i), &make_value(i, 0, 60)).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "injected failure should surface");
        fault.clear_failures();
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault as Arc<_>, "/db", crash_opts()).unwrap();
    for i in 0..500u64 {
        assert_eq!(
            db.get(&format_key(i)).unwrap(),
            Some(make_value(i, 0, 60)),
            "pre-failure key {i} lost"
        );
    }
    // Store remains writable.
    db.put(b"recovered", b"yes").unwrap();
    assert_eq!(db.get(b"recovered").unwrap(), Some(b"yes".to_vec()));
}

/// Crashing right after heavy structural activity (merges, GC, splits)
/// loses nothing: the META commit protocol covers every transition.
#[test]
fn crash_after_structural_operations() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let n = 3_000u64;
    {
        let db = UniKv::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
        for i in 0..n {
            db.put(&format_key(i), &make_value(i, 0, 120)).unwrap();
        }
        // Overwrite a third to build garbage, then force merge + GC.
        for i in 0..n / 3 {
            db.put(&format_key(i * 3), &make_value(i, 1, 120)).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        db.force_gc().unwrap();
        assert!(db.partition_count() >= 2, "want splits before the crash");
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault as Arc<_>, "/db", crash_opts()).unwrap();
    for i in (0..n).step_by(97) {
        let expect = if i % 3 == 0 && i / 3 < n / 3 {
            make_value(i / 3, 1, 120)
        } else {
            make_value(i, 0, 120)
        };
        assert_eq!(db.get(&format_key(i)).unwrap(), Some(expect), "key {i}");
    }
}
