//! Cross-crate integration: the same randomized workload applied to
//! UniKV, all four LSM baselines, and a BTreeMap reference model must
//! produce identical read/scan results everywhere.

use std::collections::BTreeMap;
use std::path::Path;
use unikv::{UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;
use unikv_lsm::{Baseline, LsmDb, LsmOptions};

fn small_lsm(b: Baseline) -> LsmOptions {
    let mut o = LsmOptions::baseline(b);
    o.write_buffer_size = 8 << 10;
    o.table_size = 8 << 10;
    o.base_level_bytes = 32 << 10;
    o
}

#[allow(clippy::large_enum_variant)]
enum AnyDb {
    Uni(UniKv),
    Lsm(LsmDb),
}

impl AnyDb {
    fn put(&self, k: &[u8], v: &[u8]) {
        match self {
            AnyDb::Uni(db) => db.put(k, v).unwrap(),
            AnyDb::Lsm(db) => db.put(k, v).unwrap(),
        }
    }
    fn delete(&self, k: &[u8]) {
        match self {
            AnyDb::Uni(db) => db.delete(k).unwrap(),
            AnyDb::Lsm(db) => db.delete(k).unwrap(),
        }
    }
    fn get(&self, k: &[u8]) -> Option<Vec<u8>> {
        match self {
            AnyDb::Uni(db) => db.get(k).unwrap(),
            AnyDb::Lsm(db) => db.get(k).unwrap(),
        }
    }
    fn scan(&self, from: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let items = match self {
            AnyDb::Uni(db) => db.scan(from, limit).unwrap(),
            AnyDb::Lsm(db) => db.scan(from, limit).unwrap(),
        };
        items.into_iter().map(|i| (i.key, i.value)).collect()
    }
}

fn engines() -> Vec<(String, AnyDb)> {
    let mut v = Vec::new();
    let env = MemEnv::shared();
    v.push((
        "unikv".to_string(),
        AnyDb::Uni(UniKv::open(env, "/u", UniKvOptions::small_for_tests()).unwrap()),
    ));
    for b in Baseline::all() {
        let env = MemEnv::shared();
        v.push((
            b.name().to_string(),
            AnyDb::Lsm(LsmDb::open(env, Path::new("/l"), small_lsm(b)).unwrap()),
        ));
    }
    v
}

#[test]
fn all_engines_agree_with_model() {
    let engines = engines();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng: u64 = 0xfeed_beef;
    let mut next = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };

    for step in 0..4000u64 {
        let k = format!("key{:06}", next(500)).into_bytes();
        if next(10) == 0 {
            model.remove(&k);
            for (_, e) in &engines {
                e.delete(&k);
            }
        } else {
            let v = format!("v{step}-")
                .into_bytes()
                .repeat(3 + (step % 11) as usize);
            model.insert(k.clone(), v.clone());
            for (_, e) in &engines {
                e.put(&k, &v);
            }
        }
    }

    // Point reads.
    for i in 0..500u64 {
        let k = format!("key{i:06}").into_bytes();
        let expect = model.get(&k).cloned();
        for (name, e) in &engines {
            assert_eq!(e.get(&k), expect, "{name} disagrees on key {i}");
        }
    }

    // Scans from assorted positions.
    for from in ["", "key000100", "key000250", "key000499", "zzz"] {
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(from.as_bytes().to_vec()..)
            .take(17)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, e) in &engines {
            assert_eq!(
                e.scan(from.as_bytes(), 17),
                expect,
                "{name} disagrees on scan from {from:?}"
            );
        }
    }
}

#[test]
fn engines_agree_after_reopen() {
    let uni_env = MemEnv::shared();
    let lsm_env = MemEnv::shared();
    let n = 800u32;
    {
        let uni = UniKv::open(uni_env.clone(), "/u", UniKvOptions::small_for_tests()).unwrap();
        let lsm = LsmDb::open(
            lsm_env.clone(),
            Path::new("/l"),
            small_lsm(Baseline::LevelDb),
        )
        .unwrap();
        for i in 0..n {
            let k = format!("k{i:05}");
            let v = format!("value-{i}").repeat(4);
            uni.put(k.as_bytes(), v.as_bytes()).unwrap();
            lsm.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
    }
    let uni = UniKv::open(uni_env, "/u", UniKvOptions::small_for_tests()).unwrap();
    let lsm = LsmDb::open(lsm_env, Path::new("/l"), small_lsm(Baseline::LevelDb)).unwrap();
    for i in (0..n).step_by(31) {
        let k = format!("k{i:05}");
        let expect = Some(format!("value-{i}").repeat(4).into_bytes());
        assert_eq!(uni.get(k.as_bytes()).unwrap(), expect, "unikv key {i}");
        assert_eq!(lsm.get(k.as_bytes()).unwrap(), expect, "lsm key {i}");
    }
}
