//! Cross-crate integration: the same randomized workload applied to
//! UniKV, all four LSM baselines, and a BTreeMap reference model must
//! produce identical read/scan results everywhere.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fault::{FaultAction, FaultInjectionEnv, FaultOp, FaultPlan, FaultRule};
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_hashstore::{HashStore, HashStoreOptions};
use unikv_lsm::{Baseline, LsmDb, LsmOptions};

fn small_lsm(b: Baseline) -> LsmOptions {
    let mut o = LsmOptions::baseline(b);
    o.write_buffer_size = 8 << 10;
    o.table_size = 8 << 10;
    o.base_level_bytes = 32 << 10;
    o
}

#[allow(clippy::large_enum_variant)]
enum AnyDb {
    Uni(UniKv),
    Lsm(LsmDb),
}

impl AnyDb {
    fn put(&self, k: &[u8], v: &[u8]) {
        match self {
            AnyDb::Uni(db) => db.put(k, v).unwrap(),
            AnyDb::Lsm(db) => db.put(k, v).unwrap(),
        }
    }
    fn delete(&self, k: &[u8]) {
        match self {
            AnyDb::Uni(db) => db.delete(k).unwrap(),
            AnyDb::Lsm(db) => db.delete(k).unwrap(),
        }
    }
    fn get(&self, k: &[u8]) -> Option<Vec<u8>> {
        match self {
            AnyDb::Uni(db) => db.get(k).unwrap(),
            AnyDb::Lsm(db) => db.get(k).unwrap(),
        }
    }
    fn scan(&self, from: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let items = match self {
            AnyDb::Uni(db) => db.scan(from, limit).unwrap(),
            AnyDb::Lsm(db) => db.scan(from, limit).unwrap(),
        };
        items.into_iter().map(|i| (i.key, i.value)).collect()
    }
}

fn engines() -> Vec<(String, AnyDb)> {
    let mut v = Vec::new();
    let env = MemEnv::shared();
    v.push((
        "unikv".to_string(),
        AnyDb::Uni(UniKv::open(env, "/u", UniKvOptions::small_for_tests()).unwrap()),
    ));
    for b in Baseline::all() {
        let env = MemEnv::shared();
        v.push((
            b.name().to_string(),
            AnyDb::Lsm(LsmDb::open(env, Path::new("/l"), small_lsm(b)).unwrap()),
        ));
    }
    v
}

#[test]
fn all_engines_agree_with_model() {
    let engines = engines();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng: u64 = 0xfeed_beef;
    let mut next = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };

    for step in 0..4000u64 {
        let k = format!("key{:06}", next(500)).into_bytes();
        if next(10) == 0 {
            model.remove(&k);
            for (_, e) in &engines {
                e.delete(&k);
            }
        } else {
            let v = format!("v{step}-")
                .into_bytes()
                .repeat(3 + (step % 11) as usize);
            model.insert(k.clone(), v.clone());
            for (_, e) in &engines {
                e.put(&k, &v);
            }
        }
    }

    // Point reads.
    for i in 0..500u64 {
        let k = format!("key{i:06}").into_bytes();
        let expect = model.get(&k).cloned();
        for (name, e) in &engines {
            assert_eq!(e.get(&k), expect, "{name} disagrees on key {i}");
        }
    }

    // Scans from assorted positions.
    for from in ["", "key000100", "key000250", "key000499", "zzz"] {
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(from.as_bytes().to_vec()..)
            .take(17)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, e) in &engines {
            assert_eq!(
                e.scan(from.as_bytes(), 17),
                expect,
                "{name} disagrees on scan from {from:?}"
            );
        }
    }
}

#[test]
fn engines_agree_after_reopen() {
    let uni_env = MemEnv::shared();
    let lsm_env = MemEnv::shared();
    let n = 800u32;
    {
        let uni = UniKv::open(uni_env.clone(), "/u", UniKvOptions::small_for_tests()).unwrap();
        let lsm = LsmDb::open(
            lsm_env.clone(),
            Path::new("/l"),
            small_lsm(Baseline::LevelDb),
        )
        .unwrap();
        for i in 0..n {
            let k = format!("k{i:05}");
            let v = format!("value-{i}").repeat(4);
            uni.put(k.as_bytes(), v.as_bytes()).unwrap();
            lsm.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
    }
    let uni = UniKv::open(uni_env, "/u", UniKvOptions::small_for_tests()).unwrap();
    let lsm = LsmDb::open(lsm_env, Path::new("/l"), small_lsm(Baseline::LevelDb)).unwrap();
    for i in (0..n).step_by(31) {
        let k = format!("k{i:05}");
        let expect = Some(format!("value-{i}").repeat(4).into_bytes());
        assert_eq!(uni.get(k.as_bytes()).unwrap(), expect, "unikv key {i}");
        assert_eq!(lsm.get(k.as_bytes()).unwrap(), expect, "lsm key {i}");
    }
}

/// Differential crash-recovery: UniKV, an LSM baseline, and the hash
/// store each run on their own fault-injection env under an *identical*
/// fault plan (fail a sync partway through), all writes synced, one
/// shared put/overwrite-only op stream (the hash store has no deletes).
/// The workload stops at the first injected failure anywhere, every env
/// crashes at that same op index, and after recovery all three engines
/// must agree with the model on every acked key — no engine may lose an
/// acked write or invent one the others don't have.
#[test]
fn engines_agree_on_surviving_keys_after_identical_crash() {
    let plan = || {
        FaultPlan::new(0x0DDC0DE).rule(FaultRule::new(FaultOp::Sync, FaultAction::Fail).after(400))
    };
    let uni_fault = FaultInjectionEnv::new(MemEnv::shared());
    let lsm_fault = FaultInjectionEnv::new(MemEnv::shared());
    let hs_fault = FaultInjectionEnv::new(MemEnv::shared());
    uni_fault.set_plan(plan());
    lsm_fault.set_plan(plan());
    hs_fault.set_plan(plan());

    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut in_flight: Option<Vec<u8>> = None;
    {
        let uni = UniKv::open(
            uni_fault.clone() as Arc<dyn Env>,
            "/u",
            UniKvOptions {
                sync_writes: true,
                ..UniKvOptions::small_for_tests()
            },
        )
        .unwrap();
        let mut lsm_opts = small_lsm(Baseline::LevelDb);
        lsm_opts.sync_writes = true;
        let lsm =
            LsmDb::open(lsm_fault.clone() as Arc<dyn Env>, Path::new("/l"), lsm_opts).unwrap();
        let hs = HashStore::create(
            hs_fault.clone() as Arc<dyn Env>,
            "/h",
            HashStoreOptions {
                num_buckets: 64,
                sync_writes: true,
            },
        )
        .unwrap();

        let mut rng: u64 = 0xfeed_f00d;
        'ops: for step in 0..1500u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = format!("key{:05}", (rng >> 33) % 300).into_bytes();
            let v = format!("s{step}-")
                .into_bytes()
                .repeat(2 + (step % 7) as usize);
            // All engines see the op before any ack counts: the first
            // injected failure anywhere freezes the shared op stream.
            for outcome in [uni.put(&k, &v), lsm.put(&k, &v), hs.put(&k, &v)] {
                if outcome.is_err() {
                    in_flight = Some(k.clone());
                    break 'ops;
                }
            }
            model.insert(k, v);
        }
    }
    assert!(
        in_flight.is_some(),
        "the fault plan never fired; the differential run tested nothing"
    );

    uni_fault.clear_plan();
    lsm_fault.clear_plan();
    hs_fault.clear_plan();
    uni_fault.crash().unwrap();
    lsm_fault.crash().unwrap();
    hs_fault.crash().unwrap();

    let uni = UniKv::open(
        uni_fault as Arc<dyn Env>,
        "/u",
        UniKvOptions {
            sync_writes: true,
            paranoid_checks: true,
            ..UniKvOptions::small_for_tests()
        },
    )
    .unwrap();
    let lsm = LsmDb::open(
        lsm_fault as Arc<dyn Env>,
        Path::new("/l"),
        small_lsm(Baseline::LevelDb),
    )
    .unwrap();
    let hs = HashStore::open(
        hs_fault as Arc<dyn Env>,
        "/h",
        HashStoreOptions {
            num_buckets: 64,
            sync_writes: true,
        },
    )
    .unwrap();

    for (k, v) in &model {
        // The op cut short by the fault was never acked by every engine:
        // its key may legitimately differ. Everything else must agree.
        if in_flight.as_deref() == Some(k.as_slice()) {
            continue;
        }
        let expect = Some(v.clone());
        let key = String::from_utf8_lossy(k);
        assert_eq!(uni.get(k).unwrap(), expect, "unikv lost acked key {key}");
        assert_eq!(lsm.get(k).unwrap(), expect, "lsm lost acked key {key}");
        assert_eq!(hs.get(k).unwrap(), expect, "hashstore lost acked key {key}");
    }
    let never = b"key-never-written".to_vec();
    assert_eq!(uni.get(&never).unwrap(), None);
    assert_eq!(lsm.get(&never).unwrap(), None);
    assert_eq!(hs.get(&never).unwrap(), None);
}
