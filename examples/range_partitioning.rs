//! Watch dynamic range partitioning happen: load data until the initial
//! partition splits (repeatedly), then inspect the partition index and
//! verify scans cross partition boundaries seamlessly.
//!
//! ```sh
//! cargo run --release --example range_partitioning
//! ```

use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fs::FsEnv;
use unikv_workload::{format_key, make_value};

fn main() -> unikv_common::Result<()> {
    let dir = std::env::temp_dir().join(format!("unikv-partitions-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let env = Arc::new(FsEnv::new());

    // Small limits so splits happen within a few seconds of loading.
    let db = UniKv::open(
        env,
        &dir,
        UniKvOptions {
            write_buffer_size: 128 << 10,
            table_size: 128 << 10,
            unsorted_limit_bytes: 512 << 10,
            partition_size_limit: 2 << 20,
            max_log_size: 512 << 10,
            ..Default::default()
        },
    )?;

    let n: u64 = 60_000;
    let value_size = 200;
    println!(
        "loading {n} keys ({} MiB of values)...",
        n * value_size / (1 << 20)
    );
    let mut last_partitions = db.partition_count();
    for i in 0..n {
        db.put(&format_key(i), &make_value(i, 0, value_size as usize))?;
        let parts = db.partition_count();
        if parts != last_partitions {
            println!("  after {:>6} keys: {} partitions", i + 1, parts);
            last_partitions = parts;
        }
    }

    println!("\npartition index (boundary keys):");
    for (i, lo) in db.partition_boundaries().iter().enumerate() {
        let label = if lo.is_empty() {
            "-inf".to_string()
        } else {
            String::from_utf8_lossy(lo).into_owned()
        };
        println!("  p{i}: lo = {label}");
    }

    // A scan spanning several partitions must be seamless and sorted.
    let from = format_key(n / 3);
    let items = db.scan(&from, 1000)?;
    assert_eq!(items.len(), 1000);
    assert!(items.windows(2).all(|w| w[0].key < w[1].key));
    println!(
        "\nscan of 1000 keys from {} crossed partitions seamlessly",
        String::from_utf8_lossy(&from)
    );

    // Point reads route by boundary key to exactly one partition.
    for probe in [0, n / 2, n - 1] {
        assert_eq!(
            db.get(&format_key(probe))?,
            Some(make_value(probe, 0, value_size as usize))
        );
    }
    println!("point reads verified across partitions");
    println!(
        "splits: {}, gcs: {}, write amp: {:.2}",
        db.stats().splits.load(std::sync::atomic::Ordering::Relaxed),
        db.stats().gcs.load(std::sync::atomic::Ordering::Relaxed),
        db.stats().write_amplification()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
