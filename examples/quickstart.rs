//! Quickstart: open a UniKV database on the local filesystem, write,
//! read, scan, delete, and reopen to show durability.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fs::FsEnv;

fn main() -> unikv_common::Result<()> {
    let dir = std::env::temp_dir().join(format!("unikv-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let env = Arc::new(FsEnv::new());

    println!("opening database at {}", dir.display());
    {
        let db = UniKv::open(env.clone(), &dir, UniKvOptions::default())?;

        // Writes go to the WAL + memtable; flushes build UnsortedStore
        // tables indexed by the in-memory hash index.
        db.put(b"city:hk", b"Hong Kong")?;
        db.put(b"city:sz", b"Shenzhen")?;
        db.put(b"city:bj", b"Beijing")?;
        db.put(b"city:sh", b"Shanghai")?;

        println!("get city:hk -> {:?}", as_str(db.get(b"city:hk")?));

        // Overwrites are new versions; the newest always wins.
        db.put(b"city:hk", b"Hong Kong SAR")?;
        println!("get city:hk -> {:?}", as_str(db.get(b"city:hk")?));

        // Range scans run across the UnsortedStore and SortedStore with a
        // merging iterator; results are sorted by key.
        println!("scan city:*");
        for item in db.scan(b"city:", 10)? {
            println!(
                "  {} = {}",
                String::from_utf8_lossy(&item.key),
                String::from_utf8_lossy(&item.value)
            );
        }

        // Deletes write tombstones that shadow older versions.
        db.delete(b"city:bj")?;
        println!(
            "after delete, get city:bj -> {:?}",
            as_str(db.get(b"city:bj")?)
        );

        // Force everything to disk so the reopen below exercises recovery
        // from tables rather than the WAL.
        db.flush()?;
        db.compact_all()?;
        println!(
            "stats: {:?}",
            db.stats()
                .snapshot()
                .into_iter()
                .filter(|(_, v)| *v > 0)
                .collect::<Vec<_>>()
        );
    } // drop = clean-ish shutdown (WAL remains for anything unflushed)

    // Reopen: recovery replays the manifest (META), rebuilds the hash
    // index from its checkpoint, and replays the WAL tail.
    let db = UniKv::open(env, &dir, UniKvOptions::default())?;
    println!("reopened: city:sh = {:?}", as_str(db.get(b"city:sh")?));
    assert_eq!(db.get(b"city:bj")?, None);

    std::fs::remove_dir_all(&dir).ok();
    println!("done");
    Ok(())
}

fn as_str(v: Option<Vec<u8>>) -> Option<String> {
    v.map(|b| String::from_utf8_lossy(&b).into_owned())
}
