//! Crash-consistency demonstration: write through a fault-injection
//! environment, simulate a power failure at an arbitrary point, and show
//! that recovery restores every synced write and loses at most the
//! unsynced WAL tail.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;
use unikv_workload::{format_key, make_value};

fn main() -> unikv_common::Result<()> {
    let mem = MemEnv::shared();
    let fault = FaultInjectionEnv::new(mem);

    let opts = UniKvOptions {
        write_buffer_size: 16 << 10,
        table_size: 32 << 10,
        unsorted_limit_bytes: 64 << 10,
        partition_size_limit: 512 << 10,
        max_log_size: 64 << 10,
        gc_min_bytes: 64 << 10,
        sync_writes: false, // group durability at flush boundaries
        ..Default::default()
    };

    let n: u64 = 5_000;
    println!("writing {n} keys through the fault-injection env (no per-write fsync)...");
    {
        let db = UniKv::open(fault.clone() as Arc<_>, "/db", opts.clone())?;
        for i in 0..n {
            db.put(&format_key(i), &make_value(i, 0, 100))?;
        }
        println!(
            "  engine state before crash: {} flushes, {} merges, {} partitions",
            db.stats()
                .flushes
                .load(std::sync::atomic::Ordering::Relaxed),
            db.stats().merges.load(std::sync::atomic::Ordering::Relaxed),
            db.partition_count(),
        );
        // No clean shutdown: the handle is dropped mid-flight.
    }

    println!("simulating power failure (all unsynced bytes discarded)...");
    let affected = fault.crash()?;
    println!(
        "  {} files rolled back to their synced prefix",
        affected.len()
    );

    println!("recovering...");
    let db = UniKv::open(fault.clone() as Arc<_>, "/db", opts)?;
    let mut survived = 0u64;
    for i in 0..n {
        if db.get(&format_key(i))? == Some(make_value(i, 0, 100)) {
            survived += 1;
        }
    }
    println!(
        "  {survived}/{n} keys survived; {} lost from the unsynced memtable tail",
        n - survived
    );
    assert!(survived > 0);

    // Everything the recovered database reports must be internally
    // consistent: scans sorted, no phantom keys.
    let items = db.scan(b"", 100)?;
    assert!(items.windows(2).all(|w| w[0].key < w[1].key));
    println!("  post-recovery scan is sorted and consistent");

    // The store continues accepting writes with recovered sequence numbers.
    db.put(b"post-crash", b"alive")?;
    assert_eq!(db.get(b"post-crash")?, Some(b"alive".to_vec()));
    println!("  new writes accepted after recovery");

    println!("done");
    Ok(())
}
