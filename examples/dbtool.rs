//! `dbtool`: a small operational CLI over a UniKV database directory —
//! the kind of tool an operator reaches for. Demonstrates the public API
//! end to end (open, read, write, scan, stats, compaction, GC).
//!
//! ```sh
//! cargo run --release --example dbtool -- <dir> put k v
//! cargo run --release --example dbtool -- <dir> get k
//! cargo run --release --example dbtool -- <dir> del k
//! cargo run --release --example dbtool -- <dir> scan <from> [limit]
//! cargo run --release --example dbtool -- <dir> stats
//! cargo run --release --example dbtool -- <dir> metrics [--machine]
//! cargo run --release --example dbtool -- <dir> status
//! cargo run --release --example dbtool -- <dir> compact
//! cargo run --release --example dbtool -- <dir> gc
//! cargo run --release --example dbtool -- <dir> fill <n> [value_size]
//! cargo run --release --example dbtool -- <dir> verify
//! cargo run --release --example dbtool -- <dir> events [--follow | --causes <seq>]
//! ```

use std::sync::Arc;
use unikv::{causal_chain, read_events, verify_db, Event, UniKv, UniKvOptions};
use unikv_env::fs::FsEnv;

fn usage() -> ! {
    eprintln!("usage: dbtool <dir> <put k v | get k | del k | scan from [limit] |");
    eprintln!("                      stats | metrics [--machine] | status | compact | gc |");
    eprintln!("                      fill n [value_size] | verify |");
    eprintln!("                      events [--follow | --causes seq]>");
    std::process::exit(2);
}

/// One human-readable journal line: seq, time, kind, partition, the causal
/// link, and whatever file lists / byte counts the event carries.
fn render_event(e: &Event) -> String {
    let mut out = format!(
        "#{:<6} {:>10}us  {:<18} p{}",
        e.seq,
        e.at_micros,
        e.kind.name(),
        e.partition
    );
    if let Some(c) = e.cause {
        out.push_str(&format!("  cause=#{c}"));
    }
    if !e.inputs.is_empty() {
        out.push_str(&format!("  in={:?}", e.inputs));
    }
    if !e.outputs.is_empty() {
        out.push_str(&format!("  out={:?}", e.outputs));
    }
    if e.bytes > 0 {
        out.push_str(&format!("  bytes={}", e.bytes));
    }
    if !e.detail.is_empty() {
        out.push_str(&format!("  {}", e.detail));
    }
    out
}

fn main() -> unikv_common::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    // `verify` scrubs the closed database offline; it must run *before*
    // `UniKv::open`, which replays WALs, flushes, and deletes orphans.
    if args[1] == "verify" {
        let report = verify_db(Arc::new(FsEnv::new()), &args[0])?;
        println!(
            "checked {} files, {} damaged",
            report.files_checked,
            report.damage.len()
        );
        for d in &report.damage {
            println!("DAMAGED [{}] {}: {}", d.kind, d.path.display(), d.detail);
        }
        if !report.is_clean() {
            std::process::exit(1);
        }
        return Ok(());
    }
    // `events` replays the persistent journal offline; like `verify` it
    // runs *before* `UniKv::open` so inspecting a database never mutates
    // it (open replays WALs and deletes orphans). `--follow` tails the
    // journal of a database another process has open.
    if args[1] == "events" {
        let env = FsEnv::new();
        let root = std::path::Path::new(&args[0]);
        match (args.get(2).map(String::as_str), args.get(3)) {
            (None, _) => {
                for e in read_events(&env, root) {
                    println!("{}", render_event(&e));
                }
            }
            (Some("--causes"), Some(seq)) => {
                let seq: u64 = seq
                    .parse()
                    .map_err(|_| unikv_common::Error::invalid_argument("--causes needs a seq"))?;
                let events = read_events(&env, root);
                let chain = causal_chain(&events, seq);
                if chain.is_empty() {
                    eprintln!("no event #{seq} in the journal (rotated away or never written?)");
                    std::process::exit(1);
                }
                for e in chain {
                    println!("{}", render_event(&e));
                }
            }
            (Some("--follow"), _) => {
                let mut last = 0u64;
                loop {
                    for e in read_events(&env, root) {
                        if e.seq > last {
                            last = e.seq;
                            println!("{}", render_event(&e));
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(500));
                }
            }
            _ => usage(),
        }
        return Ok(());
    }
    // dbtool keeps the event journal on so every run leaves a causal
    // record behind for `dbtool <dir> events` to replay.
    let opts = UniKvOptions {
        enable_event_journal: true,
        ..Default::default()
    };
    let db = UniKv::open(Arc::new(FsEnv::new()), &args[0], opts)?;
    match (args[1].as_str(), &args[2..]) {
        ("put", [k, v]) => {
            db.put(k.as_bytes(), v.as_bytes())?;
            println!("ok");
        }
        ("get", [k]) => match db.get(k.as_bytes())? {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(not found)"),
        },
        ("del", [k]) => {
            db.delete(k.as_bytes())?;
            println!("ok");
        }
        ("scan", rest) if !rest.is_empty() => {
            let limit = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(20usize);
            for item in db.scan(rest[0].as_bytes(), limit)? {
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(&item.key),
                    String::from_utf8_lossy(&item.value)
                );
            }
        }
        ("stats", []) => {
            println!("partitions: {}", db.partition_count());
            for (i, lo) in db.partition_boundaries().iter().enumerate() {
                let label = if lo.is_empty() {
                    "-inf".into()
                } else {
                    String::from_utf8_lossy(lo).into_owned()
                };
                println!("  partition {i}: lo={label}");
            }
            println!("logical bytes: {}", db.logical_bytes());
            println!("hash-index bytes: {}", db.index_memory_bytes());
            println!("last sequence: {}", db.last_sequence());
            for (name, value) in db.stats().snapshot() {
                println!("{name}: {value}");
            }
            println!(
                "write amplification: {:.2}",
                db.stats().write_amplification()
            );
        }
        ("metrics", rest) if rest.is_empty() || rest == ["--machine"] => {
            // Latency histograms, per-tier read counters, subsystem I/O
            // counters, and the tail of the op trace. `--machine` emits
            // the stable tab-separated form for scripts.
            if rest.is_empty() {
                print!("{}", db.metrics_report());
            } else {
                print!("{}", db.metrics_report_machine());
            }
        }
        ("status", []) => {
            // Operator health check: state machine position, what is being
            // retried or quarantined, and how hard writes are braking.
            let report = db.health_report();
            println!("health: {:?}", report.state);
            if let Some(err) = &report.background_error {
                println!("background error: {err}");
            }
            println!("retrying jobs: {}", report.retrying);
            for q in &report.quarantined {
                println!(
                    "  quarantined: {:?} on partition {} ({})",
                    q.kind, q.partition, q.reason
                );
            }
            let snap: std::collections::HashMap<_, _> = db.stats().snapshot().into_iter().collect();
            println!(
                "maintenance: {} scheduled, {} completed, {} failed fatally",
                snap["maint_jobs_scheduled"],
                snap["maint_jobs_completed"],
                snap["maint_jobs_failed"]
            );
            println!(
                "resilience: {} retries, {} quarantines, {} health transitions, {} ms degraded",
                snap["maint_job_retries"],
                snap["maint_jobs_quarantined"],
                snap["health_transitions"],
                snap["time_degraded_ms"]
            );
            println!(
                "stalls: {} slowdowns, {} stops, {:.1} ms stalled",
                snap["stall_slowdowns"],
                snap["stall_stops"],
                snap["stall_time_micros"] as f64 / 1000.0
            );
            println!("partitions: {}", db.partition_count());
        }
        ("compact", []) => {
            db.compact_all()?;
            println!("compacted");
        }
        ("gc", []) => {
            db.force_gc()?;
            println!("gc done");
        }
        ("fill", rest) if !rest.is_empty() => {
            let n: u64 = rest[0]
                .parse()
                .map_err(|_| unikv_common::Error::invalid_argument("fill needs a number"))?;
            let vs: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
            for i in 0..n {
                let key = format!("user{i:012}");
                let unit = format!("{i:x}-");
                let value = unit.repeat(vs / unit.len() + 1);
                db.put(key.as_bytes(), &value.as_bytes()[..vs])?;
            }
            db.flush()?;
            println!("filled {n} keys of {vs}B");
        }
        _ => usage(),
    }
    Ok(())
}
