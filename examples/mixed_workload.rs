//! The paper's motivating scenario: a mixed read/write workload with
//! strong skew, run against UniKV (inline and background maintenance) and
//! a LevelDB-like baseline side by side. Prints throughput and the
//! engines' internal work counters so you can see *why* the numbers
//! differ (merges vs compactions, write amp, stalls).
//!
//! ```sh
//! cargo run --release --example mixed_workload [-- <num_keys> <num_ops> [--metrics] [--perf-sample N]]
//! ```
//!
//! With `--metrics`, each engine also prints its unified metrics report
//! after the load and mixed phases (reset between phases), and the run
//! fails if the report is missing any registered metric family — the CI
//! smoke check for the observability layer.
//!
//! With `--perf-sample N`, every Nth operation runs through the engine's
//! profiled variant; the per-stage profiles are merged per phase and a
//! breakdown table (router / WAL / memtable / index probe / block read /
//! vlog fetch ...) is printed after each phase. The run fails if the
//! UniKV breakdown is missing a declared stage or never exercised the
//! stages every profiled op must touch — the CI smoke check for the
//! per-op profiler.

use std::sync::Arc;
use std::time::Instant;
use unikv::{PerfContext, PerfStage, UniKv, UniKvOptions};
use unikv_env::fs::FsEnv;
use unikv_lsm::{Baseline, LsmDb, LsmOptions};
use unikv_workload::{format_key, make_value, MixedWorkload, Op};

fn main() -> unikv_common::Result<()> {
    let (mut positional, mut show_metrics, mut perf_sample) = (Vec::new(), false, 0u64);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics" {
            show_metrics = true;
        } else if a == "--perf-sample" {
            perf_sample = args
                .next()
                .and_then(|n| n.parse().ok())
                .filter(|n| *n > 0)
                .unwrap_or(100);
        } else {
            positional.push(a);
        }
    }
    let num_keys: u64 = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let num_ops: u64 = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let value_size = 256usize;

    println!(
        "mixed 50/50 zipfian workload: {num_keys} keys, {num_ops} ops, {value_size}B values\n"
    );

    // --- UniKV ---
    let dir = std::env::temp_dir().join(format!("unikv-mixed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let env = Arc::new(FsEnv::new());
    let scaled_opts = UniKvOptions {
        write_buffer_size: 256 << 10,
        table_size: 256 << 10,
        unsorted_limit_bytes: 2 << 20,
        scan_merge_limit: 6,
        partition_size_limit: 8 << 20,
        ..Default::default()
    };
    let unikv = UniKv::open(env.clone(), dir.join("unikv"), scaled_opts.clone())?;
    let unikv_prof = std::cell::RefCell::new(PerfContext::default());
    run(
        "UniKV",
        num_keys,
        num_ops,
        value_size,
        perf_sample,
        |op, i| match op {
            Op::Read(k) => unikv.get(&k).map(|_| ()),
            Op::Update(k) => unikv.put(&k, &make_value(i, 1, value_size)),
            _ => Ok(()),
        },
        |op, i| match op {
            Op::Read(k) => unikv.get_profiled(&k).map(|(_, c)| c),
            Op::Update(k) => unikv.put_profiled(&k, &make_value(i, 1, value_size)),
            _ => Ok(PerfContext::default()),
        },
        |phase, prof| {
            if show_metrics {
                dump_phase("UniKV", phase, &unikv.metrics_report());
                if phase == "load" {
                    unikv.reset_metrics(); // isolate the mixed-phase numbers
                }
            }
            if perf_sample > 0 {
                dump_perf("UniKV", phase, perf_sample, prof);
                unikv_prof.borrow_mut().merge(prof);
            }
        },
    )?;
    if show_metrics {
        check_report_complete(&unikv)?;
    }
    if perf_sample > 0 {
        check_perf_complete("UniKV", &unikv_prof.borrow());
    }
    println!(
        "  write amp {:.2}, partitions {}, index {:.1} KiB",
        unikv.stats().write_amplification(),
        unikv.partition_count(),
        unikv.index_memory_bytes() as f64 / 1024.0
    );

    // --- UniKV with background maintenance ---
    // Same engine, but flush/merge/GC/split run on worker threads; writes
    // only brake when the backpressure thresholds trip.
    let bg_opts = UniKvOptions {
        background_jobs: 2,
        ..scaled_opts
    };
    let unikv_bg = UniKv::open(env.clone(), dir.join("unikv-bg"), bg_opts)?;
    run(
        "UniKV (bg)",
        num_keys,
        num_ops,
        value_size,
        perf_sample,
        |op, i| match op {
            Op::Read(k) => unikv_bg.get(&k).map(|_| ()),
            Op::Update(k) => unikv_bg.put(&k, &make_value(i, 1, value_size)),
            _ => Ok(()),
        },
        |op, i| match op {
            Op::Read(k) => unikv_bg.get_profiled(&k).map(|(_, c)| c),
            Op::Update(k) => unikv_bg.put_profiled(&k, &make_value(i, 1, value_size)),
            _ => Ok(PerfContext::default()),
        },
        |phase, prof| {
            if show_metrics {
                dump_phase("UniKV (bg)", phase, &unikv_bg.metrics_report());
            }
            if perf_sample > 0 {
                dump_perf("UniKV (bg)", phase, perf_sample, prof);
            }
        },
    )?;
    unikv_bg.wait_for_background();
    if let Some(err) = unikv_bg.background_error() {
        eprintln!("  background maintenance failed: {err}");
    }
    let snap: std::collections::HashMap<_, _> = unikv_bg.stats().snapshot().into_iter().collect();
    println!(
        "  write amp {:.2}, partitions {}, jobs {} done / {} failed",
        unikv_bg.stats().write_amplification(),
        unikv_bg.partition_count(),
        snap["maint_jobs_completed"],
        snap["maint_jobs_failed"],
    );
    println!(
        "  stalls: {} slowdowns, {} stops, {:.1} ms stalled",
        snap["stall_slowdowns"],
        snap["stall_stops"],
        snap["stall_time_micros"] as f64 / 1000.0
    );
    // Exit health report: on a healthy run every counter here is zero —
    // anything else means maintenance hit (and survived) real faults.
    let health = unikv_bg.health_report();
    println!(
        "  health {:?}: {} retries, {} quarantines, {} transitions, {} ms degraded",
        health.state,
        snap["maint_job_retries"],
        snap["maint_jobs_quarantined"],
        snap["health_transitions"],
        snap["time_degraded_ms"]
    );

    // --- LevelDB-like baseline ---
    let mut lsm_opts = LsmOptions::baseline(Baseline::LevelDb);
    lsm_opts.write_buffer_size = 256 << 10;
    lsm_opts.table_size = 256 << 10;
    lsm_opts.base_level_bytes = 1 << 20;
    let leveldb = LsmDb::open(env, dir.join("leveldb"), lsm_opts)?;
    run(
        "LevelDB-like",
        num_keys,
        num_ops,
        value_size,
        perf_sample,
        |op, i| match op {
            Op::Read(k) => leveldb.get(&k).map(|_| ()),
            Op::Update(k) => leveldb.put(&k, &make_value(i, 1, value_size)),
            _ => Ok(()),
        },
        |op, i| match op {
            Op::Read(k) => leveldb.get_profiled(&k).map(|(_, c)| c),
            Op::Update(k) => leveldb.put_profiled(&k, &make_value(i, 1, value_size)),
            _ => Ok(PerfContext::default()),
        },
        |phase, prof| {
            if show_metrics && phase == "mixed" {
                dump_phase("LevelDB-like", phase, &leveldb.metrics_report());
            }
            if perf_sample > 0 && phase == "mixed" {
                dump_perf("LevelDB-like", phase, perf_sample, prof);
            }
        },
    )?;
    println!(
        "  write amp {:.2}, compactions {}",
        leveldb.stats().write_amplification(),
        leveldb
            .stats()
            .compactions
            .load(std::sync::atomic::Ordering::Relaxed)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run(
    name: &str,
    num_keys: u64,
    num_ops: u64,
    value_size: usize,
    perf_sample: u64,
    mut apply: impl FnMut(Op, u64) -> unikv_common::Result<()>,
    mut apply_profiled: impl FnMut(Op, u64) -> unikv_common::Result<PerfContext>,
    mut on_phase: impl FnMut(&str, &PerfContext),
) -> unikv_common::Result<()> {
    // Every `perf_sample`th op (when sampling) runs the engine's profiled
    // variant; the per-op profiles merge into one per-phase breakdown.
    let mut step = |op: Op, i: u64, prof: &mut PerfContext| {
        if perf_sample > 0 && i.is_multiple_of(perf_sample) {
            prof.merge(&apply_profiled(op, i)?);
            Ok(())
        } else {
            apply(op, i)
        }
    };

    // Load phase.
    let mut prof = PerfContext::default();
    let start = Instant::now();
    for i in 0..num_keys {
        step(Op::Update(format_key(i)), i, &mut prof)?;
    }
    let load = start.elapsed().as_secs_f64();
    on_phase("load", &prof);

    // Mixed phase: 50% reads / 50% updates, zipfian.
    let mut prof = PerfContext::default();
    let mut w = MixedWorkload::new(0.5, num_keys, false, 42);
    let start = Instant::now();
    for i in 0..num_ops {
        step(w.next_op(), i, &mut prof)?;
    }
    let mixed = start.elapsed().as_secs_f64();
    on_phase("mixed", &prof);

    let load_mb = (num_keys as usize * value_size) as f64 / (1 << 20) as f64;
    println!(
        "{name:14} load {:8.1} kops/s ({:.1} MiB/s)   mixed 50/50 {:8.1} kops/s",
        num_keys as f64 / load / 1000.0,
        load_mb / load,
        num_ops as f64 / mixed / 1000.0
    );
    Ok(())
}

fn dump_phase(engine: &str, phase: &str, report: &str) {
    println!("---- {engine} metrics after {phase} phase ----");
    print!("{report}");
}

fn dump_perf(engine: &str, phase: &str, every: u64, prof: &PerfContext) {
    println!("---- {engine} per-op stage breakdown, {phase} phase (every {every}th op) ----");
    print!("{}", prof.render_table());
}

/// CI smoke check: the profiled UniKV run must render every declared
/// stage, and the stages every profiled op necessarily crosses (route,
/// memtable, WAL append for writes, plus the residual) must have fired.
fn check_perf_complete(engine: &str, prof: &PerfContext) {
    let table = prof.render_table();
    let mut missing: Vec<&str> = PerfStage::ALL
        .iter()
        .filter(|s| !table.contains(s.name()))
        .map(|s| s.name())
        .collect();
    for required in [
        PerfStage::Router,
        PerfStage::Memtable,
        PerfStage::WalAppend,
        PerfStage::Other,
    ] {
        if prof.stage_hits[required as usize] == 0 {
            missing.push(required.name());
        }
    }
    if prof.ops == 0 || !missing.is_empty() {
        eprintln!(
            "{engine} perf breakdown incomplete: {} profiled ops, missing or unhit stages {missing:?}",
            prof.ops
        );
        std::process::exit(1);
    }
}

/// CI smoke check: the machine report must contain a line for every
/// family registered in the database's registry.
fn check_report_complete(db: &UniKv) -> unikv_common::Result<()> {
    let report = db.metrics_report_machine();
    let mut missing = Vec::new();
    for family in db.metrics().registry.family_names() {
        if !report
            .lines()
            .any(|l| l.split('\t').nth(1) == Some(family.as_str()))
        {
            missing.push(family);
        }
    }
    if !missing.is_empty() {
        eprintln!("metrics report is missing families: {missing:?}");
        std::process::exit(1);
    }
    Ok(())
}
