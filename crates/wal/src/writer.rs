//! Log writer: fragments records across 32 KiB blocks.

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};
use unikv_common::metrics::Counter;
use unikv_common::perf::{self, PerfStage};
use unikv_common::{crc32c, Result};
use unikv_env::WritableFile;

/// Registry-backed WAL counters, shared by every log writer of a database.
#[derive(Clone)]
pub struct WalMetrics {
    /// Records appended (before fragmenting).
    pub records: Counter,
    /// Payload bytes appended (excludes headers and block padding).
    pub record_bytes: Counter,
    /// Durable syncs issued.
    pub syncs: Counter,
}

impl WalMetrics {
    /// Register the WAL families in `registry`.
    pub fn new(registry: &unikv_common::metrics::MetricsRegistry) -> WalMetrics {
        WalMetrics {
            records: registry.counter("wal_records"),
            record_bytes: registry.counter("wal_record_bytes"),
            syncs: registry.counter("wal_syncs"),
        }
    }
}

/// Appends records to a log file.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
    metrics: Option<WalMetrics>,
}

impl LogWriter {
    /// Wrap a fresh writable file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            file,
            block_offset: 0,
            metrics: None,
        }
    }

    /// Wrap a file that already contains `existing_len` bytes of log data
    /// (used when appending to a recovered log).
    pub fn with_offset(file: Box<dyn WritableFile>, existing_len: u64) -> Self {
        LogWriter {
            file,
            block_offset: (existing_len % BLOCK_SIZE as u64) as usize,
            metrics: None,
        }
    }

    /// Attach WAL counters (builder-style; recovery/test writers skip it).
    pub fn with_metrics(mut self, metrics: WalMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Append one record, fragmenting as needed.
    pub fn add_record(&mut self, record: &[u8]) -> Result<()> {
        if let Some(m) = &self.metrics {
            m.records.inc();
            m.record_bytes.add(record.len() as u64);
        }
        let mut remaining = record;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Not enough room for a header: pad the block with zeros.
                if leftover > 0 {
                    const ZEROS: [u8; HEADER_SIZE] = [0; HEADER_SIZE];
                    self.file.append(&ZEROS[..leftover])?;
                }
                self.block_offset = 0;
            }

            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = remaining.len().min(avail);
            let end = fragment_len == remaining.len();
            let t = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, false) => RecordType::Middle,
                (false, true) => RecordType::Last,
            };
            self.emit(t, &remaining[..fragment_len])?;
            remaining = &remaining[fragment_len..];
            begin = false;
            if end {
                perf::mark(PerfStage::WalAppend);
                return Ok(());
            }
        }
    }

    fn emit(&mut self, t: RecordType, payload: &[u8]) -> Result<()> {
        debug_assert!(payload.len() <= 0xffff);
        debug_assert!(self.block_offset + HEADER_SIZE + payload.len() <= BLOCK_SIZE);
        let crc = crc32c::mask(crc32c::extend(crc32c::value(&[t as u8]), payload));
        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        header[6] = t as u8;
        self.file.append(&header)?;
        self.file.append(payload)?;
        self.block_offset += HEADER_SIZE + payload.len();
        Ok(())
    }

    /// Flush buffers to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()
    }

    /// Durably sync all records written so far.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(m) = &self.metrics {
            m.syncs.inc();
        }
        let r = self.file.sync();
        perf::mark(PerfStage::WalSync);
        r
    }

    /// Bytes written to the underlying file.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }
}
