#![warn(missing_docs)]

//! Write-ahead log in the LevelDB record format.
//!
//! The log is a sequence of 32 KiB blocks. Each record fragment carries a
//! 7-byte header: `masked_crc32c(4) | length(2, LE) | type(1)` where type is
//! FULL / FIRST / MIDDLE / LAST. Records spanning blocks are fragmented;
//! block tails shorter than a header are zero-padded. The CRC covers the
//! type byte and the payload, and is masked so that a log stored inside
//! another checksummed file remains verifiable.
//!
//! UniKV uses this log twice: as the per-partition WAL protecting memtable
//! contents, and as the manifest log protecting partition metadata
//! (paper §Crash Consistency).

pub mod reader;
pub mod writer;

pub use reader::{LogReader, ReadOutcome};
pub use writer::{LogWriter, WalMetrics};

/// Size of a log block.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Size of a fragment header.
pub const HEADER_SIZE: usize = 4 + 2 + 1;

/// Fragment types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordType {
    /// Entire record in one fragment.
    Full = 1,
    /// First fragment of a spanning record.
    First = 2,
    /// Interior fragment.
    Middle = 3,
    /// Final fragment of a spanning record.
    Last = 4,
}

impl RecordType {
    pub(crate) fn from_u8(v: u8) -> Option<RecordType> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use unikv_env::mem::MemEnv;
    use unikv_env::Env;

    fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let env = MemEnv::new();
        let path = Path::new("/log");
        {
            let mut w = LogWriter::new(env.new_writable(path).unwrap());
            for r in records {
                w.add_record(r).unwrap();
            }
            w.sync().unwrap();
        }
        let mut reader = LogReader::new(env.new_sequential(path).unwrap());
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let ReadOutcome::Record = reader.read_record(&mut buf).unwrap() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn empty_log() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn small_records() {
        let records = vec![b"a".to_vec(), b"bb".to_vec(), Vec::new(), b"dddd".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn record_spanning_blocks() {
        // One record larger than several blocks exercises FIRST/MIDDLE/LAST.
        let big = vec![0xabu8; BLOCK_SIZE * 3 + 1234];
        let records = vec![b"pre".to_vec(), big.clone(), b"post".to_vec()];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn record_exactly_filling_block_tail() {
        // Craft a record so the next header would not fit: forces padding.
        let first_len = BLOCK_SIZE - HEADER_SIZE - (HEADER_SIZE - 1);
        let records = vec![vec![1u8; first_len], vec![2u8; 10]];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        // A write cut mid-record (crash) must not poison earlier records.
        let env = MemEnv::new();
        let path = Path::new("/log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        w.add_record(b"complete").unwrap();
        w.sync().unwrap();
        w.add_record(&[7u8; 100]).unwrap();
        drop(w);
        // Simulate the crash: truncate to just after the first record.
        let full = env.read_to_vec(path).unwrap();
        let torn = &full[..full.len() - 50];
        let mut tw = env.new_writable(path).unwrap();
        tw.append(torn).unwrap();
        drop(tw);

        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Record);
        assert_eq!(buf, b"complete");
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Eof);
        assert!(r.dropped_bytes() > 0, "torn tail should be reported");
    }

    #[test]
    fn corrupted_crc_stops_replay() {
        let env = MemEnv::new();
        let path = Path::new("/log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        w.add_record(b"good").unwrap();
        w.add_record(b"bad").unwrap();
        drop(w);
        let mut data = env.read_to_vec(path).unwrap();
        // Flip a payload byte of the second record.
        let n = data.len();
        data[n - 1] ^= 0xff;
        let mut tw = env.new_writable(path).unwrap();
        tw.append(&data).unwrap();
        drop(tw);

        let mut r = LogReader::new(env.new_sequential(path).unwrap());
        let mut buf = Vec::new();
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Record);
        assert_eq!(buf, b"good");
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Eof);
        assert!(r.dropped_bytes() > 0);
    }

    /// Write `records`, then mutate the raw log bytes with `f`.
    fn damaged_log(env: &MemEnv, records: &[&[u8]], f: impl FnOnce(&mut Vec<u8>)) {
        let path = Path::new("/log");
        let mut w = LogWriter::new(env.new_writable(path).unwrap());
        for r in records {
            w.add_record(r).unwrap();
        }
        drop(w);
        let mut data = env.read_to_vec(path).unwrap();
        f(&mut data);
        let mut tw = env.new_writable(path).unwrap();
        tw.append(&data).unwrap();
        drop(tw);
    }

    fn replay_strict(env: &MemEnv) -> Result<Vec<Vec<u8>>, unikv_common::Error> {
        let mut r = LogReader::new_strict(env.new_sequential(Path::new("/log")).unwrap());
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while r.read_record(&mut buf)? == ReadOutcome::Record {
            out.push(buf.clone());
        }
        Ok(out)
    }

    #[test]
    fn strict_torn_final_record_is_truncated() {
        // Regression: a torn FINAL record is the normal signature of a
        // crash mid-append and must replay as a clean prefix, not an error.
        let env = MemEnv::new();
        damaged_log(&env, &[b"one", b"two", &[9u8; 120]], |data| {
            let n = data.len();
            data.truncate(n - 60);
        });
        assert_eq!(
            replay_strict(&env).unwrap(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
    }

    #[test]
    fn strict_corrupt_final_record_is_truncated() {
        // A bit flip inside the last record is indistinguishable from a
        // torn tail: strict replay still yields the prefix.
        let env = MemEnv::new();
        damaged_log(&env, &[b"one", b"two"], |data| {
            let n = data.len();
            data[n - 1] ^= 0x01;
        });
        assert_eq!(replay_strict(&env).unwrap(), vec![b"one".to_vec()]);
    }

    #[test]
    fn strict_torn_middle_record_is_corruption() {
        // Regression: damage with intact records AFTER it cannot be a torn
        // tail. Strict replay must fail instead of dropping acked records.
        let env = MemEnv::new();
        damaged_log(&env, &[b"first", &[7u8; 64], b"third"], |data| {
            data[HEADER_SIZE + 5 + HEADER_SIZE + 10] ^= 0x01; // payload of record 2
        });
        let err = replay_strict(&env).unwrap_err();
        assert!(err.is_corruption(), "expected corruption, got {err:?}");

        // The lenient reader keeps the historical truncate-at-damage
        // behavior for the same bytes.
        let mut r = LogReader::new(env.new_sequential(Path::new("/log")).unwrap());
        let mut buf = Vec::new();
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Record);
        assert_eq!(buf, b"first");
        assert_eq!(r.read_record(&mut buf).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn strict_zeroed_middle_region_is_corruption() {
        // A zeroed-out header mid-log normally reads as "preallocated
        // tail"; with intact records after it, strict replay refuses.
        let env = MemEnv::new();
        damaged_log(&env, &[b"first", b"second", b"third"], |data| {
            let start = HEADER_SIZE + 5; // record 2's header
            for b in &mut data[start..start + HEADER_SIZE] {
                *b = 0;
            }
        });
        let err = replay_strict(&env).unwrap_err();
        assert!(err.is_corruption(), "expected corruption, got {err:?}");
    }

    #[test]
    fn many_records_roundtrip() {
        let records: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| i.to_le_bytes().repeat((i % 17 + 1) as usize))
            .collect();
        assert_eq!(roundtrip(&records), records);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::path::Path;
    use unikv_env::mem::MemEnv;
    use unikv_env::Env;

    proptest! {
        /// The crash-safety property the engines rely on: for ANY byte cut
        /// point, replaying the truncated log yields a clean PREFIX of the
        /// records written — never reordered, corrupted, or phantom data.
        #[test]
        fn prop_any_truncation_yields_record_prefix(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 1..30),
            cut_frac in 0.0f64..1.0,
        ) {
            let env = MemEnv::new();
            let path = Path::new("/log");
            {
                let mut w = LogWriter::new(env.new_writable(path).unwrap());
                for r in &records {
                    w.add_record(r).unwrap();
                }
            }
            let full = env.read_to_vec(path).unwrap();
            let cut = (full.len() as f64 * cut_frac) as usize;
            let mut w = env.new_writable(path).unwrap();
            w.append(&full[..cut]).unwrap();
            drop(w);

            let mut reader = LogReader::new(env.new_sequential(path).unwrap());
            let mut buf = Vec::new();
            let mut replayed = Vec::new();
            while reader.read_record(&mut buf).unwrap() == ReadOutcome::Record {
                replayed.push(buf.clone());
            }
            prop_assert!(replayed.len() <= records.len());
            for (got, expect) in replayed.iter().zip(&records) {
                prop_assert_eq!(got, expect, "replayed record differs");
            }
        }

        /// Same property with a flipped byte instead of truncation: replay
        /// stops at (or before) the corruption, and the surviving records
        /// are an intact prefix.
        #[test]
        fn prop_single_corruption_yields_record_prefix(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..100), 1..20),
            pos_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let env = MemEnv::new();
            let path = Path::new("/log");
            {
                let mut w = LogWriter::new(env.new_writable(path).unwrap());
                for r in &records {
                    w.add_record(r).unwrap();
                }
            }
            let mut data = env.read_to_vec(path).unwrap();
            let pos = ((data.len() - 1) as f64 * pos_frac) as usize;
            data[pos] ^= flip;
            let mut w = env.new_writable(path).unwrap();
            w.append(&data).unwrap();
            drop(w);

            let mut reader = LogReader::new(env.new_sequential(path).unwrap());
            let mut buf = Vec::new();
            let mut replayed = Vec::new();
            while reader.read_record(&mut buf).unwrap() == ReadOutcome::Record {
                replayed.push(buf.clone());
            }
            prop_assert!(replayed.len() <= records.len());
            for (got, expect) in replayed.iter().zip(&records) {
                prop_assert_eq!(got, expect);
            }
        }

        /// Strict replay must never mistake a genuine crash truncation for
        /// mid-log corruption: for ANY cut point it succeeds and yields a
        /// clean prefix, exactly like the lenient reader.
        #[test]
        fn prop_strict_truncation_never_errors(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 1..30),
            cut_frac in 0.0f64..1.0,
        ) {
            let env = MemEnv::new();
            let path = Path::new("/log");
            {
                let mut w = LogWriter::new(env.new_writable(path).unwrap());
                for r in &records {
                    w.add_record(r).unwrap();
                }
            }
            let full = env.read_to_vec(path).unwrap();
            let cut = (full.len() as f64 * cut_frac) as usize;
            let mut w = env.new_writable(path).unwrap();
            w.append(&full[..cut]).unwrap();
            drop(w);

            let mut reader = LogReader::new_strict(env.new_sequential(path).unwrap());
            let mut buf = Vec::new();
            let mut replayed = Vec::new();
            loop {
                let outcome = reader.read_record(&mut buf);
                prop_assert!(outcome.is_ok(), "strict replay errored on truncation: {:?}", outcome);
                if outcome.unwrap() != ReadOutcome::Record {
                    break;
                }
                replayed.push(buf.clone());
            }
            prop_assert!(replayed.len() <= records.len());
            for (got, expect) in replayed.iter().zip(&records) {
                prop_assert_eq!(got, expect, "strict replayed record differs");
            }
        }
    }
}
