//! Log reader: reassembles fragmented records and tolerates a torn tail.
//!
//! Replay semantics match LevelDB's default recovery: a checksum mismatch
//! or truncated fragment ends the replay (the bytes are counted in
//! [`LogReader::dropped_bytes`]) rather than failing it, because a crash
//! mid-append legitimately leaves a torn final record.
//!
//! [`LogReader::new_strict`] additionally distinguishes the two ways a log
//! can be damaged: a torn *final* record (nothing intact after the damage)
//! is still truncated silently, but damage *followed by* an intact record
//! cannot have been produced by a crash mid-append and is reported as
//! [`Error::Corruption`] instead of silently dropping the log suffix.

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};
use unikv_common::{crc32c, Error, Result};
use unikv_env::SequentialFile;

/// Result of [`LogReader::read_record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A complete record was produced.
    Record,
    /// End of log (clean EOF or unreadable tail).
    Eof,
}

/// Reads records from a log file sequentially.
pub struct LogReader {
    file: Box<dyn SequentialFile>,
    block: Vec<u8>,
    /// Valid bytes in `block`.
    block_len: usize,
    /// Read cursor within `block`.
    pos: usize,
    /// True once the underlying file hit EOF.
    at_eof: bool,
    dropped: u64,
    /// Report mid-log damage as `Error::Corruption` instead of EOF.
    strict: bool,
}

enum Fragment {
    Data(RecordType, std::ops::Range<usize>),
    BlockEnd,
    Eof,
    /// An all-zero header where record data was expected.
    ZeroHeader,
    Corrupt(usize),
}

impl LogReader {
    /// Wrap a sequential file positioned at the start of the log.
    pub fn new(file: Box<dyn SequentialFile>) -> Self {
        Self::with_mode(file, false)
    }

    /// Like [`new`](Self::new), but a damaged record that is *followed by*
    /// an intact record fails replay with [`Error::Corruption`]. A torn
    /// tail (damage extending to end of file) is still truncated.
    pub fn new_strict(file: Box<dyn SequentialFile>) -> Self {
        Self::with_mode(file, true)
    }

    fn with_mode(file: Box<dyn SequentialFile>, strict: bool) -> Self {
        LogReader {
            file,
            block: vec![0; BLOCK_SIZE],
            block_len: 0,
            pos: 0,
            at_eof: false,
            dropped: 0,
            strict,
        }
    }

    /// Bytes skipped due to corruption or a torn tail.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped
    }

    /// Read the next record into `out` (cleared first).
    pub fn read_record(&mut self, out: &mut Vec<u8>) -> Result<ReadOutcome> {
        out.clear();
        let mut in_fragmented_record = false;
        loop {
            match self.next_fragment()? {
                Fragment::Data(t, range) => match t {
                    RecordType::Full => {
                        if in_fragmented_record {
                            // Unfinished earlier record: drop it, take this.
                            self.dropped += out.len() as u64;
                            out.clear();
                        }
                        out.extend_from_slice(&self.block[range]);
                        return Ok(ReadOutcome::Record);
                    }
                    RecordType::First => {
                        if in_fragmented_record {
                            self.dropped += out.len() as u64;
                            out.clear();
                        }
                        in_fragmented_record = true;
                        out.extend_from_slice(&self.block[range]);
                    }
                    RecordType::Middle => {
                        if !in_fragmented_record {
                            self.dropped += range.len() as u64;
                        } else {
                            out.extend_from_slice(&self.block[range]);
                        }
                    }
                    RecordType::Last => {
                        if !in_fragmented_record {
                            self.dropped += range.len() as u64;
                        } else {
                            out.extend_from_slice(&self.block[range]);
                            return Ok(ReadOutcome::Record);
                        }
                    }
                },
                Fragment::BlockEnd => continue,
                Fragment::Corrupt(len) => {
                    self.dropped += (len + out.len()) as u64;
                    out.clear();
                    if self.strict && self.intact_record_follows()? {
                        return Err(Error::corruption(
                            "log record damaged in the middle of the log (intact records follow)",
                        ));
                    }
                    // Torn tail: treat as end of usable log.
                    return Ok(ReadOutcome::Eof);
                }
                Fragment::ZeroHeader => {
                    if self.strict && self.intact_record_follows()? {
                        return Err(Error::corruption(
                            "zeroed log region in the middle of the log (intact records follow)",
                        ));
                    }
                    if in_fragmented_record {
                        self.dropped += out.len() as u64;
                        out.clear();
                    }
                    return Ok(ReadOutcome::Eof);
                }
                Fragment::Eof => {
                    if in_fragmented_record {
                        // Torn spanning record at the tail.
                        self.dropped += out.len() as u64;
                        out.clear();
                    }
                    return Ok(ReadOutcome::Eof);
                }
            }
        }
    }

    fn refill(&mut self) -> Result<()> {
        self.block_len = 0;
        self.pos = 0;
        while self.block_len < BLOCK_SIZE {
            let n = self.file.read(&mut self.block[self.block_len..])?;
            if n == 0 {
                self.at_eof = true;
                break;
            }
            self.block_len += n;
        }
        Ok(())
    }

    fn next_fragment(&mut self) -> Result<Fragment> {
        if self.block_len - self.pos < HEADER_SIZE {
            // Less than a header left: block-tail padding, or a torn header
            // at the end of the file.
            let leftover = self.block_len - self.pos;
            if leftover > 0
                && self.at_eof
                && self.block[self.pos..self.block_len].iter().any(|&b| b != 0)
            {
                self.dropped += leftover as u64;
            }
            self.pos = self.block_len;
            if self.at_eof {
                return Ok(Fragment::Eof);
            }
            self.refill()?;
            if self.block_len == 0 {
                return Ok(Fragment::Eof);
            }
            return Ok(Fragment::BlockEnd);
        }

        let header = &self.block[self.pos..self.pos + HEADER_SIZE];
        let stored_crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let length = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) as usize;
        let type_byte = header[6];

        if type_byte == 0 && length == 0 && stored_crc == 0 {
            // An all-zero header: preallocated/zeroed tail. End of usable
            // log unless strict replay finds intact records after it.
            return Ok(Fragment::ZeroHeader);
        }

        let Some(t) = RecordType::from_u8(type_byte) else {
            return Ok(Fragment::Corrupt(self.block_len - self.pos));
        };
        if self.pos + HEADER_SIZE + length > self.block_len {
            return Ok(Fragment::Corrupt(self.block_len - self.pos));
        }
        let payload_start = self.pos + HEADER_SIZE;
        let payload = &self.block[payload_start..payload_start + length];
        let actual = crc32c::extend(crc32c::value(&[type_byte]), payload);
        if crc32c::unmask(stored_crc) != actual {
            return Ok(Fragment::Corrupt(self.block_len - self.pos));
        }
        self.pos = payload_start + length;
        Ok(Fragment::Data(t, payload_start..payload_start + length))
    }

    /// After a damaged fragment at `self.pos`, scan the rest of the file
    /// for any intact fragment (valid type, in-bounds length, matching
    /// CRC) at *any* byte offset. Damage with intact data after it cannot
    /// be a torn tail from a crash mid-append. Consumes the reader.
    fn intact_record_follows(&mut self) -> Result<bool> {
        let mut from = self.pos + 1;
        loop {
            if self.block_len >= HEADER_SIZE {
                for cand in from..=(self.block_len - HEADER_SIZE) {
                    let header = &self.block[cand..cand + HEADER_SIZE];
                    let stored_crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
                    let length = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
                    let type_byte = header[6];
                    if RecordType::from_u8(type_byte).is_none() {
                        continue;
                    }
                    let payload_start = cand + HEADER_SIZE;
                    let payload_end = payload_start + length as usize;
                    if payload_end > self.block_len {
                        continue;
                    }
                    let payload = &self.block[payload_start..payload_end];
                    let actual = crc32c::extend(crc32c::value(&[type_byte]), payload);
                    if crc32c::unmask(stored_crc) == actual {
                        return Ok(true);
                    }
                }
            }
            if self.at_eof {
                return Ok(false);
            }
            self.refill()?;
            if self.block_len == 0 {
                return Ok(false);
            }
            from = 0;
        }
    }
}
