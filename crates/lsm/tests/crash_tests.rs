//! Crash-consistency tests for the baseline LSM engine: the WAL + manifest
//! protocol must preserve synced writes through simulated power failures.

use std::sync::Arc;
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;
use unikv_lsm::{Baseline, CompactionPolicy, LsmDb, LsmOptions};

fn crash_opts() -> LsmOptions {
    LsmOptions {
        write_buffer_size: 4 << 10,
        table_size: 8 << 10,
        base_level_bytes: 16 << 10,
        l0_compaction_trigger: 2,
        sync_writes: true,
        ..Default::default()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i}-").into_bytes().repeat(4)
}

#[test]
fn synced_writes_survive_crash() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    {
        let db = LsmDb::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
        for i in 0..1_000u32 {
            db.put(&key(i), &value(i)).unwrap();
        }
        db.delete(&key(13)).unwrap();
    }
    fault.crash().unwrap();
    let db = LsmDb::open(fault as Arc<_>, "/db", crash_opts()).unwrap();
    for i in (0..1_000).step_by(37) {
        let expect = if i == 13 { None } else { Some(value(i)) };
        assert_eq!(db.get(&key(i)).unwrap(), expect, "key {i}");
    }
    let items = db.scan(b"", 2_000).unwrap();
    assert_eq!(items.len(), 999);
}

#[test]
fn crash_mid_unsynced_loses_bounded_tail() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let mut opts = crash_opts();
    opts.sync_writes = false;
    {
        let db = LsmDb::open(fault.clone() as Arc<_>, "/db", opts.clone()).unwrap();
        for i in 0..1_000u32 {
            db.put(&key(i), &value(i)).unwrap();
        }
    }
    fault.crash().unwrap();
    let db = LsmDb::open(fault as Arc<_>, "/db", opts).unwrap();
    let survivors = (0..1_000u32)
        .filter(|&i| db.get(&key(i)).unwrap() == Some(value(i)))
        .count();
    // Only the unsynced WAL tail (at most roughly one memtable) may vanish.
    assert!(survivors >= 800, "lost too much: {survivors}/1000");
}

#[test]
fn repeated_crashes_across_policies() {
    for policy in [CompactionPolicy::Leveled, CompactionPolicy::Fragmented] {
        let fault = FaultInjectionEnv::new(MemEnv::shared());
        let mut opts = crash_opts();
        opts.policy = policy;
        let mut written = 0u32;
        for round in 0..4 {
            {
                let db = LsmDb::open(fault.clone() as Arc<_>, "/db", opts.clone()).unwrap();
                // Prior rounds intact.
                for i in (0..written).step_by(53) {
                    assert_eq!(
                        db.get(&key(i)).unwrap(),
                        Some(value(i)),
                        "policy {policy:?} round {round} key {i}"
                    );
                }
                for i in written..written + 300 {
                    db.put(&key(i), &value(i)).unwrap();
                }
                written += 300;
            }
            fault.crash().unwrap();
        }
    }
}

#[test]
fn crash_right_after_compactions() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    {
        let db = LsmDb::open(fault.clone() as Arc<_>, "/db", crash_opts()).unwrap();
        for round in 0..3u32 {
            for i in 0..600u32 {
                db.put(&key(i), &format!("r{round}-{i}").into_bytes().repeat(3))
                    .unwrap();
            }
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        assert!(
            db.stats()
                .compactions
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }
    fault.crash().unwrap();
    let db = LsmDb::open(fault as Arc<_>, "/db", crash_opts()).unwrap();
    for i in (0..600).step_by(29) {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(format!("r2-{i}").into_bytes().repeat(3)),
            "key {i}"
        );
    }
}

#[test]
fn baselines_all_recover() {
    for b in Baseline::all() {
        let fault = FaultInjectionEnv::new(MemEnv::shared());
        let mut opts = LsmOptions::baseline(b);
        opts.write_buffer_size = 4 << 10;
        opts.table_size = 8 << 10;
        opts.base_level_bytes = 16 << 10;
        opts.sync_writes = true;
        {
            let db = LsmDb::open(fault.clone() as Arc<_>, "/db", opts.clone()).unwrap();
            for i in 0..500u32 {
                db.put(&key(i), &value(i)).unwrap();
            }
        }
        fault.crash().unwrap();
        let db = LsmDb::open(fault as Arc<_>, "/db", opts).unwrap();
        for i in (0..500).step_by(61) {
            assert_eq!(
                db.get(&key(i)).unwrap(),
                Some(value(i)),
                "{} key {i}",
                b.name()
            );
        }
    }
}
