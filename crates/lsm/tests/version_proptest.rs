//! Property tests: manifest edits replay to the same version regardless of
//! snapshot/rewrite boundaries, and leveled invariants hold after edits.

use proptest::prelude::*;
use unikv_common::ikey::{make_internal_key, ValueType};
use unikv_lsm::version::{apply_edit, Version, VersionEdit};

fn ik(k: u8) -> Vec<u8> {
    make_internal_key(&[k], 1, ValueType::Value)
}

#[derive(Debug, Clone)]
enum EditStep {
    Add {
        level: u32,
        lo: u8,
        hi: u8,
        size: u64,
    },
    DeleteNth(usize),
}

fn step_strategy() -> impl Strategy<Value = EditStep> {
    prop_oneof![
        3 => (0u32..4, any::<u8>(), any::<u8>(), 1u64..1000).prop_map(|(level, a, b, size)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            EditStep::Add { level, lo, hi, size }
        }),
        1 => any::<usize>().prop_map(EditStep::DeleteNth),
    ]
}

proptest! {
    /// Applying each edit individually equals applying one merged edit,
    /// and re-encoding through the wire format changes nothing.
    #[test]
    fn prop_edit_application_consistent(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let mut incremental = Version::empty(5);
        let mut live: Vec<(u32, u64)> = Vec::new(); // (level, number)
        let mut next_file = 1u64;
        let mut merged = VersionEdit::default();

        for step in &steps {
            let mut edit = VersionEdit::default();
            match step {
                EditStep::Add { level, lo, hi, size } => {
                    edit.added.push((*level, next_file, *size, ik(*lo), ik(*hi)));
                    merged.added.push((*level, next_file, *size, ik(*lo), ik(*hi)));
                    live.push((*level, next_file));
                    next_file += 1;
                }
                EditStep::DeleteNth(n) => {
                    if live.is_empty() { continue; }
                    let (level, number) = live.remove(n % live.len());
                    edit.deleted.push((level, number));
                    // The merged edit models a manifest snapshot: a file
                    // both added and deleted within the window simply
                    // never appears (apply_edit processes deletes before
                    // adds, so delete+add of the same file would re-add).
                    merged.added.retain(|(_, num, ..)| *num != number);
                }
            }
            // Wire roundtrip must be lossless.
            let decoded = VersionEdit::decode(&edit.encode()).unwrap();
            prop_assert_eq!(&decoded, &edit);
            incremental = apply_edit(&incremental, &decoded, true);
        }

        let at_once = apply_edit(&Version::empty(5), &merged, true);
        prop_assert_eq!(incremental.total_files(), at_once.total_files());
        prop_assert_eq!(incremental.total_bytes(), at_once.total_bytes());
        for level in 0..5 {
            let a: Vec<u64> = incremental.levels[level].iter().map(|f| f.number).collect();
            let b: Vec<u64> = at_once.levels[level].iter().map(|f| f.number).collect();
            prop_assert_eq!(a, b, "level {} differs", level);
        }

        // Structural invariants: L0 newest-first, levels >=1 key-sorted.
        if !incremental.levels[0].is_empty() {
            prop_assert!(incremental.levels[0]
                .windows(2)
                .all(|w| w[0].number > w[1].number));
        }
        for level in 1..5 {
            prop_assert!(incremental.levels[level]
                .windows(2)
                .all(|w| w[0].smallest <= w[1].smallest));
        }
    }
}
