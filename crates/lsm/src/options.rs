//! Engine tuning and the four baseline presets.

/// Which compaction discipline organizes levels ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Levels ≥ 1 hold one sorted run; compaction merges input files with
    /// all overlapping files of the next level (LevelDB/RocksDB family).
    Leveled,
    /// Levels hold multiple overlapping runs; compaction re-sorts the
    /// source level and appends to the next level without rewriting it
    /// (PebblesDB-style fragmented/guarded levels).
    Fragmented,
}

/// Named baseline presets from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// LevelDB v1.20-like behaviour.
    LevelDb,
    /// RocksDB-like behaviour (larger buffers, more L0 tolerance).
    RocksDb,
    /// HyperLevelDB-like behaviour (lazy, overlap-minimizing picks).
    HyperLevelDb,
    /// PebblesDB-like behaviour (fragmented LSM).
    PebblesDb,
}

impl Baseline {
    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::LevelDb => "LevelDB",
            Baseline::RocksDb => "RocksDB",
            Baseline::HyperLevelDb => "HyperLevelDB",
            Baseline::PebblesDb => "PebblesDB",
        }
    }

    /// All four baselines, in the paper's presentation order.
    pub fn all() -> [Baseline; 4] {
        [
            Baseline::LevelDb,
            Baseline::RocksDb,
            Baseline::HyperLevelDb,
            Baseline::PebblesDb,
        ]
    }
}

/// Tuning knobs for [`crate::LsmDb`].
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Memtable size that triggers a flush.
    pub write_buffer_size: usize,
    /// Target SSTable file size.
    pub table_size: usize,
    /// SSTable data-block size.
    pub block_size: usize,
    /// Bloom bits per key; `None` disables filters.
    pub bloom_bits_per_key: Option<usize>,
    /// Number of L0 files that triggers a compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Number of levels.
    pub num_levels: usize,
    /// Size target of level 1; level L target is
    /// `base_level_bytes * multiplier^(L-1)`.
    pub base_level_bytes: u64,
    /// Per-level size multiplier.
    pub level_size_multiplier: u64,
    /// Compaction discipline.
    pub policy: CompactionPolicy,
    /// For [`CompactionPolicy::Fragmented`]: number of runs at a level that
    /// triggers merging that level down.
    pub fragmented_runs_trigger: usize,
    /// Pick the compaction input minimizing next-level overlap
    /// (HyperLevelDB-style) rather than round-robin by key range.
    pub overlap_minimizing_picks: bool,
    /// fsync the WAL on every write.
    pub sync_writes: bool,
    /// Block-cache capacity in bytes (0 disables caching).
    pub block_cache_bytes: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            write_buffer_size: 4 << 20,
            table_size: 2 << 20,
            block_size: 4096,
            bloom_bits_per_key: Some(10),
            l0_compaction_trigger: 4,
            num_levels: 7,
            base_level_bytes: 10 << 20,
            level_size_multiplier: 10,
            policy: CompactionPolicy::Leveled,
            fragmented_runs_trigger: 4,
            overlap_minimizing_picks: false,
            sync_writes: false,
            block_cache_bytes: 8 << 20,
        }
    }
}

impl LsmOptions {
    /// The preset approximating `baseline` at workspace benchmark scale.
    pub fn baseline(baseline: Baseline) -> LsmOptions {
        let base = LsmOptions::default();
        match baseline {
            Baseline::LevelDb => LsmOptions {
                write_buffer_size: 2 << 20,
                l0_compaction_trigger: 4,
                ..base
            },
            Baseline::RocksDb => LsmOptions {
                write_buffer_size: 4 << 20,
                l0_compaction_trigger: 8,
                block_cache_bytes: 16 << 20,
                ..base
            },
            Baseline::HyperLevelDb => LsmOptions {
                write_buffer_size: 4 << 20,
                l0_compaction_trigger: 6,
                overlap_minimizing_picks: true,
                ..base
            },
            Baseline::PebblesDb => LsmOptions {
                write_buffer_size: 4 << 20,
                policy: CompactionPolicy::Fragmented,
                fragmented_runs_trigger: 4,
                ..base
            },
        }
    }

    /// Uniformly scale the size knobs (write buffer, table size, level
    /// targets) by `factor` — used to shrink the paper's server-scale
    /// configuration to laptop-scale datasets without changing the
    /// flush/compaction *frequency per operation*.
    pub fn scaled_down(mut self, factor: u64) -> LsmOptions {
        assert!(factor >= 1);
        self.write_buffer_size = (self.write_buffer_size / factor as usize).max(64 << 10);
        self.table_size = (self.table_size / factor as usize).max(32 << 10);
        self.base_level_bytes = (self.base_level_bytes / factor).max(256 << 10);
        self.block_cache_bytes = (self.block_cache_bytes / factor as usize).max(256 << 10);
        self
    }

    /// Target byte size of level `level` (levels ≥ 1).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut size = self.base_level_bytes;
        for _ in 1..level {
            size = size.saturating_mul(self.level_size_multiplier);
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let ldb = LsmOptions::baseline(Baseline::LevelDb);
        let rdb = LsmOptions::baseline(Baseline::RocksDb);
        let hdb = LsmOptions::baseline(Baseline::HyperLevelDb);
        let pdb = LsmOptions::baseline(Baseline::PebblesDb);
        assert!(rdb.l0_compaction_trigger > ldb.l0_compaction_trigger);
        assert!(hdb.overlap_minimizing_picks);
        assert_eq!(pdb.policy, CompactionPolicy::Fragmented);
        assert_eq!(ldb.policy, CompactionPolicy::Leveled);
    }

    #[test]
    fn level_targets_grow_geometrically() {
        let o = LsmOptions::default();
        assert_eq!(o.level_target_bytes(1), 10 << 20);
        assert_eq!(o.level_target_bytes(2), 100 << 20);
        assert_eq!(o.level_target_bytes(3), 1000 << 20);
    }

    #[test]
    fn scaling_preserves_ratios_roughly() {
        let o = LsmOptions::default().scaled_down(16);
        assert_eq!(o.write_buffer_size, (4 << 20) / 16);
        assert_eq!(o.base_level_bytes, (10 << 20) / 16);
    }
}
