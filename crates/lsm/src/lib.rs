#![warn(missing_docs)]

//! Baseline LSM-tree engine (LevelDB lineage), used as the comparison
//! point for every experiment in the paper.
//!
//! One engine, four personalities: the compaction policy and tuning presets
//! in [`options`] approximate the paper's baselines —
//!
//! * **LevelDB**: classic leveled compaction, small write buffer, eager
//!   level targets.
//! * **RocksDB**: leveled with larger buffers and higher L0 tolerance.
//! * **HyperLevelDB**: leveled but lazier — picks the input with minimal
//!   overlap into the next level to cut write amplification.
//! * **PebblesDB**: fragmented levels — compaction re-sorts level-L runs
//!   and appends them to level L+1 *without rewriting* L+1 (tiered within
//!   levels), trading scan/read cost for write amplification.
//!
//! All four share the same WAL, memtable, SSTable, manifest, and recovery
//! code, so benchmark deltas isolate exactly the policy differences — the
//! substitution argument in DESIGN.md §4.

pub mod compaction;
pub mod db;
pub mod filenames;
pub mod iter;
pub mod options;
pub mod stats;
pub mod version;

pub use db::{LsmDb, ScanItem};
pub use options::{Baseline, CompactionPolicy, LsmOptions};
pub use stats::EngineStats;
