//! Compaction machinery: output-table writing shared by flushes and
//! compactions, and the policy logic choosing what to compact.

use crate::iter::InternalIterator;
use crate::options::{CompactionPolicy, LsmOptions};
use crate::version::{FileMetaData, Version};
use std::sync::Arc;
use unikv_common::ikey::{extract_seq_type, extract_user_key, ValueType};
use unikv_common::{KeyRange, Result};
use unikv_env::Env;
use unikv_sstable::{TableBuilder, TableBuilderOptions};

/// What a compaction should do with logically dead entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropPolicy {
    /// Keep only the newest version of each user key (safe without
    /// exported snapshots).
    pub dedup_user_keys: bool,
    /// Drop tombstones entirely (only safe when no older data for the key
    /// can exist below the output level).
    pub drop_tombstones: bool,
}

/// Description of one chosen compaction.
#[derive(Debug)]
pub struct CompactionJob {
    /// Source level.
    pub level: usize,
    /// Files taken from `level`.
    pub inputs_lo: Vec<Arc<FileMetaData>>,
    /// Files taken from `level + 1` (empty under the fragmented policy).
    pub inputs_hi: Vec<Arc<FileMetaData>>,
}

impl CompactionJob {
    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs_lo
            .iter()
            .chain(&self.inputs_hi)
            .map(|f| f.size)
            .sum()
    }
}

/// Write the entries of `iter` (already positioned at the first entry)
/// into one or more tables of at most `table_size` bytes, applying `drop`.
/// Returns metadata for the created files.
#[allow(clippy::too_many_arguments)]
pub fn write_tables(
    env: &dyn Env,
    dir: &std::path::Path,
    alloc_file_number: &mut dyn FnMut() -> u64,
    iter: &mut dyn InternalIterator,
    table_opts: &TableBuilderOptions,
    table_size: usize,
    drop: DropPolicy,
    mut on_bytes_written: impl FnMut(u64),
) -> Result<Vec<Arc<FileMetaData>>> {
    let mut outputs = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut last_user_key: Option<Vec<u8>> = None;

    while iter.valid() {
        let ikey = iter.ikey();
        let user_key = extract_user_key(ikey);
        let (_, vt) = extract_seq_type(ikey)?;

        let is_shadowed = drop.dedup_user_keys && last_user_key.as_deref() == Some(user_key);
        let is_dead_tombstone = drop.drop_tombstones && vt == ValueType::Deletion;
        if drop.dedup_user_keys && last_user_key.as_deref() != Some(user_key) {
            last_user_key = Some(user_key.to_vec());
        }

        if !is_shadowed && !is_dead_tombstone {
            if builder.is_none() {
                let number = alloc_file_number();
                let file = env.new_writable(&crate::filenames::table_file(dir, number))?;
                builder = Some((number, TableBuilder::new(file, table_opts.clone())));
            }
            let (_, b) = builder.as_mut().expect("created above");
            b.add(ikey, iter.value())?;
            if b.estimated_size() >= table_size as u64 {
                let (number, b) = builder.take().expect("present");
                let props = b.finish()?;
                on_bytes_written(props.file_size);
                outputs.push(FileMetaData::new(
                    number,
                    props.file_size,
                    props.smallest,
                    props.largest,
                ));
            }
        }
        iter.next()?;
    }

    if let Some((number, b)) = builder.take() {
        if b.num_entries() > 0 {
            let props = b.finish()?;
            on_bytes_written(props.file_size);
            outputs.push(FileMetaData::new(
                number,
                props.file_size,
                props.smallest,
                props.largest,
            ));
        } else {
            // Nothing written: remove the empty file.
            let _ = env.delete_file(&crate::filenames::table_file(dir, number));
        }
    }
    Ok(outputs)
}

/// Pick the next compaction under `opts`, or `None` when nothing exceeds
/// its trigger. `round_robin_cursor` persists the leveled pick position.
pub fn pick_compaction(
    version: &Version,
    opts: &LsmOptions,
    round_robin_cursor: &mut usize,
) -> Option<CompactionJob> {
    match opts.policy {
        CompactionPolicy::Leveled => pick_leveled(version, opts, round_robin_cursor),
        CompactionPolicy::Fragmented => pick_fragmented(version, opts),
    }
}

/// The union user-key range covered by `files`.
fn key_range_of(files: &[Arc<FileMetaData>]) -> KeyRange {
    let mut range = KeyRange::new(
        extract_user_key(&files[0].smallest).to_vec(),
        extract_user_key(&files[0].largest).to_vec(),
    );
    for f in &files[1..] {
        range.extend_to(extract_user_key(&f.smallest));
        range.extend_to(extract_user_key(&f.largest));
    }
    range
}

fn pick_leveled(version: &Version, opts: &LsmOptions, cursor: &mut usize) -> Option<CompactionJob> {
    // L0 first: file count trigger.
    if version.level_files(0) >= opts.l0_compaction_trigger {
        let inputs_lo = version.levels[0].clone();
        let range = key_range_of(&inputs_lo);
        let inputs_hi = version.overlapping_files(1, range.smallest(), range.largest());
        return Some(CompactionJob {
            level: 0,
            inputs_lo,
            inputs_hi,
        });
    }
    // Size triggers on levels 1..max-1.
    for level in 1..version.levels.len() - 1 {
        if version.level_bytes(level) <= opts.level_target_bytes(level) {
            continue;
        }
        let files = &version.levels[level];
        if files.is_empty() {
            continue;
        }
        let chosen = if opts.overlap_minimizing_picks {
            // HyperLevelDB-style: the file whose next-level overlap is
            // smallest relative to its own size — least wasted rewriting.
            files
                .iter()
                .min_by_key(|f| {
                    let lo = extract_user_key(&f.smallest);
                    let hi = extract_user_key(&f.largest);
                    let overlap: u64 = version
                        .overlapping_files(level + 1, lo, hi)
                        .iter()
                        .map(|g| g.size)
                        .sum();
                    // Scale to compare ratios without floats.
                    overlap * 1024 / f.size.max(1)
                })
                .expect("non-empty")
                .clone()
        } else {
            // LevelDB-style round-robin over the sorted file list.
            let idx = *cursor % files.len();
            *cursor = cursor.wrapping_add(1);
            files[idx].clone()
        };
        let lo = extract_user_key(&chosen.smallest).to_vec();
        let hi = extract_user_key(&chosen.largest).to_vec();
        let inputs_hi = version.overlapping_files(level + 1, &lo, &hi);
        return Some(CompactionJob {
            level,
            inputs_lo: vec![chosen],
            inputs_hi,
        });
    }
    None
}

fn pick_fragmented(version: &Version, opts: &LsmOptions) -> Option<CompactionJob> {
    // A level compacts when it accumulates too many runs; ALL of its files
    // are then re-sorted and appended to the next level as one run, which
    // is never read or rewritten (PebblesDB's key trick). This is tiering
    // with fanout = runs trigger, so write amplification is bounded by the
    // number of populated levels instead of the leveled rewrite factor.
    for level in 0..version.levels.len() - 1 {
        let files = version.level_files(level);
        if files == 0 {
            continue;
        }
        let run_trigger = if level == 0 {
            opts.l0_compaction_trigger
        } else {
            opts.fragmented_runs_trigger
        };
        if files >= run_trigger {
            return Some(CompactionJob {
                level,
                inputs_lo: version.levels[level].clone(),
                inputs_hi: Vec::new(),
            });
        }
    }
    None
}

/// True if no file in levels strictly below `output_level` overlaps the
/// user-key range — tombstones compacted into such a level can be dropped.
pub fn range_is_bottommost(version: &Version, output_level: usize, lo: &[u8], hi: &[u8]) -> bool {
    for level in (output_level + 1)..version.levels.len() {
        if !version.overlapping_files(level, lo, hi).is_empty() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::{apply_edit, VersionEdit};
    use unikv_common::ikey::make_internal_key;

    fn ik(k: &[u8]) -> Vec<u8> {
        make_internal_key(k, 1, ValueType::Value)
    }

    #[allow(clippy::type_complexity)]
    fn version_with(files: &[(u32, u64, u64, &[u8], &[u8])], leveled: bool) -> Arc<Version> {
        let mut e = VersionEdit::default();
        for (level, num, size, lo, hi) in files {
            e.added.push((*level, *num, *size, ik(lo), ik(hi)));
        }
        apply_edit(&Version::empty(7), &e, leveled)
    }

    #[test]
    fn leveled_l0_trigger() {
        let opts = LsmOptions::default();
        let v = version_with(
            &[
                (0, 1, 10, b"a", b"c"),
                (0, 2, 10, b"b", b"d"),
                (0, 3, 10, b"a", b"z"),
                (0, 4, 10, b"m", b"q"),
                (1, 5, 10, b"a", b"k"),
                (1, 6, 10, b"l", b"z"),
            ],
            true,
        );
        let mut cursor = 0;
        let job = pick_compaction(&v, &opts, &mut cursor).expect("L0 over trigger");
        assert_eq!(job.level, 0);
        assert_eq!(job.inputs_lo.len(), 4);
        assert_eq!(job.inputs_hi.len(), 2, "both L1 files overlap a..z");
        assert_eq!(job.input_bytes(), 60);
    }

    #[test]
    fn leveled_no_trigger_none() {
        let opts = LsmOptions::default();
        let v = version_with(&[(0, 1, 10, b"a", b"b")], true);
        assert!(pick_compaction(&v, &opts, &mut 0).is_none());
    }

    #[test]
    fn leveled_size_trigger() {
        let opts = LsmOptions {
            base_level_bytes: 100,
            ..Default::default()
        };
        let v = version_with(
            &[
                (1, 1, 90, b"a", b"f"),
                (1, 2, 60, b"g", b"p"),
                (2, 3, 50, b"a", b"e"),
                (2, 4, 50, b"h", b"m"),
            ],
            true,
        );
        let job = pick_compaction(&v, &opts, &mut 0).expect("L1 over size");
        assert_eq!(job.level, 1);
        assert_eq!(job.inputs_lo.len(), 1);
        // Whichever file was picked, inputs_hi must be its L2 overlaps.
        let range = key_range_of(&job.inputs_lo);
        for f in &job.inputs_hi {
            assert!(f.overlaps_user_range(range.smallest(), range.largest()));
        }
    }

    #[test]
    fn hyper_picks_min_overlap() {
        let opts = LsmOptions {
            overlap_minimizing_picks: true,
            base_level_bytes: 100,
            ..Default::default()
        };
        // File 1 overlaps a big L2 file; file 2 overlaps nothing.
        let v = version_with(
            &[
                (1, 1, 80, b"a", b"f"),
                (1, 2, 80, b"q", b"t"),
                (2, 3, 500, b"a", b"g"),
            ],
            true,
        );
        let job = pick_compaction(&v, &opts, &mut 0).unwrap();
        assert_eq!(
            job.inputs_lo[0].number, 2,
            "should pick the overlap-free file"
        );
        assert!(job.inputs_hi.is_empty());
    }

    #[test]
    fn fragmented_never_reads_next_level() {
        let mut opts = LsmOptions::baseline(crate::options::Baseline::PebblesDb);
        opts.fragmented_runs_trigger = 2;
        let v = version_with(
            &[
                (1, 1, 10, b"a", b"m"),
                (1, 2, 10, b"c", b"z"),
                (2, 3, 10, b"a", b"z"),
            ],
            false,
        );
        let job = pick_compaction(&v, &opts, &mut 0).unwrap();
        assert_eq!(job.level, 1);
        assert_eq!(job.inputs_lo.len(), 2);
        assert!(job.inputs_hi.is_empty(), "fragmented must not rewrite L2");
    }

    #[test]
    fn bottommost_detection() {
        let v = version_with(&[(1, 1, 10, b"a", b"f"), (3, 2, 10, b"d", b"k")], true);
        assert!(!range_is_bottommost(&v, 1, b"a", b"f"), "L3 overlaps d..f");
        assert!(
            range_is_bottommost(&v, 1, b"l", b"z"),
            "nothing below overlaps l..z"
        );
        assert!(range_is_bottommost(&v, 3, b"a", b"z"));
    }
}
