//! The baseline LSM database: WAL + memtable + leveled/fragmented SSTables.
//!
//! Concurrency model: one mutex guards all structural state (memtable
//! handle, version, WAL); point reads and scans clone the `Arc`s they need
//! under the lock and then run lock-free. Flushes and compactions run
//! inline in the write path — the same total work as LevelDB's
//! single-threaded background compaction, scheduled synchronously so
//! experiments are deterministic.

use crate::compaction::{pick_compaction, range_is_bottommost, write_tables, DropPolicy};
use crate::filenames::{self, FileKind};
use crate::iter::{ConcatSource, InternalIterator, MemTableSource, MergingIterator, TableSource};
use crate::options::{CompactionPolicy, LsmOptions};
use crate::stats::EngineStats;
use crate::version::{apply_edit, FileMetaData, Version, VersionEdit};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use unikv_common::coding::{
    get_length_prefixed_slice, get_varint64, put_length_prefixed_slice, put_varint64,
};
use unikv_common::ikey::{
    compare_internal_keys, extract_seq_type, extract_user_key, make_internal_key, SequenceNumber,
    ValueType, MAX_SEQUENCE_NUMBER,
};
use unikv_common::metrics::{EngineMetrics, MetricsRegistry, TraceOutcome};
use unikv_common::perf::{self, PerfContext, PerfStage};
use unikv_common::{Error, Result};
use unikv_env::Env;
use unikv_memtable::{LookupResult, MemTable};
use unikv_sstable::{BlockCache, Table, TableBuilderOptions, TableOptions};
use unikv_wal::{LogReader, LogWriter, ReadOutcome};

/// One scan result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanItem {
    /// User key.
    pub key: Vec<u8>,
    /// Value.
    pub value: Vec<u8>,
}

/// Lazily-opened table handles, shared by reads and compactions.
pub(crate) struct TableCache {
    env: Arc<dyn Env>,
    dir: PathBuf,
    topts: TableOptions,
    map: Mutex<HashMap<u64, Arc<Table>>>,
}

impl TableCache {
    fn new(env: Arc<dyn Env>, dir: PathBuf, topts: TableOptions) -> Self {
        TableCache {
            env,
            dir,
            topts,
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, number: u64) -> Result<Arc<Table>> {
        if let Some(t) = self.map.lock().get(&number) {
            return Ok(t.clone());
        }
        let path = filenames::table_file(&self.dir, number);
        let size = self.env.file_size(&path)?;
        let file = self.env.new_random_access(&path)?;
        let table = Table::open(file, size, self.topts.clone())?;
        self.map.lock().insert(number, table.clone());
        Ok(table)
    }

    fn evict(&self, number: u64) {
        if let Some(t) = self.map.lock().remove(&number) {
            t.evict_from_cache();
        }
    }
}

struct DbState {
    mem: Arc<MemTable>,
    version: Arc<Version>,
    wal: LogWriter,
    wal_number: u64,
    manifest: LogWriter,
    next_file: u64,
    last_seq: SequenceNumber,
    compaction_cursor: usize,
}

/// A baseline LSM database instance.
///
/// ```
/// use unikv_lsm::{Baseline, LsmDb, LsmOptions};
/// use unikv_env::mem::MemEnv;
///
/// let db = LsmDb::open(MemEnv::shared(), "/db", LsmOptions::baseline(Baseline::LevelDb)).unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
/// assert_eq!(db.scan(b"", 10).unwrap().len(), 1);
/// ```
pub struct LsmDb {
    env: Arc<dyn Env>,
    dir: PathBuf,
    opts: LsmOptions,
    state: Mutex<DbState>,
    tables: TableCache,
    stats: Arc<EngineStats>,
    metrics: Arc<MetricsRegistry>,
    eng: EngineMetrics,
}

impl LsmDb {
    /// Open (creating or recovering) a database in `dir`.
    pub fn open(env: Arc<dyn Env>, dir: impl Into<PathBuf>, opts: LsmOptions) -> Result<LsmDb> {
        let dir = dir.into();
        env.create_dir_all(&dir)?;
        let block_cache = if opts.block_cache_bytes > 0 {
            Some(BlockCache::new(opts.block_cache_bytes))
        } else {
            None
        };
        // Baselines report through the same standard metric families as
        // UniKV so cross-engine runs are directly comparable. No trace
        // ring: the baseline's hot path stays mutex-free outside `state`.
        let metrics = MetricsRegistry::new(true, 0);
        let eng = EngineMetrics::new(&metrics);
        let topts = TableOptions {
            cmp: compare_internal_keys,
            cache: block_cache,
            io: Some(unikv_sstable::TableIoMetrics::new(&metrics)),
        };
        let tables = TableCache::new(env.clone(), dir.clone(), topts);

        let current = filenames::current_file(&dir);
        let (version, mut next_file, mut last_seq, mut log_number, manifest_number);
        if env.file_exists(&current) {
            // Recover from the manifest named by CURRENT.
            let name = String::from_utf8(env.read_to_vec(&current)?)
                .map_err(|_| Error::corruption("CURRENT not utf-8"))?;
            let name = name.trim();
            manifest_number = match filenames::parse_file_name(name) {
                Some(FileKind::Manifest(n)) => n,
                _ => return Err(Error::corruption("CURRENT does not name a manifest")),
            };
            let mut v = Version::empty(opts.num_levels);
            next_file = 2;
            last_seq = 0;
            log_number = 0;
            let mut reader = LogReader::new(env.new_sequential(&dir.join(name))?);
            let mut buf = Vec::new();
            let leveled = opts.policy == CompactionPolicy::Leveled;
            while reader.read_record(&mut buf)? == ReadOutcome::Record {
                let edit = VersionEdit::decode(&buf)?;
                if let Some(n) = edit.log_number {
                    log_number = n;
                }
                if let Some(n) = edit.next_file_number {
                    next_file = next_file.max(n);
                }
                if let Some(n) = edit.last_sequence {
                    last_seq = last_seq.max(n);
                }
                v = apply_edit(&v, &edit, leveled);
            }
            version = v;
        } else {
            version = Version::empty(opts.num_levels);
            next_file = 2;
            last_seq = 0;
            log_number = 0;
            manifest_number = 1;
            // Create the initial manifest and point CURRENT at it.
            let mut m =
                LogWriter::new(env.new_writable(&filenames::manifest_file(&dir, manifest_number))?);
            let edit = VersionEdit {
                next_file_number: Some(next_file),
                ..Default::default()
            };
            m.add_record(&edit.encode())?;
            m.sync()?;
            env.write_atomic(
                &current,
                format!("MANIFEST-{manifest_number:06}").as_bytes(),
            )?;
        }

        // Reopen the manifest for appending: we re-create it with the full
        // current state (a "manifest rewrite"), which keeps recovery simple
        // and bounds manifest growth.
        let manifest_number = manifest_number + 1;
        let mut manifest =
            LogWriter::new(env.new_writable(&filenames::manifest_file(&dir, manifest_number))?);
        {
            let mut snapshot = VersionEdit {
                log_number: Some(log_number),
                next_file_number: Some(next_file),
                last_sequence: Some(last_seq),
                ..Default::default()
            };
            for (level, files) in version.levels.iter().enumerate() {
                for f in files {
                    snapshot.add_file(level as u32, f);
                }
            }
            manifest.add_record(&snapshot.encode())?;
            manifest.sync()?;
            env.write_atomic(
                &filenames::current_file(&dir),
                format!("MANIFEST-{manifest_number:06}").as_bytes(),
            )?;
        }

        let stats = Arc::new(EngineStats::default());
        let mem = Arc::new(MemTable::new());

        // Replay WALs newer than the manifest's log number.
        let mut wal_numbers: Vec<u64> = env
            .list_dir(&dir)?
            .iter()
            .filter_map(|n| n.to_str().and_then(filenames::parse_file_name))
            .filter_map(|k| match k {
                FileKind::Wal(n) if n >= log_number => Some(n),
                _ => None,
            })
            .collect();
        wal_numbers.sort_unstable();
        for n in &wal_numbers {
            let mut reader = LogReader::new(env.new_sequential(&filenames::wal_file(&dir, *n))?);
            let mut buf = Vec::new();
            while reader.read_record(&mut buf)? == ReadOutcome::Record {
                let (seq, t, key, value) = decode_wal_record(&buf)?;
                mem.add(seq, t, key, value);
                last_seq = last_seq.max(seq);
            }
        }

        // Fresh WAL for new writes.
        let wal_number = next_file;
        let next_file = next_file + 1;
        let wal = LogWriter::new(env.new_writable(&filenames::wal_file(&dir, wal_number))?);

        let db = LsmDb {
            env: env.clone(),
            dir: dir.clone(),
            opts,
            state: Mutex::new(DbState {
                mem,
                version,
                wal,
                wal_number,
                manifest,
                next_file,
                last_seq,
                compaction_cursor: 0,
            }),
            tables,
            stats,
            metrics,
            eng,
        };

        // Remove files that no version references (old WALs, orphan tables,
        // stale manifests).
        db.delete_obsolete_files(&wal_numbers, manifest_number)?;

        // If recovery replayed a large memtable, flush it now.
        {
            let mut st = db.state.lock();
            if st.mem.approximate_memory_usage() >= db.opts.write_buffer_size {
                db.flush_locked(&mut st)?;
                db.maybe_compact(&mut st, 2)?;
            }
        }
        Ok(db)
    }

    fn delete_obsolete_files(&self, live_wals: &[u64], live_manifest: u64) -> Result<()> {
        let st = self.state.lock();
        let live_tables: std::collections::HashSet<u64> = st
            .version
            .levels
            .iter()
            .flatten()
            .map(|f| f.number)
            .collect();
        let current_wal = st.wal_number;
        drop(st);
        for name in self.env.list_dir(&self.dir)? {
            let Some(kind) = name.to_str().and_then(filenames::parse_file_name) else {
                continue;
            };
            let dead = match kind {
                FileKind::Table(n) => !live_tables.contains(&n),
                FileKind::Wal(n) => n != current_wal && !live_wals.contains(&n),
                FileKind::Manifest(n) => n != live_manifest,
                FileKind::Current => false,
            };
            if dead {
                self.env.delete_file(&self.dir.join(name))?;
            }
        }
        Ok(())
    }

    /// Engine work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The metrics registry (standard engine families + table I/O).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Human-readable metrics report.
    pub fn metrics_report(&self) -> String {
        self.metrics.render_text()
    }

    /// Options this database was opened with.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// Last committed sequence number.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.state.lock().last_seq
    }

    /// Per-level file summaries `(level, [(file, size, accesses)])` for the
    /// motivation skew experiment.
    #[allow(clippy::type_complexity)]
    pub fn version_summary(&self) -> Vec<(usize, Vec<(u64, u64, u64)>)> {
        let v = self.state.lock().version.clone();
        v.levels
            .iter()
            .enumerate()
            .map(|(l, files)| {
                (
                    l,
                    files
                        .iter()
                        .map(|f| {
                            (
                                f.number,
                                f.size,
                                f.accesses.load(std::sync::atomic::Ordering::Relaxed),
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Insert or update `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write_observed(key, value, ValueType::Value, false)
            .map(|_| ())
    }

    /// [`Self::put`] with per-stage profiling for this one operation.
    pub fn put_profiled(&self, key: &[u8], value: &[u8]) -> Result<PerfContext> {
        self.write_observed(key, value, ValueType::Value, true)
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.write_observed(key, b"", ValueType::Deletion, false)
            .map(|_| ())
    }

    fn write_observed(
        &self,
        key: &[u8],
        value: &[u8],
        t: ValueType,
        profile: bool,
    ) -> Result<PerfContext> {
        let t0 = self.metrics.now_micros();
        if profile {
            perf::begin_at(self.metrics.clone(), t0);
        }
        if let Err(e) = self.write_impl(key, value, t) {
            if profile {
                perf::cancel();
            }
            return Err(e);
        }
        let t1 = self.metrics.now_micros();
        let ctx = if profile {
            perf::finish_at(t1)
        } else {
            PerfContext::default()
        };
        self.eng.writes.inc();
        self.eng.put_latency.record(t1.saturating_sub(t0));
        Ok(ctx)
    }

    fn write_impl(&self, key: &[u8], value: &[u8], t: ValueType) -> Result<()> {
        let mut st = self.state.lock();
        let seq = st.last_seq + 1;
        st.last_seq = seq;
        let record = encode_wal_record(seq, t, key, value);
        st.wal.add_record(&record)?;
        if self.opts.sync_writes {
            st.wal.sync()?;
        }
        st.mem.add(seq, t, key, value);
        perf::mark(PerfStage::Memtable);
        EngineStats::add(
            &self.stats.user_bytes_written,
            (key.len() + value.len()) as u64,
        );
        if st.mem.approximate_memory_usage() >= self.opts.write_buffer_size {
            self.flush_locked(&mut st)?;
            // At most two compactions per flush: paces compaction like a
            // lagging background thread (one L0→L1 plus one deeper move),
            // so upper levels retain recent data between flushes as they
            // do in LevelDB.
            self.maybe_compact(&mut st, 2)?;
        }
        Ok(())
    }

    /// Force the memtable to disk (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.mem.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut st)?;
        self.maybe_compact(&mut st, 2)
    }

    /// Run compactions until no trigger fires.
    pub fn compact_all(&self) -> Result<()> {
        let mut st = self.state.lock();
        self.maybe_compact(&mut st, 256)
    }

    fn alloc_file(st: &mut DbState) -> u64 {
        let n = st.next_file;
        st.next_file += 1;
        n
    }

    fn table_builder_opts(&self) -> TableBuilderOptions {
        TableBuilderOptions {
            block_size: self.opts.block_size,
            bloom_bits_per_key: self.opts.bloom_bits_per_key,
            filter_key: extract_user_key,
            ..Default::default()
        }
    }

    fn log_edit(&self, st: &mut DbState, edit: &VersionEdit) -> Result<()> {
        st.manifest.add_record(&edit.encode())?;
        st.manifest.sync()?;
        let leveled = self.opts.policy == CompactionPolicy::Leveled;
        st.version = apply_edit(&st.version, edit, leveled);
        Ok(())
    }

    fn flush_locked(&self, st: &mut DbState) -> Result<()> {
        // Seal the memtable, write it as L0 tables, switch WALs.
        let imm = std::mem::replace(&mut st.mem, Arc::new(MemTable::new()));
        if imm.is_empty() {
            return Ok(());
        }
        let t0 = self.metrics.now_micros();
        st.wal.sync()?;
        let old_wal = st.wal_number;
        let new_wal = Self::alloc_file(st);
        st.wal = LogWriter::new(
            self.env
                .new_writable(&filenames::wal_file(&self.dir, new_wal))?,
        );
        st.wal_number = new_wal;

        let mut iter = MemTableSource::new(imm);
        iter.seek_to_first()?;
        let mut flushed = 0u64;
        let stats = &self.stats;
        let mut alloc = |st: &mut DbState| Self::alloc_file(st);
        // Manual allocation closure workaround: collect numbers up front is
        // wrong (unknown count), so thread `st` through a RefCell-free path
        // by allocating from a local counter then committing below.
        let start = st.next_file;
        let mut used = 0u64;
        let mut alloc_fn = || {
            let n = start + used;
            used += 1;
            n
        };
        let _ = &mut alloc;
        let outputs = write_tables(
            self.env.as_ref(),
            &self.dir,
            &mut alloc_fn,
            &mut iter,
            &self.table_builder_opts(),
            self.opts.table_size,
            DropPolicy {
                dedup_user_keys: true,
                drop_tombstones: false,
            },
            |bytes| flushed += bytes,
        )?;
        st.next_file = start + used;

        EngineStats::add(&stats.bytes_flushed, flushed);
        EngineStats::add(&stats.flushes, 1);

        let mut edit = VersionEdit {
            log_number: Some(new_wal),
            next_file_number: Some(st.next_file),
            last_sequence: Some(st.last_seq),
            ..Default::default()
        };
        for f in &outputs {
            edit.add_file(0, f);
        }
        self.log_edit(st, &edit)?;
        self.env
            .delete_file(&filenames::wal_file(&self.dir, old_wal))?;
        self.eng
            .flush_latency
            .record(self.metrics.now_micros().saturating_sub(t0));
        Ok(())
    }

    fn maybe_compact(&self, st: &mut DbState, max_jobs: usize) -> Result<()> {
        // Run up to `max_jobs` compactions (bounded to avoid spins).
        for _ in 0..max_jobs.min(256) {
            let job = {
                let version = st.version.clone();
                let mut cursor = st.compaction_cursor;
                let job = pick_compaction(&version, &self.opts, &mut cursor);
                st.compaction_cursor = cursor;
                job
            };
            let Some(job) = job else {
                return Ok(());
            };
            self.run_compaction(st, job)?;
        }
        Ok(())
    }

    fn run_compaction(
        &self,
        st: &mut DbState,
        job: crate::compaction::CompactionJob,
    ) -> Result<()> {
        let t0 = self.metrics.now_micros();
        let output_level = job.level + 1;
        let input_bytes = job.input_bytes();
        let all_inputs: Vec<Arc<FileMetaData>> = job
            .inputs_lo
            .iter()
            .chain(&job.inputs_hi)
            .cloned()
            .collect();
        let (lo, hi) = {
            let mut lo = extract_user_key(&all_inputs[0].smallest).to_vec();
            let mut hi = extract_user_key(&all_inputs[0].largest).to_vec();
            for f in &all_inputs[1..] {
                let s = extract_user_key(&f.smallest);
                let l = extract_user_key(&f.largest);
                if s < lo.as_slice() {
                    lo = s.to_vec();
                }
                if l > hi.as_slice() {
                    hi = l.to_vec();
                }
            }
            (lo, hi)
        };
        let drop_tombstones = range_is_bottommost(&st.version, output_level, &lo, &hi)
            // With fragmented levels the output level itself may hold older
            // runs we are not merging; keep tombstones in that case.
            && (self.opts.policy == CompactionPolicy::Leveled
                || st.version.level_files(output_level) == 0);

        let mut children: Vec<Box<dyn InternalIterator>> = Vec::with_capacity(all_inputs.len());
        for f in &all_inputs {
            let table = self.tables.get(f.number)?;
            children.push(Box::new(TableSource::new(&table)));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first()?;

        let start = st.next_file;
        let mut used = 0u64;
        let mut alloc_fn = || {
            let n = start + used;
            used += 1;
            n
        };
        let mut written = 0u64;
        let outputs = write_tables(
            self.env.as_ref(),
            &self.dir,
            &mut alloc_fn,
            &mut merged,
            &self.table_builder_opts(),
            self.opts.table_size,
            DropPolicy {
                dedup_user_keys: true,
                drop_tombstones,
            },
            |bytes| written += bytes,
        )?;
        st.next_file = start + used;

        EngineStats::add(&self.stats.compaction_bytes_read, input_bytes);
        EngineStats::add(&self.stats.compaction_bytes_written, written);
        EngineStats::add(&self.stats.compactions, 1);

        let mut edit = VersionEdit {
            next_file_number: Some(st.next_file),
            ..Default::default()
        };
        for f in &job.inputs_lo {
            edit.delete_file(job.level as u32, f.number);
        }
        for f in &job.inputs_hi {
            edit.delete_file(output_level as u32, f.number);
        }
        for f in &outputs {
            edit.add_file(output_level as u32, f);
        }
        self.log_edit(st, &edit)?;

        for f in &all_inputs {
            self.tables.evict(f.number);
            self.env
                .delete_file(&filenames::table_file(&self.dir, f.number))?;
        }
        self.eng
            .merge_latency
            .record(self.metrics.now_micros().saturating_sub(t0));
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_observed(key, false).map(|(v, _)| v)
    }

    /// [`Self::get`] with per-stage profiling for this one operation.
    pub fn get_profiled(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, PerfContext)> {
        self.get_observed(key, true)
    }

    fn get_observed(&self, key: &[u8], profile: bool) -> Result<(Option<Vec<u8>>, PerfContext)> {
        let t0 = self.metrics.now_micros();
        if profile {
            perf::begin_at(self.metrics.clone(), t0);
        }
        let (value, outcome) = match self.get_impl(key) {
            Ok(r) => r,
            Err(e) => {
                if profile {
                    perf::cancel();
                }
                return Err(e);
            }
        };
        self.eng.record_read(outcome);
        let t1 = self.metrics.now_micros();
        let ctx = if profile {
            perf::finish_at(t1)
        } else {
            PerfContext::default()
        };
        self.eng.get_latency.record(t1.saturating_sub(t0));
        Ok((value, ctx))
    }

    /// Lookup body; returns the answer plus the tier that resolved it
    /// (the baseline has two tiers: memtable and sorted tables).
    fn get_impl(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, TraceOutcome)> {
        let (mem, version, snapshot) = {
            let st = self.state.lock();
            (st.mem.clone(), st.version.clone(), st.last_seq)
        };
        match mem.get(key, snapshot) {
            LookupResult::Value(v) => {
                EngineStats::add(&self.stats.memtable_hits, 1);
                perf::mark(PerfStage::Memtable);
                return Ok((Some(v), TraceOutcome::Memtable));
            }
            LookupResult::Deleted => {
                EngineStats::add(&self.stats.memtable_hits, 1);
                perf::mark(PerfStage::Memtable);
                return Ok((None, TraceOutcome::Memtable));
            }
            LookupResult::NotFound => {}
        }
        perf::mark(PerfStage::Memtable);
        let seek_key = make_internal_key(key, snapshot, ValueType::Value);
        let leveled = self.opts.policy == CompactionPolicy::Leveled;
        for (level, files) in version.levels.iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            if level == 0 || !leveled {
                // Overlapping level: check files newest-first.
                for f in files {
                    if !f.may_contain_user_key(key) {
                        continue;
                    }
                    if let Some(found) = self.search_table(f, &seek_key, key)? {
                        return Ok((found, TraceOutcome::Sorted));
                    }
                }
            } else {
                // Sorted, non-overlapping level: at most one candidate file.
                let idx = files.partition_point(|f| extract_user_key(&f.largest) < key);
                if idx < files.len() && files[idx].may_contain_user_key(key) {
                    if let Some(found) = self.search_table(&files[idx], &seek_key, key)? {
                        return Ok((found, TraceOutcome::Sorted));
                    }
                }
            }
        }
        Ok((None, TraceOutcome::Miss))
    }

    /// Search one table for the newest visible version of `user_key`.
    /// Returns `Some(answer)` when the table resolves the key (value or
    /// tombstone), `None` to continue searching older tables.
    fn search_table(
        &self,
        meta: &Arc<FileMetaData>,
        seek_key: &[u8],
        user_key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>> {
        let table = self.tables.get(meta.number)?;
        if !table.may_contain(user_key) {
            EngineStats::add(&self.stats.bloom_skips, 1);
            return Ok(None);
        }
        EngineStats::add(&self.stats.tables_checked, 1);
        meta.record_access();
        let Some((ikey, value)) = table.get(seek_key, None)? else {
            return Ok(None);
        };
        if extract_user_key(&ikey) != user_key {
            return Ok(None);
        }
        match extract_seq_type(&ikey)?.1 {
            ValueType::Value => Ok(Some(Some(value))),
            ValueType::Deletion => Ok(Some(None)),
        }
    }

    /// Range scan: up to `limit` live entries with `key >= from`.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.scan_range(from, None, limit)
    }

    /// Range scan bounded above: `from <= key < end` (`None` = unbounded).
    pub fn scan_range(
        &self,
        from: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        if let Some(end) = end {
            if end <= from {
                return Ok(Vec::new());
            }
        }
        let t0 = self.metrics.now_micros();
        let mut iter = self.internal_scan_iter()?;
        let snapshot = self.state.lock().last_seq;
        let seek = make_internal_key(from, snapshot, ValueType::Value);
        iter.seek(&seek)?;
        let items = collect_scan_bounded(&mut iter, snapshot, limit, end)?;
        self.eng.scans.inc();
        self.eng.scan_items.add(items.len() as u64);
        self.eng
            .scan_latency
            .record(self.metrics.now_micros().saturating_sub(t0));
        Ok(items)
    }

    /// Build a merging iterator over the entire store (memtable + all
    /// tables). Exposed for compaction-style consumers and tests.
    pub(crate) fn internal_scan_iter(&self) -> Result<MergingIterator> {
        let (mem, version) = {
            let st = self.state.lock();
            (st.mem.clone(), st.version.clone())
        };
        let leveled = self.opts.policy == CompactionPolicy::Leveled;
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(MemTableSource::new(mem)));
        for (level, files) in version.levels.iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            if level == 0 || !leveled {
                // Overlapping runs: one child per table.
                for f in files {
                    let table = self.tables.get(f.number)?;
                    children.push(Box::new(TableSource::new(&table)));
                }
            } else {
                // One sorted run: a concatenating child keeps seek cost at
                // one table per level.
                let mut run = Vec::with_capacity(files.len());
                for f in files {
                    run.push((f.largest.clone(), self.tables.get(f.number)?));
                }
                children.push(Box::new(ConcatSource::new(run)));
            }
        }
        Ok(MergingIterator::new(children))
    }

    /// Total SSTable bytes (space usage reporting).
    pub fn table_bytes(&self) -> u64 {
        self.state.lock().version.total_bytes()
    }

    /// A streaming iterator over the store at the current sequence number.
    /// The iterator sees a consistent snapshot: tables it holds open stay
    /// readable even if compactions replace them afterwards.
    pub fn iter(&self) -> Result<LsmIterator> {
        let inner = self.internal_scan_iter()?;
        let snapshot = self.state.lock().last_seq;
        Ok(LsmIterator {
            inner,
            snapshot,
            current: None,
        })
    }
}

/// A streaming cursor over live entries (newest visible version per key,
/// tombstones suppressed) — LevelDB-style seek/next iteration without
/// materializing the whole result set.
pub struct LsmIterator {
    inner: MergingIterator,
    snapshot: SequenceNumber,
    current: Option<(Vec<u8>, Vec<u8>)>,
}

impl LsmIterator {
    fn advance_to_visible(&mut self, mut last_key: Option<Vec<u8>>) -> Result<()> {
        self.current = None;
        while self.inner.valid() {
            let ikey = self.inner.ikey();
            let (seq, t) = extract_seq_type(ikey)?;
            let user_key = extract_user_key(ikey);
            if last_key.as_deref() != Some(user_key) && seq <= self.snapshot {
                last_key = Some(user_key.to_vec());
                if t == ValueType::Value {
                    self.current = Some((user_key.to_vec(), self.inner.value().to_vec()));
                    return Ok(());
                }
                // Tombstone: key is dead; keep scanning.
            }
            self.inner.next()?;
        }
        Ok(())
    }

    /// Position at the first live entry with `key >= from`.
    pub fn seek(&mut self, from: &[u8]) -> Result<()> {
        self.inner
            .seek(&make_internal_key(from, self.snapshot, ValueType::Value))?;
        self.advance_to_visible(None)
    }

    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Current user key. Panics if not [`valid`](Self::valid).
    pub fn key(&self) -> &[u8] {
        &self.current.as_ref().expect("valid iterator").0
    }

    /// Current value. Panics if not [`valid`](Self::valid).
    pub fn value(&self) -> &[u8] {
        &self.current.as_ref().expect("valid iterator").1
    }

    /// Advance to the next live key.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<()> {
        let last = self.current.take().expect("valid iterator").0;
        self.inner.next()?;
        self.advance_to_visible(Some(last))
    }
}

/// Fold a positioned internal iterator into user-visible scan items:
/// newest visible version per user key, tombstones suppressing the key.
/// Values are taken verbatim from the iterator (engines with separated
/// values post-process the slots).
pub fn collect_scan(
    iter: &mut dyn InternalIterator,
    snapshot: SequenceNumber,
    limit: usize,
) -> Result<Vec<ScanItem>> {
    collect_scan_bounded(iter, snapshot, limit, None)
}

/// [`collect_scan`] with an optional exclusive upper bound on user keys.
pub fn collect_scan_bounded(
    iter: &mut dyn InternalIterator,
    snapshot: SequenceNumber,
    limit: usize,
    end: Option<&[u8]>,
) -> Result<Vec<ScanItem>> {
    let mut out = Vec::with_capacity(limit.min(1024));
    let mut current_key: Option<Vec<u8>> = None;
    while iter.valid() && out.len() < limit {
        let ikey = iter.ikey();
        let (seq, t) = extract_seq_type(ikey)?;
        let user_key = extract_user_key(ikey);
        if let Some(end) = end {
            if user_key >= end {
                break;
            }
        }
        let is_new_key = current_key.as_deref() != Some(user_key);
        if is_new_key && seq <= snapshot {
            current_key = Some(user_key.to_vec());
            if t == ValueType::Value {
                out.push(ScanItem {
                    key: user_key.to_vec(),
                    value: iter.value().to_vec(),
                });
            }
            // Tombstone: the key is dead; skip older versions via
            // current_key matching below.
        }
        iter.next()?;
    }
    Ok(out)
}

/// Encode one write as a WAL record (shared with the UniKV engine).
pub fn encode_wal_record(seq: SequenceNumber, t: ValueType, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(key.len() + value.len() + 16);
    put_varint64(&mut rec, seq);
    rec.push(t as u8);
    put_length_prefixed_slice(&mut rec, key);
    put_length_prefixed_slice(&mut rec, value);
    rec
}

/// Decode a record produced by [`encode_wal_record`].
pub fn decode_wal_record(rec: &[u8]) -> Result<(SequenceNumber, ValueType, &[u8], &[u8])> {
    let (seq, n) = get_varint64(rec)?;
    if seq > MAX_SEQUENCE_NUMBER {
        return Err(Error::corruption("wal sequence overflow"));
    }
    let rest = &rec[n..];
    let (&tb, rest) = rest
        .split_first()
        .ok_or_else(|| Error::corruption("wal record truncated"))?;
    let t = ValueType::from_u8(tb)?;
    let (key, n) = get_length_prefixed_slice(rest)?;
    let (value, m) = get_length_prefixed_slice(&rest[n..])?;
    if n + m != rest.len() {
        return Err(Error::corruption("wal record trailing bytes"));
    }
    Ok((seq, t, key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;

    fn tiny_opts() -> LsmOptions {
        LsmOptions {
            write_buffer_size: 4 << 10,
            table_size: 4 << 10,
            base_level_bytes: 16 << 10,
            l0_compaction_trigger: 2,
            block_cache_bytes: 64 << 10,
            ..Default::default()
        }
    }

    fn open_mem(opts: LsmOptions) -> (Arc<MemEnv>, LsmDb) {
        let env = MemEnv::shared();
        let db = LsmDb::open(env.clone(), "/db", opts).unwrap();
        (env, db)
    }

    #[test]
    fn wal_record_roundtrip() {
        let rec = encode_wal_record(42, ValueType::Value, b"k", b"v");
        let (seq, t, k, v) = decode_wal_record(&rec).unwrap();
        assert_eq!((seq, t, k, v), (42, ValueType::Value, &b"k"[..], &b"v"[..]));
        assert!(decode_wal_record(&rec[..rec.len() - 1]).is_err());
    }

    #[test]
    fn put_get_simple() {
        let (_env, db) = open_mem(tiny_opts());
        db.put(b"hello", b"world").unwrap();
        assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn overwrite_and_delete() {
        let (_env, db) = open_mem(tiny_opts());
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.put(b"k", b"v3").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn many_keys_through_compactions() {
        let (_env, db) = open_mem(tiny_opts());
        let n = 2000u32;
        for i in 0..n {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("value{i}").repeat(3).as_bytes(),
            )
            .unwrap();
        }
        assert!(
            db.stats()
                .flushes
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
        assert!(
            db.stats()
                .compactions
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
        for i in (0..n).step_by(37) {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("value{i}").repeat(3).into_bytes()),
                "key {i}"
            );
        }
    }

    #[test]
    fn scan_is_sorted_and_live() {
        let (_env, db) = open_mem(tiny_opts());
        for i in 0..500u32 {
            db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.delete(b"k0005").unwrap();
        db.put(b"k0003", b"updated").unwrap();
        let items = db.scan(b"k0000", 10).unwrap();
        let keys: Vec<String> = items
            .iter()
            .map(|it| String::from_utf8(it.key.clone()).unwrap())
            .collect();
        assert_eq!(
            keys,
            vec![
                "k0000", "k0001", "k0002", "k0003", "k0004", "k0006", "k0007", "k0008", "k0009",
                "k0010"
            ]
        );
        assert_eq!(items[3].value, b"updated");
    }

    #[test]
    fn recovery_from_wal_and_manifest() {
        let env = MemEnv::shared();
        {
            let db = LsmDb::open(env.clone(), "/db", tiny_opts()).unwrap();
            for i in 0..300u32 {
                db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.delete(b"k0007").unwrap();
        } // dropped without explicit flush: tail lives in the WAL
        let db = LsmDb::open(env, "/db", tiny_opts()).unwrap();
        assert_eq!(db.get(b"k0000").unwrap(), Some(b"v0".to_vec()));
        assert_eq!(db.get(b"k0299").unwrap(), Some(b"v299".to_vec()));
        assert_eq!(db.get(b"k0007").unwrap(), None);
        // Sequence survives so new writes shadow old ones.
        db.put(b"k0001", b"new").unwrap();
        assert_eq!(db.get(b"k0001").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn fragmented_policy_correctness() {
        let mut opts = tiny_opts();
        opts.policy = CompactionPolicy::Fragmented;
        let (_env, db) = open_mem(opts);
        for round in 0..5u32 {
            for i in 0..400u32 {
                db.put(
                    format!("k{i:04}").as_bytes(),
                    format!("r{round}v{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        for i in (0..400).step_by(29) {
            assert_eq!(
                db.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(format!("r4v{i}").into_bytes()),
                "key {i}"
            );
        }
        let items = db.scan(b"k0000", 5).unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].value, b"r4v0");
    }

    #[test]
    fn fragmented_writes_less() {
        // PebblesDB's claim: lower write amplification than leveled, on a
        // distinct-key load (random order so leveled overlaps are real).
        let run = |policy| {
            let mut opts = tiny_opts();
            opts.l0_compaction_trigger = 4;
            opts.policy = policy;
            let (_env, db) = open_mem(opts);
            let mut keys: Vec<u32> = (0..6000).collect();
            // Deterministic shuffle.
            let mut s = 0x12345u64;
            for i in (1..keys.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                keys.swap(i, (s % (i as u64 + 1)) as usize);
            }
            for k in keys {
                db.put(format!("k{k:05}").as_bytes(), &[7u8; 64]).unwrap();
            }
            db.stats().write_amplification()
        };
        let leveled = run(CompactionPolicy::Leveled);
        let fragmented = run(CompactionPolicy::Fragmented);
        assert!(
            fragmented < leveled,
            "fragmented WA {fragmented} !< leveled WA {leveled}"
        );
    }

    #[test]
    fn tombstones_fall_out_at_bottom() {
        let (_env, db) = open_mem(tiny_opts());
        for i in 0..800u32 {
            db.put(format!("k{i:04}").as_bytes(), &[1u8; 32]).unwrap();
        }
        for i in 0..800u32 {
            db.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        assert_eq!(db.scan(b"", 10).unwrap().len(), 0);
        for i in (0..800).step_by(101) {
            assert_eq!(db.get(format!("k{i:04}").as_bytes()).unwrap(), None);
        }
    }

    #[test]
    fn empty_db_operations() {
        let (_env, db) = open_mem(tiny_opts());
        assert_eq!(db.get(b"x").unwrap(), None);
        assert!(db.scan(b"", 10).unwrap().is_empty());
        db.flush().unwrap();
        db.compact_all().unwrap();
    }
}
