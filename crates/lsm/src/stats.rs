//! Engine-level counters used by the experiments: compaction volumes for
//! write-amplification (E11) and per-table access counts for the
//! motivation skew experiment (E2).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing engine work.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Bytes of user data accepted by `put`/`delete` (key + value).
    pub user_bytes_written: AtomicU64,
    /// Bytes written when flushing memtables to L0 tables.
    pub bytes_flushed: AtomicU64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: AtomicU64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: AtomicU64,
    /// Number of flushes.
    pub flushes: AtomicU64,
    /// Number of compactions.
    pub compactions: AtomicU64,
    /// Number of SSTables consulted across all gets.
    pub tables_checked: AtomicU64,
    /// Gets answered from the memtables.
    pub memtable_hits: AtomicU64,
    /// Bloom-filter negatives that skipped a table read.
    pub bloom_skips: AtomicU64,
}

impl EngineStats {
    /// Write amplification: device bytes (flush + compaction writes)
    /// divided by user bytes.
    pub fn write_amplification(&self) -> f64 {
        let user = self.user_bytes_written.load(Ordering::Relaxed);
        if user == 0 {
            return 0.0;
        }
        let device = self.bytes_flushed.load(Ordering::Relaxed)
            + self.compaction_bytes_written.load(Ordering::Relaxed);
        device as f64 / user as f64
    }

    /// Add to a counter (helper keeping call sites short).
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot all counters as `(name, value)` pairs for reporting.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "user_bytes_written",
                self.user_bytes_written.load(Ordering::Relaxed),
            ),
            ("bytes_flushed", self.bytes_flushed.load(Ordering::Relaxed)),
            (
                "compaction_bytes_read",
                self.compaction_bytes_read.load(Ordering::Relaxed),
            ),
            (
                "compaction_bytes_written",
                self.compaction_bytes_written.load(Ordering::Relaxed),
            ),
            ("flushes", self.flushes.load(Ordering::Relaxed)),
            ("compactions", self.compactions.load(Ordering::Relaxed)),
            (
                "tables_checked",
                self.tables_checked.load(Ordering::Relaxed),
            ),
            ("memtable_hits", self.memtable_hits.load(Ordering::Relaxed)),
            ("bloom_skips", self.bloom_skips.load(Ordering::Relaxed)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amp_math() {
        let s = EngineStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        EngineStats::add(&s.user_bytes_written, 100);
        EngineStats::add(&s.bytes_flushed, 100);
        EngineStats::add(&s.compaction_bytes_written, 300);
        assert!((s.write_amplification() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_names_unique() {
        let s = EngineStats::default();
        let snap = s.snapshot();
        let mut names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), snap.len());
    }
}
