//! Internal iterators: a uniform cursor over memtables and SSTables, and
//! the k-way merging iterator both engines use for scans and compactions.

use std::cmp::Ordering;
use std::sync::Arc;
use unikv_common::ikey::compare_internal_keys;
use unikv_common::Result;
use unikv_memtable::{MemTable, OwnedMemTableIterator};
use unikv_sstable::{Table, TableIterator};

/// Cursor over `(internal_key, value)` entries in internal-key order.
pub trait InternalIterator: Send {
    /// True if positioned on an entry.
    fn valid(&self) -> bool;
    /// Position at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;
    /// Position at the first entry with internal key `>= ikey`.
    fn seek(&mut self, ikey: &[u8]) -> Result<()>;
    /// Advance.
    fn next(&mut self) -> Result<()>;
    /// The internal key under the cursor.
    fn ikey(&self) -> &[u8];
    /// The value under the cursor.
    fn value(&self) -> &[u8];
}

/// Adapter: memtable → [`InternalIterator`].
pub struct MemTableSource(OwnedMemTableIterator);

impl MemTableSource {
    /// Wrap a memtable.
    pub fn new(mem: Arc<MemTable>) -> Self {
        MemTableSource(OwnedMemTableIterator::new(mem))
    }
}

impl InternalIterator for MemTableSource {
    fn valid(&self) -> bool {
        self.0.valid()
    }
    fn seek_to_first(&mut self) -> Result<()> {
        self.0.seek_to_first();
        Ok(())
    }
    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.0.seek(ikey);
        Ok(())
    }
    fn next(&mut self) -> Result<()> {
        self.0.next();
        Ok(())
    }
    fn ikey(&self) -> &[u8] {
        self.0.ikey()
    }
    fn value(&self) -> &[u8] {
        self.0.value()
    }
}

/// Adapter: SSTable → [`InternalIterator`].
pub struct TableSource(TableIterator);

impl TableSource {
    /// Wrap an open table.
    pub fn new(table: &Arc<Table>) -> Self {
        TableSource(table.iter())
    }
}

impl InternalIterator for TableSource {
    fn valid(&self) -> bool {
        self.0.valid()
    }
    fn seek_to_first(&mut self) -> Result<()> {
        self.0.seek_to_first()
    }
    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.0.seek(ikey)
    }
    fn next(&mut self) -> Result<()> {
        self.0.next()
    }
    fn ikey(&self) -> &[u8] {
        self.0.key()
    }
    fn value(&self) -> &[u8] {
        self.0.value()
    }
}

/// Iterator over a sorted, non-overlapping sequence of tables (one sorted
/// run: a leveled LSM level, or UniKV's SortedStore), opening and
/// advancing one table at a time so a seek costs one table, not one per
/// file.
pub struct ConcatSource {
    /// `(largest_internal_key, table)` pairs ordered by key.
    tables: Vec<(Vec<u8>, Arc<Table>)>,
    current: usize,
    iter: Option<TableIterator>,
}

impl ConcatSource {
    /// Build over `(largest_internal_key, handle)` pairs already ordered.
    pub fn new(tables: Vec<(Vec<u8>, Arc<Table>)>) -> Self {
        ConcatSource {
            tables,
            current: 0,
            iter: None,
        }
    }

    fn open_current(&mut self) {
        self.iter = self.tables.get(self.current).map(|(_, table)| table.iter());
    }

    fn advance_past_exhausted(&mut self) -> Result<()> {
        while let Some(it) = &self.iter {
            if it.valid() {
                return Ok(());
            }
            self.current += 1;
            self.open_current();
            if let Some(it) = &mut self.iter {
                it.seek_to_first()?;
            }
        }
        Ok(())
    }
}

impl InternalIterator for ConcatSource {
    fn valid(&self) -> bool {
        self.iter.as_ref().is_some_and(|it| it.valid())
    }

    fn seek_to_first(&mut self) -> Result<()> {
        self.current = 0;
        self.open_current();
        if let Some(it) = &mut self.iter {
            it.seek_to_first()?;
        }
        self.advance_past_exhausted()
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        self.current = self
            .tables
            .partition_point(|(largest, _)| compare_internal_keys(largest, ikey).is_lt());
        self.open_current();
        if let Some(it) = &mut self.iter {
            it.seek(ikey)?;
        }
        self.advance_past_exhausted()
    }

    fn next(&mut self) -> Result<()> {
        if let Some(it) = &mut self.iter {
            it.next()?;
        }
        self.advance_past_exhausted()
    }

    fn ikey(&self) -> &[u8] {
        self.iter.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.iter.as_ref().expect("valid").value()
    }
}

/// K-way merge of internal iterators in internal-key order. Ties cannot
/// occur because (user_key, seq) pairs are unique across sources.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl MergingIterator {
    /// Merge `children`.
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, c) in self.children.iter().enumerate() {
            if !c.valid() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if compare_internal_keys(c.ikey(), self.children[b].ikey()) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        self.current = best;
    }
}

impl InternalIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) -> Result<()> {
        for c in &mut self.children {
            c.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, ikey: &[u8]) -> Result<()> {
        for c in &mut self.children {
            c.seek(ikey)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        let cur = self.current.expect("iterator not positioned");
        self.children[cur].next()?;
        self.find_smallest();
        Ok(())
    }

    fn ikey(&self) -> &[u8] {
        self.children[self.current.expect("valid")].ikey()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("valid")].value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_common::ikey::{extract_seq_type, extract_user_key, make_internal_key, ValueType};

    fn mem_with(entries: &[(&[u8], u64, &[u8])]) -> Arc<MemTable> {
        let m = Arc::new(MemTable::new());
        for (k, seq, v) in entries {
            m.add(*seq, ValueType::Value, k, v);
        }
        m
    }

    #[test]
    fn merge_two_memtables() {
        let a = mem_with(&[(b"a", 1, b"1"), (b"c", 3, b"3")]);
        let b = mem_with(&[(b"b", 2, b"2"), (b"d", 4, b"4")]);
        let mut m = MergingIterator::new(vec![
            Box::new(MemTableSource::new(a)),
            Box::new(MemTableSource::new(b)),
        ]);
        m.seek_to_first().unwrap();
        let mut keys = Vec::new();
        while m.valid() {
            keys.push(extract_user_key(m.ikey()).to_vec());
            m.next().unwrap();
        }
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn versions_interleave_newest_first() {
        // Same user key in two sources: higher seq must come first.
        let old = mem_with(&[(b"k", 1, b"old")]);
        let new = mem_with(&[(b"k", 9, b"new")]);
        let mut m = MergingIterator::new(vec![
            Box::new(MemTableSource::new(old)),
            Box::new(MemTableSource::new(new)),
        ]);
        m.seek_to_first().unwrap();
        assert_eq!(m.value(), b"new");
        assert_eq!(extract_seq_type(m.ikey()).unwrap().0, 9);
        m.next().unwrap();
        assert_eq!(m.value(), b"old");
        m.next().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn seek_in_merge() {
        let a = mem_with(&[(b"a", 1, b"1"), (b"m", 2, b"2"), (b"z", 3, b"3")]);
        let b = mem_with(&[(b"g", 4, b"4"), (b"q", 5, b"5")]);
        let mut m = MergingIterator::new(vec![
            Box::new(MemTableSource::new(a)),
            Box::new(MemTableSource::new(b)),
        ]);
        m.seek(&make_internal_key(b"h", u64::MAX >> 8, ValueType::Value))
            .unwrap();
        assert_eq!(extract_user_key(m.ikey()), b"m");
        m.next().unwrap();
        assert_eq!(extract_user_key(m.ikey()), b"q");
    }

    fn table_with(
        env: &unikv_env::mem::MemEnv,
        path: &str,
        keys: &[&[u8]],
    ) -> (Vec<u8>, Arc<Table>) {
        use unikv_env::Env;
        use unikv_sstable::{TableBuilder, TableBuilderOptions, TableOptions};
        let mut b = TableBuilder::new(
            env.new_writable(std::path::Path::new(path)).unwrap(),
            TableBuilderOptions::default(),
        );
        for k in keys {
            b.add(&make_internal_key(k, 1, ValueType::Value), k)
                .unwrap();
        }
        let props = b.finish().unwrap();
        let table = Table::open(
            env.new_random_access(std::path::Path::new(path)).unwrap(),
            props.file_size,
            TableOptions {
                cmp: unikv_common::ikey::compare_internal_keys,
                cache: None,
                io: None,
            },
        )
        .unwrap();
        (props.largest, table)
    }

    #[test]
    fn concat_source_spans_tables() {
        let env = unikv_env::mem::MemEnv::new();
        let t1 = table_with(&env, "/a.sst", &[b"a", b"c"]);
        let t2 = table_with(&env, "/b.sst", &[b"f", b"j"]);
        let mut src = ConcatSource::new(vec![t1, t2]);
        src.seek_to_first().unwrap();
        let mut keys = Vec::new();
        while src.valid() {
            keys.push(extract_user_key(src.ikey()).to_vec());
            src.next().unwrap();
        }
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"c".to_vec(), b"f".to_vec(), b"j".to_vec()]
        );
        // Seek into the second table directly.
        src.seek(&make_internal_key(b"d", u64::MAX >> 9, ValueType::Value))
            .unwrap();
        assert_eq!(extract_user_key(src.ikey()), b"f");
        // Past the end.
        src.seek(&make_internal_key(b"z", u64::MAX >> 9, ValueType::Value))
            .unwrap();
        assert!(!src.valid());
        // Exactly at a boundary key.
        src.seek(&make_internal_key(b"c", u64::MAX >> 9, ValueType::Value))
            .unwrap();
        assert_eq!(extract_user_key(src.ikey()), b"c");
        // Crossing a table boundary with next().
        assert_eq!(extract_user_key(src.ikey()), b"c");
        src.next().unwrap();
        assert_eq!(extract_user_key(src.ikey()), b"f");
    }

    #[test]
    fn concat_source_empty() {
        let mut src = ConcatSource::new(vec![]);
        src.seek_to_first().unwrap();
        assert!(!src.valid());
        src.seek(&make_internal_key(b"x", 1, ValueType::Value))
            .unwrap();
        assert!(!src.valid());
    }

    #[test]
    fn empty_children_ok() {
        let mut m = MergingIterator::new(vec![]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
        let empty = mem_with(&[]);
        let mut m = MergingIterator::new(vec![Box::new(MemTableSource::new(empty))]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
    }
}
