//! Versions and the manifest: the persistent record of which SSTables form
//! each level, maintained as a log of [`VersionEdit`]s (LevelDB-style).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unikv_common::coding::{
    get_length_prefixed_slice, get_varint32, get_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use unikv_common::ikey::extract_user_key;
use unikv_common::{Error, Result};

/// Metadata of one SSTable file. `smallest`/`largest` are internal keys.
#[derive(Debug)]
pub struct FileMetaData {
    /// File number (names the file on disk).
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
    /// Times this table served a point lookup (motivation experiment E2).
    pub accesses: AtomicU64,
}

impl FileMetaData {
    /// Construct metadata for a new file.
    pub fn new(number: u64, size: u64, smallest: Vec<u8>, largest: Vec<u8>) -> Arc<Self> {
        Arc::new(FileMetaData {
            number,
            size,
            smallest,
            largest,
            accesses: AtomicU64::new(0),
        })
    }

    /// True if `user_key` may fall inside this file's range.
    pub fn may_contain_user_key(&self, user_key: &[u8]) -> bool {
        extract_user_key(&self.smallest) <= user_key && user_key <= extract_user_key(&self.largest)
    }

    /// True if this file's user-key range overlaps `[lo, hi]` (inclusive).
    pub fn overlaps_user_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        extract_user_key(&self.smallest) <= hi && lo <= extract_user_key(&self.largest)
    }

    /// Record a point-lookup access.
    pub fn record_access(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
    }
}

/// An immutable snapshot of the level structure.
#[derive(Debug, Clone)]
pub struct Version {
    /// `levels[L]` lists the files of level `L`. Level 0 (and every level
    /// under the fragmented policy) is ordered newest-first (descending
    /// file number); strictly-leveled levels ≥ 1 are sorted by smallest
    /// key and non-overlapping.
    pub levels: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// An empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Arc<Version> {
        Arc::new(Version {
            levels: vec![Vec::new(); num_levels],
        })
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.size).sum()
    }

    /// Number of files at `level`.
    pub fn level_files(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Total files across all levels.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Total bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        (0..self.levels.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// Files of `level` overlapping the inclusive user-key range.
    pub fn overlapping_files(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<FileMetaData>> {
        self.levels[level]
            .iter()
            .filter(|f| f.overlaps_user_range(lo, hi))
            .cloned()
            .collect()
    }
}

/// A delta applied to a [`Version`], persisted in the manifest.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VersionEdit {
    /// New WAL number: logs below it are obsolete after recovery.
    pub log_number: Option<u64>,
    /// High-water mark for file-number allocation.
    pub next_file_number: Option<u64>,
    /// Last sequence number covered by flushed tables.
    pub last_sequence: Option<u64>,
    /// Files added: `(level, number, size, smallest, largest)`.
    #[allow(clippy::type_complexity)]
    pub added: Vec<(u32, u64, u64, Vec<u8>, Vec<u8>)>,
    /// Files deleted: `(level, number)`.
    pub deleted: Vec<(u32, u64)>,
}

// Tag bytes for the edit encoding.
const TAG_LOG_NUMBER: u32 = 1;
const TAG_NEXT_FILE: u32 = 2;
const TAG_LAST_SEQ: u32 = 3;
const TAG_ADD_FILE: u32 = 4;
const TAG_DELETE_FILE: u32 = 5;

impl VersionEdit {
    /// Record a file addition.
    pub fn add_file(&mut self, level: u32, meta: &FileMetaData) {
        self.added.push((
            level,
            meta.number,
            meta.size,
            meta.smallest.clone(),
            meta.largest.clone(),
        ));
    }

    /// Record a file deletion.
    pub fn delete_file(&mut self, level: u32, number: u64) {
        self.deleted.push((level, number));
    }

    /// Serialize for the manifest log.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint32(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint32(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint32(&mut out, TAG_LAST_SEQ);
            put_varint64(&mut out, v);
        }
        for (level, number, size, smallest, largest) in &self.added {
            put_varint32(&mut out, TAG_ADD_FILE);
            put_varint32(&mut out, *level);
            put_varint64(&mut out, *number);
            put_varint64(&mut out, *size);
            put_length_prefixed_slice(&mut out, smallest);
            put_length_prefixed_slice(&mut out, largest);
        }
        for (level, number) in &self.deleted {
            put_varint32(&mut out, TAG_DELETE_FILE);
            put_varint32(&mut out, *level);
            put_varint64(&mut out, *number);
        }
        out
    }

    /// Parse a record produced by [`encode`](Self::encode).
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        while !src.is_empty() {
            let (tag, n) = get_varint32(src)?;
            src = &src[n..];
            match tag {
                TAG_LOG_NUMBER => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.log_number = Some(v);
                }
                TAG_NEXT_FILE => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.next_file_number = Some(v);
                }
                TAG_LAST_SEQ => {
                    let (v, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.last_sequence = Some(v);
                }
                TAG_ADD_FILE => {
                    let (level, n) = get_varint32(src)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (size, n) = get_varint64(src)?;
                    src = &src[n..];
                    let (smallest, n) = get_length_prefixed_slice(src)?;
                    let smallest = smallest.to_vec();
                    src = &src[n..];
                    let (largest, n) = get_length_prefixed_slice(src)?;
                    let largest = largest.to_vec();
                    src = &src[n..];
                    edit.added.push((level, number, size, smallest, largest));
                }
                TAG_DELETE_FILE => {
                    let (level, n) = get_varint32(src)?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src)?;
                    src = &src[n..];
                    edit.deleted.push((level, number));
                }
                other => {
                    return Err(Error::corruption(format!(
                        "unknown version edit tag {other}"
                    )))
                }
            }
        }
        Ok(edit)
    }
}

/// Apply `edit` to `base`, producing the next version. Leveled levels ≥ 1
/// are re-sorted by smallest key; level 0 (and fragmented levels) stay
/// ordered newest-first by file number.
pub fn apply_edit(base: &Version, edit: &VersionEdit, leveled: bool) -> Arc<Version> {
    let mut levels = base.levels.clone();
    for (level, number) in &edit.deleted {
        let l = *level as usize;
        levels[l].retain(|f| f.number != *number);
    }
    for (level, number, size, smallest, largest) in &edit.added {
        let l = *level as usize;
        while levels.len() <= l {
            levels.push(Vec::new());
        }
        levels[l].push(FileMetaData::new(
            *number,
            *size,
            smallest.clone(),
            largest.clone(),
        ));
    }
    for (l, level) in levels.iter_mut().enumerate() {
        if l == 0 || !leveled {
            level.sort_by_key(|t| std::cmp::Reverse(t.number)); // newest first
        } else {
            level.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
    }
    Arc::new(Version { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_common::ikey::{make_internal_key, ValueType};

    fn ik(k: &[u8], seq: u64) -> Vec<u8> {
        make_internal_key(k, seq, ValueType::Value)
    }

    #[test]
    fn edit_roundtrip() {
        let mut e = VersionEdit {
            log_number: Some(9),
            next_file_number: Some(100),
            last_sequence: Some(12345),
            ..Default::default()
        };
        e.added.push((0, 7, 1024, ik(b"a", 1), ik(b"m", 5)));
        e.added.push((2, 8, 2048, ik(b"n", 2), ik(b"z", 9)));
        e.deleted.push((1, 3));
        let dec = VersionEdit::decode(&e.encode()).unwrap();
        assert_eq!(dec, e);
    }

    #[test]
    fn empty_edit_roundtrip() {
        let e = VersionEdit::default();
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(VersionEdit::decode(&[99]).is_err());
    }

    #[test]
    fn apply_edit_add_delete() {
        let v0 = Version::empty(3);
        let mut e1 = VersionEdit::default();
        e1.added.push((0, 1, 10, ik(b"a", 1), ik(b"c", 1)));
        e1.added.push((0, 2, 10, ik(b"b", 2), ik(b"d", 2)));
        let v1 = apply_edit(&v0, &e1, true);
        assert_eq!(v1.level_files(0), 2);
        // Level 0 ordered newest-first.
        assert_eq!(v1.levels[0][0].number, 2);
        assert_eq!(v1.total_bytes(), 20);

        let mut e2 = VersionEdit::default();
        e2.deleted.push((0, 1));
        e2.added.push((1, 3, 30, ik(b"a", 1), ik(b"z", 1)));
        let v2 = apply_edit(&v1, &e2, true);
        assert_eq!(v2.level_files(0), 1);
        assert_eq!(v2.level_files(1), 1);
        assert_eq!(v2.level_bytes(1), 30);
    }

    #[test]
    fn leveled_level1_sorted_by_key() {
        let v0 = Version::empty(2);
        let mut e = VersionEdit::default();
        e.added.push((1, 5, 1, ik(b"m", 1), ik(b"p", 1)));
        e.added.push((1, 6, 1, ik(b"a", 1), ik(b"c", 1)));
        let v = apply_edit(&v0, &e, true);
        assert_eq!(v.levels[1][0].number, 6); // "a" sorts first
                                              // Fragmented keeps newest-first instead.
        let vf = apply_edit(&v0, &e, false);
        assert_eq!(vf.levels[1][0].number, 6);
    }

    #[test]
    fn file_overlap_predicates() {
        let f = FileMetaData::new(1, 10, ik(b"c", 5), ik(b"f", 2));
        assert!(f.may_contain_user_key(b"c"));
        assert!(f.may_contain_user_key(b"f"));
        assert!(!f.may_contain_user_key(b"b"));
        assert!(!f.may_contain_user_key(b"g"));
        assert!(f.overlaps_user_range(b"a", b"c"));
        assert!(f.overlaps_user_range(b"f", b"z"));
        assert!(!f.overlaps_user_range(b"a", b"b"));
    }

    #[test]
    fn overlapping_files_query() {
        let v0 = Version::empty(2);
        let mut e = VersionEdit::default();
        e.added.push((1, 1, 1, ik(b"a", 1), ik(b"c", 1)));
        e.added.push((1, 2, 1, ik(b"d", 1), ik(b"f", 1)));
        e.added.push((1, 3, 1, ik(b"g", 1), ik(b"i", 1)));
        let v = apply_edit(&v0, &e, true);
        let hits = v.overlapping_files(1, b"e", b"h");
        let nums: Vec<u64> = hits.iter().map(|f| f.number).collect();
        assert_eq!(nums, vec![2, 3]);
    }
}
