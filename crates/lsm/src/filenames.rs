//! Database file naming, shared with the UniKV engine's partitions.

use std::path::{Path, PathBuf};

/// Kinds of files in a database directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// SSTable (`<num>.sst`).
    Table(u64),
    /// Write-ahead log (`<num>.wal`).
    Wal(u64),
    /// Manifest log (`MANIFEST-<num>`).
    Manifest(u64),
    /// Pointer to the live manifest (`CURRENT`).
    Current,
}

/// `<num>.sst`
pub fn table_file(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.sst"))
}

/// `<num>.wal`
pub fn wal_file(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.wal"))
}

/// `MANIFEST-<num>`
pub fn manifest_file(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("MANIFEST-{number:06}"))
}

/// `CURRENT`
pub fn current_file(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Classify a file name within a database directory.
pub fn parse_file_name(name: &str) -> Option<FileKind> {
    if name == "CURRENT" {
        return Some(FileKind::Current);
    }
    if let Some(num) = name.strip_prefix("MANIFEST-") {
        return num.parse().ok().map(FileKind::Manifest);
    }
    if let Some(num) = name.strip_suffix(".sst") {
        return num.parse().ok().map(FileKind::Table);
    }
    if let Some(num) = name.strip_suffix(".wal") {
        return num.parse().ok().map(FileKind::Wal);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = Path::new("/db");
        assert_eq!(
            parse_file_name(table_file(dir, 7).file_name().unwrap().to_str().unwrap()),
            Some(FileKind::Table(7))
        );
        assert_eq!(
            parse_file_name(wal_file(dir, 7).file_name().unwrap().to_str().unwrap()),
            Some(FileKind::Wal(7))
        );
        assert_eq!(
            parse_file_name(manifest_file(dir, 3).file_name().unwrap().to_str().unwrap()),
            Some(FileKind::Manifest(3))
        );
        assert_eq!(parse_file_name("CURRENT"), Some(FileKind::Current));
        assert_eq!(parse_file_name("garbage.tmp"), None);
        assert_eq!(parse_file_name("x.sst"), None);
    }
}
