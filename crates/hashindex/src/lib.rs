#![warn(missing_docs)]

//! The paper's lightweight two-level hash index (§Design, "Hash indexing").
//!
//! The index accelerates point lookups into the UnsortedStore. It combines
//! cuckoo-style multi-choice placement with chained overflow:
//!
//! * **Insertion** probes candidate buckets `h_1(key)%N .. h_n(key)%N` and
//!   places the entry in the first bucket with a free primary slot; if all
//!   candidates are occupied, the entry is appended as an *overflow* entry
//!   to bucket `h_n(key)%N`.
//! * Each entry is 8 bytes: `<keyTag(2B), sstableId, next-pointer>`. The
//!   `keyTag` is the top 2 bytes of `h_{n+1}(key)` and filters probes; the
//!   on-paper "pointer" chains overflow entries — here the chain is the
//!   bucket's vector, preserving the 8-byte-per-entry accounting.
//! * **Lookup** probes buckets from `h_n` **down** to `h_1`, scanning each
//!   bucket's entries newest-first (tail to head). Because re-insertions of
//!   a key only ever move to later probe positions, this order yields the
//!   newest version first. A tag match may still be a false positive; the
//!   caller resolves it by reading the key from the named SSTable.
//!
//! Memory: with ~80% bucket utilization each resident KV costs ~8 bytes,
//! i.e. ~10 MB per 1 GB of 1 KiB KVs (<1%), matching the paper's analysis.
//! The index is checkpointable for crash recovery (paper §Crash
//! Consistency: a checkpoint every `unsorted_limit/2` flushes).

use std::collections::HashSet;
use unikv_common::coding::{get_varint32, put_fixed32, put_varint32, try_decode_fixed32};
use unikv_common::hash::{bucket_hash, key_tag};
use unikv_common::{crc32c, Error, Result};

/// Logical bytes per entry, per the paper's memory analysis.
pub const ENTRY_BYTES: usize = 8;

/// Default number of candidate hash functions (`n` in the paper).
pub const DEFAULT_NUM_HASHES: usize = 2;

/// Default target bucket utilization used by [`TwoLevelHashIndex::with_capacity`].
pub const DEFAULT_LOAD_FACTOR: f64 = 0.8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u16,
    table_id: u32,
}

/// Probe/verification counters for the memory/lookup experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// `candidates` calls.
    pub lookups: u64,
    /// Candidate entries produced (tag matches).
    pub tag_matches: u64,
    /// Entries placed in a primary slot.
    pub primary_inserts: u64,
    /// Entries appended to an overflow chain.
    pub overflow_inserts: u64,
}

#[derive(Default)]
struct AtomicStats {
    lookups: std::sync::atomic::AtomicU64,
    tag_matches: std::sync::atomic::AtomicU64,
    primary_inserts: std::sync::atomic::AtomicU64,
    overflow_inserts: std::sync::atomic::AtomicU64,
}

/// The two-level hash index mapping keys to UnsortedStore SSTable ids.
///
/// ```
/// use unikv_hashindex::TwoLevelHashIndex;
///
/// let mut index = TwoLevelHashIndex::with_capacity(1_000, 2);
/// index.insert(b"user42", 7);
/// assert!(index.candidates(b"user42").contains(&7));
/// assert_eq!(index.memory_bytes(), 8); // 8 bytes per entry, as in the paper
/// let restored = TwoLevelHashIndex::restore(&index.checkpoint()).unwrap();
/// assert!(restored.candidates(b"user42").contains(&7));
/// ```
pub struct TwoLevelHashIndex {
    buckets: Vec<Vec<Entry>>,
    num_hashes: usize,
    entries: usize,
    stats: AtomicStats,
}

impl TwoLevelHashIndex {
    /// Create an index with exactly `num_buckets` buckets and `num_hashes`
    /// candidate hash functions (1..=4).
    pub fn new(num_buckets: usize, num_hashes: usize) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        assert!(
            (1..=unikv_common::hash::FAMILY.len()).contains(&num_hashes),
            "num_hashes out of range"
        );
        TwoLevelHashIndex {
            buckets: vec![Vec::new(); num_buckets],
            num_hashes,
            entries: 0,
            stats: AtomicStats::default(),
        }
    }

    /// Size the index for `expected_keys` at the paper's ~80% utilization.
    pub fn with_capacity(expected_keys: usize, num_hashes: usize) -> Self {
        let buckets = ((expected_keys as f64 / DEFAULT_LOAD_FACTOR).ceil() as usize).max(16);
        Self::new(buckets, num_hashes)
    }

    /// Number of index entries (one per resident key version).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Logical memory consumed by entries, per the paper's 8 B accounting.
    pub fn memory_bytes(&self) -> usize {
        self.entries * ENTRY_BYTES
    }

    /// Counters.
    pub fn stats(&self) -> IndexStats {
        use std::sync::atomic::Ordering::Relaxed;
        IndexStats {
            lookups: self.stats.lookups.load(Relaxed),
            tag_matches: self.stats.tag_matches.load(Relaxed),
            primary_inserts: self.stats.primary_inserts.load(Relaxed),
            overflow_inserts: self.stats.overflow_inserts.load(Relaxed),
        }
    }

    fn bucket_of(&self, key: &[u8], i: usize) -> usize {
        (bucket_hash(key, i) % self.buckets.len() as u64) as usize
    }

    /// Record that `key` now resides in UnsortedStore table `table_id`.
    pub fn insert(&mut self, key: &[u8], table_id: u32) {
        let entry = Entry {
            tag: key_tag(key),
            table_id,
        };
        for i in 0..self.num_hashes {
            let b = self.bucket_of(key, i);
            if self.buckets[b].is_empty() {
                self.buckets[b].push(entry);
                self.entries += 1;
                self.stats
                    .primary_inserts
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        }
        // All candidates occupied: overflow onto the h_n bucket's chain.
        let b = self.bucket_of(key, self.num_hashes - 1);
        self.buckets[b].push(entry);
        self.entries += 1;
        self.stats
            .overflow_inserts
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Candidate table ids for `key`, newest first. May contain false
    /// positives (same tag, different key) and stale versions; the caller
    /// verifies by reading the named SSTables in order.
    pub fn candidates(&self, key: &[u8]) -> Vec<u32> {
        use std::sync::atomic::Ordering::Relaxed;
        let tag = key_tag(key);
        let mut out = Vec::new();
        self.stats.lookups.fetch_add(1, Relaxed);
        // Probe h_n down to h_1; duplicates arise when two hash functions
        // pick the same bucket — skip repeats.
        let mut seen_buckets = [usize::MAX; 8];
        for i in (0..self.num_hashes).rev() {
            let b = self.bucket_of(key, i);
            if seen_buckets[..self.num_hashes].contains(&b) {
                continue;
            }
            seen_buckets[i] = b;
            for e in self.buckets[b].iter().rev() {
                if e.tag == tag {
                    out.push(e.table_id);
                    self.stats.tag_matches.fetch_add(1, Relaxed);
                }
            }
        }
        out
    }

    /// Drop every entry that references one of `table_ids` (called after a
    /// merge migrates those UnsortedStore tables into the SortedStore).
    pub fn remove_tables(&mut self, table_ids: &HashSet<u32>) {
        for bucket in &mut self.buckets {
            let before = bucket.len();
            bucket.retain(|e| !table_ids.contains(&e.table_id));
            self.entries -= before - bucket.len();
        }
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.entries = 0;
    }

    /// Serialize the index for checkpointing. Format:
    /// `fixed32(num_buckets) fixed32(num_hashes)
    ///  [varint32(len) (fixed-6 entry)*]* fixed32(masked crc)`.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.entries * 6 + self.buckets.len());
        put_fixed32(&mut out, self.buckets.len() as u32);
        put_fixed32(&mut out, self.num_hashes as u32);
        for bucket in &self.buckets {
            put_varint32(&mut out, bucket.len() as u32);
            for e in bucket {
                out.extend_from_slice(&e.tag.to_le_bytes());
                out.extend_from_slice(&e.table_id.to_le_bytes());
            }
        }
        let crc = crc32c::mask(crc32c::value(&out));
        put_fixed32(&mut out, crc);
        out
    }

    /// Restore an index from a checkpoint produced by [`checkpoint`](Self::checkpoint).
    pub fn restore(data: &[u8]) -> Result<Self> {
        if data.len() < 12 {
            return Err(Error::corruption("hash index checkpoint too small"));
        }
        let body = &data[..data.len() - 4];
        let stored = try_decode_fixed32(&data[data.len() - 4..])?;
        if crc32c::unmask(stored) != crc32c::value(body) {
            return Err(Error::corruption("hash index checkpoint crc mismatch"));
        }
        let num_buckets = try_decode_fixed32(body)? as usize;
        let num_hashes = try_decode_fixed32(&body[4..])? as usize;
        if num_buckets == 0 || !(1..=unikv_common::hash::FAMILY.len()).contains(&num_hashes) {
            return Err(Error::corruption("hash index checkpoint header invalid"));
        }
        let mut idx = TwoLevelHashIndex::new(num_buckets, num_hashes);
        let mut pos = 8usize;
        for b in 0..num_buckets {
            let (len, n) = get_varint32(&body[pos..])
                .map_err(|_| Error::corruption("hash index checkpoint truncated"))?;
            pos += n;
            for _ in 0..len {
                if pos + 6 > body.len() {
                    return Err(Error::corruption("hash index checkpoint truncated entry"));
                }
                let tag = u16::from_le_bytes(body[pos..pos + 2].try_into().expect("2 bytes"));
                let table_id =
                    u32::from_le_bytes(body[pos + 2..pos + 6].try_into().expect("4 bytes"));
                idx.buckets[b].push(Entry { tag, table_id });
                idx.entries += 1;
                pos += 6;
            }
        }
        if pos != body.len() {
            return Err(Error::corruption("hash index checkpoint trailing bytes"));
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(i: u64) -> Vec<u8> {
        format!("user-key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_then_candidate_contains_table() {
        let mut idx = TwoLevelHashIndex::with_capacity(1000, 2);
        for i in 0..1000u64 {
            idx.insert(&key(i), (i % 8) as u32);
        }
        assert_eq!(idx.len(), 1000);
        for i in 0..1000u64 {
            let cands = idx.candidates(&key(i));
            assert!(
                cands.contains(&((i % 8) as u32)),
                "key {i} lost its table id"
            );
        }
    }

    #[test]
    fn newest_version_first() {
        let mut idx = TwoLevelHashIndex::with_capacity(100, 2);
        // Same key re-inserted with increasing table ids (newer flushes).
        let k = key(42);
        for table in 0..10u32 {
            idx.insert(&k, table);
        }
        let cands = idx.candidates(&k);
        // Every inserted table id must appear, newest (9) before oldest (0).
        let pos_of = |t: u32| cands.iter().position(|&c| c == t);
        for t in 0..10u32 {
            assert!(pos_of(t).is_some(), "table {t} missing");
        }
        for t in 1..10u32 {
            assert!(
                pos_of(t).unwrap() < pos_of(t - 1).unwrap(),
                "table {t} should come before {}",
                t - 1
            );
        }
    }

    #[test]
    fn remove_tables_drops_entries() {
        let mut idx = TwoLevelHashIndex::with_capacity(100, 2);
        for i in 0..100u64 {
            idx.insert(&key(i), (i % 4) as u32);
        }
        let victims: HashSet<u32> = [0u32, 1].into_iter().collect();
        idx.remove_tables(&victims);
        assert_eq!(idx.len(), 50);
        for i in 0..100u64 {
            let cands = idx.candidates(&key(i));
            for c in cands {
                assert!(!victims.contains(&c));
            }
        }
    }

    #[test]
    fn memory_accounting_matches_paper() {
        let mut idx = TwoLevelHashIndex::with_capacity(1_000, 2);
        for i in 0..1_000u64 {
            idx.insert(&key(i), 0);
        }
        assert_eq!(idx.memory_bytes(), 8_000);
        // Paper: 1M keys of 1KB -> ~10MB index, <1% of data.
        let data_bytes = 1_000 * 1024;
        assert!((idx.memory_bytes() as f64) < 0.01 * data_bytes as f64);
    }

    #[test]
    fn overflow_chains_engage_at_high_load() {
        // More keys than buckets forces overflow placement.
        let mut idx = TwoLevelHashIndex::new(64, 2);
        for i in 0..256u64 {
            idx.insert(&key(i), 1);
        }
        assert!(idx.stats().overflow_inserts > 0);
        // All keys still resolvable.
        for i in 0..256u64 {
            assert!(!idx.candidates(&key(i)).is_empty());
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut idx = TwoLevelHashIndex::with_capacity(500, 2);
        for i in 0..500u64 {
            idx.insert(&key(i), (i % 5) as u32);
        }
        let snap = idx.checkpoint();
        let restored = TwoLevelHashIndex::restore(&snap).unwrap();
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.num_buckets(), idx.num_buckets());
        for i in 0..500u64 {
            assert_eq!(restored.candidates(&key(i)), idx.candidates(&key(i)));
        }
    }

    #[test]
    fn checkpoint_corruption_detected() {
        let mut idx = TwoLevelHashIndex::with_capacity(10, 2);
        idx.insert(b"a", 1);
        let mut snap = idx.checkpoint();
        let n = snap.len();
        snap[n / 2] ^= 0xff;
        assert!(TwoLevelHashIndex::restore(&snap).is_err());
        assert!(TwoLevelHashIndex::restore(&snap[..4]).is_err());
        assert!(TwoLevelHashIndex::restore(&[]).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut idx = TwoLevelHashIndex::with_capacity(10, 2);
        idx.insert(b"a", 1);
        idx.clear();
        assert!(idx.is_empty());
        assert!(idx.candidates(b"a").is_empty());
    }

    proptest! {
        #[test]
        fn prop_no_false_negatives(
            keys in proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 1..16), 0u32..64, 1..300),
            num_hashes in 1usize..4,
        ) {
            let mut idx = TwoLevelHashIndex::with_capacity(keys.len(), num_hashes);
            for (k, t) in &keys {
                idx.insert(k, *t);
            }
            for (k, t) in &keys {
                prop_assert!(idx.candidates(k).contains(t), "lost {k:?} -> {t}");
            }
        }

        #[test]
        fn prop_checkpoint_roundtrip(
            keys in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..12), 0u32..16), 0..200),
        ) {
            let mut idx = TwoLevelHashIndex::with_capacity(keys.len().max(1), 2);
            for (k, t) in &keys {
                idx.insert(k, *t);
            }
            let restored = TwoLevelHashIndex::restore(&idx.checkpoint()).unwrap();
            prop_assert_eq!(restored.len(), idx.len());
            for (k, _) in &keys {
                prop_assert_eq!(restored.candidates(k), idx.candidates(k));
            }
        }
    }
}
