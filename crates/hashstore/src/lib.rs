#![warn(missing_docs)]

//! SkimpyStash-like hash-indexed KV store — the motivation baseline.
//!
//! The paper's Fig. 2(a) motivates UniKV by showing that a pure
//! hash-indexed store (SkimpyStash) outperforms an LSM at small scale but
//! degrades below it as data grows, because a RAM-bounded index forces
//! bucket chains onto flash: each bucket keeps only a head pointer in
//! memory, records on the data log link to the previous record of the same
//! bucket, and a lookup walks the on-disk chain. Chain length grows
//! linearly with `keys / buckets`, so read cost grows with data size while
//! the LSM's stays logarithmic. Range scans are unsupported — the second
//! limitation the paper calls out.
//!
//! Record layout: `fixed64(prev_offset+1, 0 = none) | varint32(klen) |
//! varint32(vlen) | key | value`.

use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;
use unikv_common::coding::{get_varint32, put_varint32, try_decode_fixed64};
use unikv_common::hash::hash64;
use unikv_common::metrics::{EngineMetrics, MetricsRegistry, TraceOutcome};
use unikv_common::perf::{self, PerfContext, PerfStage};
use unikv_common::{Error, Result};
use unikv_env::{Env, RandomAccessFile, WritableFile};

/// Configuration for the hash store.
#[derive(Debug, Clone)]
pub struct HashStoreOptions {
    /// Number of in-memory bucket heads. This is the RAM budget: lookups
    /// read `~chain_length = keys / num_buckets` records from the log.
    pub num_buckets: usize,
    /// Sync appends to the log on every put.
    pub sync_writes: bool,
}

impl Default for HashStoreOptions {
    fn default() -> Self {
        HashStoreOptions {
            num_buckets: 1 << 16,
            sync_writes: false,
        }
    }
}

struct Inner {
    writer: Box<dyn WritableFile>,
    heads: Vec<u64>, // offset+1 of newest record per bucket; 0 = empty
    len: u64,
}

/// Append-only log + bucket-chain hash index.
///
/// ```
/// use unikv_hashstore::{HashStore, HashStoreOptions};
/// use unikv_env::mem::MemEnv;
///
/// let store = HashStore::create(MemEnv::shared(), "/hs", HashStoreOptions::default()).unwrap();
/// store.put(b"k", b"v").unwrap();
/// assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
/// assert!(store.scan(b"", 10).is_err()); // hash indexes cannot range-scan
/// ```
pub struct HashStore {
    env: Arc<dyn Env>,
    path: PathBuf,
    opts: HashStoreOptions,
    inner: Mutex<Inner>,
    reader: Mutex<Option<Arc<dyn RandomAccessFile>>>,
    metrics: Arc<MetricsRegistry>,
    eng: EngineMetrics,
}

impl HashStore {
    /// Create a fresh store whose data log lives at `dir/data.log`.
    pub fn create(
        env: Arc<dyn Env>,
        dir: impl Into<PathBuf>,
        opts: HashStoreOptions,
    ) -> Result<Self> {
        let dir = dir.into();
        env.create_dir_all(&dir)?;
        let path = dir.join("data.log");
        let writer = env.new_writable(&path)?;
        // Always-on registry with no trace ring: the baseline records the
        // standard cross-engine families but keeps its hot path mutex-free.
        let metrics = MetricsRegistry::new(true, 0);
        Ok(HashStore {
            env,
            path,
            inner: Mutex::new(Inner {
                writer,
                heads: vec![0; opts.num_buckets],
                len: 0,
            }),
            opts,
            reader: Mutex::new(None),
            eng: EngineMetrics::new(&metrics),
            metrics,
        })
    }

    /// Reopen an existing store, recovering from a crash: the longest
    /// valid prefix of the data log is kept (a torn tail from an
    /// interrupted append is truncated away) and the bucket heads are
    /// rebuilt by replaying it. Opening a directory without a data log
    /// creates a fresh store.
    pub fn open(
        env: Arc<dyn Env>,
        dir: impl Into<PathBuf>,
        opts: HashStoreOptions,
    ) -> Result<Self> {
        let dir = dir.into();
        let path = dir.join("data.log");
        if !env.file_exists(&path) {
            return Self::create(env, dir, opts);
        }
        let data = env.read_to_vec(&path)?;
        let mut heads = vec![0u64; opts.num_buckets];
        let mut len = 0u64;
        let mut pos = 0usize;
        while let Some((key, consumed, prev)) = parse_record(&data[pos..]) {
            // A valid back-pointer can only reference an earlier record.
            if prev > pos as u64 {
                break;
            }
            let b = (hash64(key, BUCKET_SEED) % heads.len() as u64) as usize;
            heads[b] = pos as u64 + 1;
            len += 1;
            pos += consumed;
        }
        // Rewrite the valid prefix so the torn bytes are gone for good
        // (`new_writable` truncates).
        let mut writer = env.new_writable(&path)?;
        writer.append(&data[..pos])?;
        writer.sync()?;
        let metrics = MetricsRegistry::new(true, 0);
        Ok(HashStore {
            env,
            path,
            inner: Mutex::new(Inner { writer, heads, len }),
            opts,
            reader: Mutex::new(None),
            eng: EngineMetrics::new(&metrics),
            metrics,
        })
    }

    /// Insert or update `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_observed(key, value, false).map(|_| ())
    }

    /// [`Self::put`] with per-stage profiling for this one operation.
    pub fn put_profiled(&self, key: &[u8], value: &[u8]) -> Result<PerfContext> {
        self.put_observed(key, value, true)
    }

    fn put_observed(&self, key: &[u8], value: &[u8], profile: bool) -> Result<PerfContext> {
        let t0 = self.metrics.now_micros();
        if profile {
            perf::begin_at(self.metrics.clone(), t0);
        }
        if let Err(e) = self.put_impl(key, value) {
            if profile {
                perf::cancel();
            }
            return Err(e);
        }
        let t1 = self.metrics.now_micros();
        let ctx = if profile {
            perf::finish_at(t1)
        } else {
            PerfContext::default()
        };
        self.eng.writes.inc();
        self.eng.put_latency.record(t1.saturating_sub(t0));
        Ok(ctx)
    }

    fn put_impl(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let b = (hash64(key, BUCKET_SEED) % inner.heads.len() as u64) as usize;
        let offset = inner.writer.len();
        let mut rec = Vec::with_capacity(8 + 10 + key.len() + value.len());
        rec.extend_from_slice(&inner.heads[b].to_le_bytes());
        put_varint32(&mut rec, key.len() as u32);
        put_varint32(&mut rec, value.len() as u32);
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        inner.writer.append(&rec)?;
        perf::mark(PerfStage::WalAppend);
        if self.opts.sync_writes {
            inner.writer.sync()?;
            perf::mark(PerfStage::WalSync);
        }
        inner.heads[b] = offset + 1;
        inner.len += 1;
        Ok(())
    }

    fn reader(&self) -> Result<Arc<dyn RandomAccessFile>> {
        let mut guard = self.reader.lock();
        if let Some(r) = guard.as_ref() {
            return Ok(r.clone());
        }
        let r = self.env.new_random_access(&self.path)?;
        *guard = Some(r.clone());
        Ok(r)
    }

    /// Point lookup: walk the bucket's on-log chain newest-first. Returns
    /// the number of log records visited alongside the value, so the
    /// motivation experiment can report read amplification directly.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u64)> {
        self.get_observed(key, false).map(|(v, n, _)| (v, n))
    }

    /// [`Self::get`] with per-stage profiling for this one operation.
    pub fn get_profiled(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, PerfContext)> {
        self.get_observed(key, true).map(|(v, _, ctx)| (v, ctx))
    }

    #[allow(clippy::type_complexity)]
    fn get_observed(
        &self,
        key: &[u8],
        profile: bool,
    ) -> Result<(Option<Vec<u8>>, u64, PerfContext)> {
        let t0 = self.metrics.now_micros();
        if profile {
            perf::begin_at(self.metrics.clone(), t0);
        }
        let r = self.get_traced_impl(key);
        let t1 = self.metrics.now_micros();
        let ctx = if profile {
            if r.is_ok() {
                perf::finish_at(t1)
            } else {
                perf::cancel();
                PerfContext::default()
            }
        } else {
            PerfContext::default()
        };
        self.eng.get_latency.record(t1.saturating_sub(t0));
        if let Ok((value, _)) = &r {
            // Single-tier store: a hit resolves in the hash-indexed tier
            // (the analogue of UniKV's UnsortedStore-hash outcome).
            self.eng.record_read(if value.is_some() {
                TraceOutcome::Unsorted
            } else {
                TraceOutcome::Miss
            });
        }
        r.map(|(v, n)| (v, n, ctx))
    }

    fn get_traced_impl(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, u64)> {
        let head = {
            let mut inner = self.inner.lock();
            inner.writer.flush()?;
            let b = (hash64(key, BUCKET_SEED) % inner.heads.len() as u64) as usize;
            inner.heads[b]
        };
        perf::mark(PerfStage::IndexProbe);
        let reader = self.reader()?;
        let mut cursor = head;
        let mut visited = 0u64;
        while cursor != 0 {
            visited += 1;
            perf::count_hash_probes(1);
            let offset = cursor - 1;
            // Read a generous prefix: header + key; re-read if value needed.
            let header = reader.read_at(offset, 8 + 10 + key.len())?;
            let prev = try_decode_fixed64(&header)?;
            let (klen, n1) = get_varint32(&header[8..])?;
            let (vlen, n2) = get_varint32(&header[8 + n1..])?;
            let key_start = 8 + n1 + n2;
            if klen as usize == key.len() {
                let stored_key = reader.read_at(offset + key_start as u64, klen as usize)?;
                if stored_key == key {
                    let value =
                        reader.read_at(offset + key_start as u64 + klen as u64, vlen as usize)?;
                    if value.len() != vlen as usize {
                        return Err(Error::corruption("hashstore record truncated"));
                    }
                    return Ok(((!value.is_empty() || vlen == 0).then_some(value), visited));
                }
            }
            cursor = prev;
        }
        Ok((None, visited))
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_traced(key).map(|(v, _)| v)
    }

    /// Number of records appended (versions, not distinct keys).
    pub fn len(&self) -> u64 {
        self.inner.lock().len
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory index bytes (bucket heads).
    pub fn index_memory_bytes(&self) -> usize {
        self.opts.num_buckets * std::mem::size_of::<u64>()
    }

    /// The store's metrics registry (standard cross-engine families).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Human-readable metrics report.
    pub fn metrics_report(&self) -> String {
        self.metrics.render_text()
    }

    /// Range scans are not supported by hash indexing — this is the
    /// limitation the paper contrasts against the LSM design. Always errors.
    pub fn scan(&self, _from: &[u8], _limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Err(Error::invalid_argument(
            "hash-indexed store does not support range scans",
        ))
    }
}

const BUCKET_SEED: u64 = 0x7b1c_9e02_55aa_33cc;

/// Parse one record at the start of `data`. Returns the key, the total
/// encoded length, and the back-pointer — or `None` if `data` holds no
/// complete, well-formed record (a torn tail).
fn parse_record(data: &[u8]) -> Option<(&[u8], usize, u64)> {
    if data.len() < 8 {
        return None;
    }
    let prev = u64::from_le_bytes(data[..8].try_into().ok()?);
    let (klen, n1) = get_varint32(&data[8..]).ok()?;
    let (vlen, n2) = get_varint32(&data[8 + n1..]).ok()?;
    let start = 8 + n1 + n2;
    let total = start
        .checked_add(klen as usize)?
        .checked_add(vlen as usize)?;
    if data.len() < total {
        return None;
    }
    Some((&data[start..start + klen as usize], total, prev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;

    fn store(buckets: usize) -> HashStore {
        HashStore::create(
            MemEnv::shared(),
            "/hs",
            HashStoreOptions {
                num_buckets: buckets,
                sync_writes: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(64);
        for i in 0..500u32 {
            s.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(s.get(b"absent").unwrap(), None);
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn update_returns_newest() {
        let s = store(8);
        s.put(b"k", b"v1").unwrap();
        s.put(b"k", b"v2").unwrap();
        s.put(b"other", b"x").unwrap();
        s.put(b"k", b"v3").unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn chain_length_grows_with_data() {
        // The motivation claim: fixed memory -> read cost grows with scale.
        let s = store(16);
        let mut total_small = 0;
        for i in 0..160u32 {
            s.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..160u32 {
            total_small += s.get_traced(format!("key{i}").as_bytes()).unwrap().1;
        }
        for i in 160..1600u32 {
            s.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        let mut total_large = 0;
        for i in 0..160u32 {
            total_large += s.get_traced(format!("key{i}").as_bytes()).unwrap().1;
        }
        assert!(
            total_large > total_small * 3,
            "chains did not grow: {total_small} -> {total_large}"
        );
    }

    #[test]
    fn scan_unsupported() {
        let s = store(8);
        assert!(s.scan(b"a", 10).is_err());
    }

    #[test]
    fn empty_value() {
        let s = store(8);
        s.put(b"k", b"").unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(Vec::new()));
    }

    fn synced_opts(buckets: usize) -> HashStoreOptions {
        HashStoreOptions {
            num_buckets: buckets,
            sync_writes: true,
        }
    }

    #[test]
    fn open_rebuilds_heads_from_log() {
        let env = MemEnv::shared();
        {
            let s = HashStore::create(env.clone(), "/hs", synced_opts(16)).unwrap();
            for i in 0..200u32 {
                s.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            s.put(b"k7", b"newest").unwrap();
        }
        let s = HashStore::open(env, "/hs", synced_opts(16)).unwrap();
        assert_eq!(s.len(), 201);
        assert_eq!(s.get(b"k7").unwrap(), Some(b"newest".to_vec()));
        for i in 0..200u32 {
            if i == 7 {
                continue;
            }
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i} lost across reopen"
            );
        }
        assert_eq!(s.get(b"absent").unwrap(), None);
    }

    #[test]
    fn open_truncates_torn_tail_and_keeps_writing() {
        let env = MemEnv::shared();
        {
            let s = HashStore::create(env.clone(), "/hs", synced_opts(8)).unwrap();
            for i in 0..50u32 {
                s.put(format!("k{i}").as_bytes(), b"v").unwrap();
            }
        }
        // Simulate a crash mid-append: half a record dangles off the end.
        let path = std::path::Path::new("/hs/data.log");
        let mut data = env.read_to_vec(path).unwrap();
        let valid = data.len();
        data.extend_from_slice(&7u64.to_le_bytes());
        data.extend_from_slice(&[4, 200]); // klen=4, then the file ends
        let mut w = env.new_writable(path).unwrap();
        w.append(&data).unwrap();
        drop(w);

        let s = HashStore::open(env.clone(), "/hs", synced_opts(8)).unwrap();
        assert_eq!(s.len(), 50, "torn tail must not count as a record");
        assert_eq!(env.file_size(path).unwrap(), valid as u64);
        for i in 0..50u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
        // The log stays usable: chains append after the truncated point.
        s.put(b"after", b"crash").unwrap();
        assert_eq!(s.get(b"after").unwrap(), Some(b"crash".to_vec()));
        assert_eq!(s.get(b"k3").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn open_without_log_creates_fresh_store() {
        let env = MemEnv::shared();
        let s = HashStore::open(env, "/nowhere", synced_opts(8)).unwrap();
        assert!(s.is_empty());
        s.put(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(b"v".to_vec()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use unikv_env::mem::MemEnv;

    proptest! {
        /// Arbitrary put sequences: the store answers every key with its
        /// newest written value, exactly like a HashMap model.
        #[test]
        fn prop_matches_hashmap_model(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..10),
                 proptest::collection::vec(any::<u8>(), 0..40)), 1..200),
            buckets_pow in 1u32..8,
        ) {
            let store = HashStore::create(
                MemEnv::shared(),
                "/hs",
                HashStoreOptions {
                    num_buckets: 1 << buckets_pow,
                    sync_writes: false,
                },
            )
            .unwrap();
            let mut model = std::collections::HashMap::new();
            for (k, v) in &ops {
                store.put(k, v).unwrap();
                model.insert(k.clone(), v.clone());
            }
            for (k, expect) in &model {
                let got = store.get(k).unwrap();
                prop_assert_eq!(got.as_ref(), Some(expect));
            }
            prop_assert_eq!(store.get(b"\xffnever-written").unwrap(), None);
        }
    }
}
