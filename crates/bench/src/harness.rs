//! Shared experiment machinery: configuration, timing, workload
//! execution, and fixed-width table output.

use crate::engine::BenchEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use unikv_common::Result;
use unikv_workload::{format_key, make_value, Op, YcsbWorkload};

/// Shared experiment sizing, settable from the CLI.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Records to preload.
    pub num_keys: u64,
    /// Operations per measured phase.
    pub num_ops: u64,
    /// Value size in bytes (paper default: 1 KiB KV pairs).
    pub value_size: usize,
    /// Use the in-memory env instead of the filesystem.
    pub use_mem_env: bool,
    /// RNG seed for workload streams.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            num_keys: 100_000,
            num_ops: 50_000,
            value_size: 256,
            use_mem_env: false,
            seed: 0x5eed,
        }
    }
}

impl BenchConfig {
    /// A fast configuration for smoke runs (`--quick`).
    pub fn quick() -> Self {
        BenchConfig {
            num_keys: 20_000,
            num_ops: 10_000,
            ..Default::default()
        }
    }
}

/// Kilo-operations per second over `n` ops in `secs` seconds.
pub fn kops(n: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    n as f64 / secs / 1000.0
}

/// Load `n` records with `value_size`-byte values. `random_order` shuffles
/// the insertion order deterministically (the paper loads randomly unless
/// stated otherwise). Returns elapsed seconds.
pub fn load_phase(
    engine: &dyn BenchEngine,
    n: u64,
    value_size: usize,
    random_order: bool,
    seed: u64,
) -> Result<f64> {
    let mut order: Vec<u64> = (0..n).collect();
    if random_order {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
    }
    let start = Instant::now();
    for &i in &order {
        engine.put(&format_key(i), &make_value(i, 0, value_size))?;
    }
    engine.flush()?;
    Ok(start.elapsed().as_secs_f64())
}

/// Outcome of an operation phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseResult {
    /// Operations executed.
    pub ops: u64,
    /// Elapsed seconds.
    pub secs: f64,
    /// Reads that found a value.
    pub found: u64,
    /// Entries returned by scans.
    pub scanned: u64,
}

impl PhaseResult {
    /// Throughput in KOPS.
    pub fn kops(&self) -> f64 {
        kops(self.ops, self.secs)
    }
}

/// Run `n` random point reads with the given key chooser ratio (uniform
/// over the keyspace).
pub fn read_phase(engine: &dyn BenchEngine, n: u64, keyspace: u64, seed: u64) -> Result<PhaseResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut found = 0;
    for _ in 0..n {
        let k = rng.gen_range(0..keyspace.max(1));
        if engine.get(&format_key(k))?.is_some() {
            found += 1;
        }
    }
    Ok(PhaseResult {
        ops: n,
        secs: start.elapsed().as_secs_f64(),
        found,
        scanned: 0,
    })
}

/// Run `n` scans of `scan_len` entries from random start keys.
pub fn scan_phase(
    engine: &dyn BenchEngine,
    n: u64,
    scan_len: usize,
    keyspace: u64,
    seed: u64,
) -> Result<PhaseResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut scanned = 0;
    for _ in 0..n {
        let k = rng.gen_range(0..keyspace.max(1));
        scanned += engine.scan(&format_key(k), scan_len)? as u64;
    }
    Ok(PhaseResult {
        ops: n,
        secs: start.elapsed().as_secs_f64(),
        found: 0,
        scanned,
    })
}

/// Run `n` zipfian updates.
pub fn update_phase(
    engine: &dyn BenchEngine,
    n: u64,
    keyspace: u64,
    value_size: usize,
    seed: u64,
) -> Result<PhaseResult> {
    update_phase_dist(engine, n, keyspace, value_size, seed, false)
}

/// Run `n` updates, uniform or zipfian over the keyspace.
pub fn update_phase_dist(
    engine: &dyn BenchEngine,
    n: u64,
    keyspace: u64,
    value_size: usize,
    seed: u64,
    uniform: bool,
) -> Result<PhaseResult> {
    let mut w = unikv_workload::MixedWorkload::new(0.0, keyspace, uniform, seed);
    let start = Instant::now();
    for i in 0..n {
        match w.next_op() {
            Op::Update(k) | Op::Read(k) => {
                engine.put(&k, &make_value(i, 1, value_size))?;
            }
            _ => unreachable!("mixed workload emits only reads/updates"),
        }
    }
    Ok(PhaseResult {
        ops: n,
        secs: start.elapsed().as_secs_f64(),
        found: 0,
        scanned: 0,
    })
}

/// Execute `n` ops of a YCSB workload. Scans on engines without scan
/// support are skipped (counted, zero work) so the hash store can still
/// appear in tables with a footnote.
pub fn run_ycsb(
    engine: &dyn BenchEngine,
    workload: &mut YcsbWorkload,
    n: u64,
    value_size: usize,
) -> Result<PhaseResult> {
    let start = Instant::now();
    let mut found = 0;
    let mut scanned = 0;
    for i in 0..n {
        match workload.next_op() {
            Op::Read(k) => {
                if engine.get(&k)?.is_some() {
                    found += 1;
                }
            }
            Op::Update(k) | Op::Insert(k) => {
                engine.put(&k, &make_value(i, 2, value_size))?;
            }
            Op::Scan(k, len) => {
                if engine.supports_scan() {
                    scanned += engine.scan(&k, len)? as u64;
                }
            }
            Op::ReadModifyWrite(k) => {
                let _ = engine.get(&k)?;
                engine.put(&k, &make_value(i, 3, value_size))?;
            }
        }
    }
    Ok(PhaseResult {
        ops: n,
        secs: start.elapsed().as_secs_f64(),
        found,
        scanned,
    })
}

/// One output row: label + numeric columns.
pub type Row = (String, Vec<String>);

/// Fixed-width experiment table writer.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        for (_, cells) in &self.rows {
            for (i, c) in cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        print!("{:label_w$}", "");
        for (h, w) in self.headers.iter().zip(&widths) {
            print!("  {h:>w$}");
        }
        println!();
        for (label, cells) in &self.rows {
            print!("{label:label_w$}");
            for (c, w) in cells.iter().zip(&widths) {
                print!("  {c:>w$}");
            }
            println!();
        }
    }
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format megabytes with 1 decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{make_engine, EngineSpec};
    use unikv_env::mem::MemEnv;
    use unikv_workload::YcsbKind;

    #[test]
    fn phases_run_end_to_end() {
        let env = MemEnv::shared();
        let e = make_engine(EngineSpec::UniKv, env, std::path::Path::new("/db")).unwrap();
        load_phase(e.as_ref(), 2000, 64, true, 1).unwrap();
        let r = read_phase(e.as_ref(), 500, 2000, 2).unwrap();
        assert_eq!(r.found, 500, "all preloaded keys must be found");
        let s = scan_phase(e.as_ref(), 20, 10, 2000, 3).unwrap();
        assert_eq!(s.scanned, 200);
        let u = update_phase(e.as_ref(), 500, 2000, 64, 4).unwrap();
        assert_eq!(u.ops, 500);
        let mut w = YcsbWorkload::new(YcsbKind::A, 2000, 5);
        let y = run_ycsb(e.as_ref(), &mut w, 500, 64).unwrap();
        assert_eq!(y.ops, 500);
        assert!(y.kops() > 0.0);
    }

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new("demo", &["col1", "col2"]);
        t.row("row-with-long-label", vec![f1(1.0), f2(2.0)]);
        t.row("r", vec![mb(1 << 21), "x".into()]);
        t.print();
    }
}
