//! Uniform engine adapter: every experiment drives engines through
//! [`BenchEngine`], so an experiment row differs only in the engine
//! behind it.

use std::path::Path;
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_common::Result;
use unikv_env::Env;
use unikv_hashstore::{HashStore, HashStoreOptions};
use unikv_lsm::{Baseline, LsmDb, LsmOptions};

/// Engine selector for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineSpec {
    /// The paper's system.
    UniKv,
    /// UniKV with the hash index disabled (ablation E7).
    UniKvNoHashIndex,
    /// UniKV without partial KV separation (ablation E8).
    UniKvNoSeparation,
    /// UniKV without dynamic range partitioning (ablation E9).
    UniKvNoPartitioning,
    /// UniKV without scan optimizations (ablation E10).
    UniKvNoScanOpt,
    /// One of the four LSM baselines.
    Lsm(Baseline),
    /// SkimpyStash-like hash store (motivation baseline).
    HashStore,
}

impl EngineSpec {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            EngineSpec::UniKv => "UniKV",
            EngineSpec::UniKvNoHashIndex => "UniKV-noHashIdx",
            EngineSpec::UniKvNoSeparation => "UniKV-noKVsep",
            EngineSpec::UniKvNoPartitioning => "UniKV-noPart",
            EngineSpec::UniKvNoScanOpt => "UniKV-noScanOpt",
            EngineSpec::Lsm(b) => b.name(),
            EngineSpec::HashStore => "HashStore",
        }
    }

    /// UniKV plus the four baselines — the paper's standard comparison set.
    pub fn comparison_set() -> Vec<EngineSpec> {
        let mut v = vec![EngineSpec::UniKv];
        v.extend(Baseline::all().into_iter().map(EngineSpec::Lsm));
        v
    }

    /// Parse a CLI engine name.
    pub fn parse(s: &str) -> Option<EngineSpec> {
        Some(match s.to_ascii_lowercase().as_str() {
            "unikv" => EngineSpec::UniKv,
            "unikv-nohash" => EngineSpec::UniKvNoHashIndex,
            "unikv-nosep" => EngineSpec::UniKvNoSeparation,
            "unikv-nopart" => EngineSpec::UniKvNoPartitioning,
            "unikv-noscan" => EngineSpec::UniKvNoScanOpt,
            "leveldb" => EngineSpec::Lsm(Baseline::LevelDb),
            "rocksdb" => EngineSpec::Lsm(Baseline::RocksDb),
            "hyperleveldb" => EngineSpec::Lsm(Baseline::HyperLevelDb),
            "pebblesdb" => EngineSpec::Lsm(Baseline::PebblesDb),
            "hashstore" => EngineSpec::HashStore,
            _ => return None,
        })
    }
}

/// Uniform KV interface over all engines under test.
pub trait BenchEngine: Send + Sync {
    /// Engine display name.
    fn name(&self) -> &'static str;
    /// Write.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Point read.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Range scan; returns entries found (0 when unsupported → caller
    /// should use [`supports_scan`](Self::supports_scan)).
    fn scan(&self, from: &[u8], limit: usize) -> Result<usize>;
    /// Delete.
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Force buffered data to disk.
    fn flush(&self) -> Result<()>;
    /// Force a full merge/compaction (no-op where unsupported).
    fn compact(&self) -> Result<()> {
        Ok(())
    }
    /// True if range scans are supported (false for the hash store).
    fn supports_scan(&self) -> bool {
        true
    }
    /// Engine-reported write amplification, if tracked.
    fn write_amplification(&self) -> Option<f64> {
        None
    }
    /// Free-form stats lines for verbose output.
    fn stats_lines(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Benchmark-scale UniKV options (paper parameters scaled ~64×: server
/// 64 MB memtables → 1 MB, so flush/merge/GC/split frequency per op holds).
pub fn bench_unikv_options() -> UniKvOptions {
    UniKvOptions {
        write_buffer_size: 256 << 10,
        table_size: 256 << 10,
        unsorted_limit_bytes: 2 << 20,
        // One size-based merge between full merges at most: the paper runs
        // this in a background thread; inline, a lower threshold would
        // charge quadratic rewriting to the writer.
        scan_merge_limit: 6,
        partition_size_limit: 8 << 20,
        max_log_size: 1 << 20,
        gc_min_bytes: 2 << 20,
        ..Default::default()
    }
}

/// Benchmark-scale options for an LSM baseline, matched to
/// [`bench_unikv_options`] (same write buffer and table size).
pub fn bench_lsm_options(baseline: Baseline) -> LsmOptions {
    let mut o = LsmOptions::baseline(baseline);
    o.write_buffer_size = 256 << 10;
    o.table_size = 256 << 10;
    o.base_level_bytes = 1 << 20;
    o.block_cache_bytes = 8 << 20;
    o
}

struct NamedUniKv {
    db: UniKv,
    name: &'static str,
}

impl BenchEngine for NamedUniKv {
    fn name(&self) -> &'static str {
        self.name
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put(key, value)
    }
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }
    fn scan(&self, from: &[u8], limit: usize) -> Result<usize> {
        Ok(self.db.scan(from, limit)?.len())
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        self.db.delete(key)
    }
    fn flush(&self) -> Result<()> {
        self.db.flush()
    }
    fn compact(&self) -> Result<()> {
        self.db.compact_all()
    }
    fn write_amplification(&self) -> Option<f64> {
        Some(self.db.stats().write_amplification())
    }
    fn stats_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .db
            .stats()
            .snapshot()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        lines.push(format!("partitions={}", self.db.partition_count()));
        lines.push(format!("index_memory_bytes={}", self.db.index_memory_bytes()));
        lines
    }
}

struct NamedLsm {
    db: LsmDb,
    name: &'static str,
}

impl BenchEngine for NamedLsm {
    fn name(&self) -> &'static str {
        self.name
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put(key, value)
    }
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }
    fn scan(&self, from: &[u8], limit: usize) -> Result<usize> {
        Ok(self.db.scan(from, limit)?.len())
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        self.db.delete(key)
    }
    fn flush(&self) -> Result<()> {
        self.db.flush()
    }
    fn compact(&self) -> Result<()> {
        self.db.compact_all()
    }
    fn write_amplification(&self) -> Option<f64> {
        Some(self.db.stats().write_amplification())
    }
    fn stats_lines(&self) -> Vec<String> {
        self.db
            .stats()
            .snapshot()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect()
    }
}

struct NamedHashStore(HashStore);

impl BenchEngine for NamedHashStore {
    fn name(&self) -> &'static str {
        "HashStore"
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.0.put(key, value)
    }
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.0.get(key)
    }
    fn scan(&self, _from: &[u8], _limit: usize) -> Result<usize> {
        Ok(0)
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        // Hash stores model deletes as empty-value writes.
        self.0.put(key, b"")
    }
    fn flush(&self) -> Result<()> {
        Ok(())
    }
    fn supports_scan(&self) -> bool {
        false
    }
}

/// Instantiate an engine in `dir`.
pub fn make_engine(
    spec: EngineSpec,
    env: Arc<dyn Env>,
    dir: &Path,
) -> Result<Box<dyn BenchEngine>> {
    Ok(match spec {
        EngineSpec::UniKv
        | EngineSpec::UniKvNoHashIndex
        | EngineSpec::UniKvNoSeparation
        | EngineSpec::UniKvNoPartitioning
        | EngineSpec::UniKvNoScanOpt => {
            let mut opts = bench_unikv_options();
            match spec {
                EngineSpec::UniKvNoHashIndex => opts.enable_hash_index = false,
                EngineSpec::UniKvNoSeparation => opts.enable_kv_separation = false,
                EngineSpec::UniKvNoPartitioning => opts.enable_partitioning = false,
                EngineSpec::UniKvNoScanOpt => opts.enable_scan_optimization = false,
                _ => {}
            }
            Box::new(NamedUniKv {
                db: UniKv::open(env, dir, opts)?,
                name: spec.name(),
            })
        }
        EngineSpec::Lsm(b) => Box::new(NamedLsm {
            db: LsmDb::open(env, dir, bench_lsm_options(b))?,
            name: b.name(),
        }),
        EngineSpec::HashStore => Box::new(NamedHashStore(HashStore::create(
            env,
            dir,
            HashStoreOptions {
                num_buckets: 1 << 12, // RAM-bounded: chains grow with data
                sync_writes: false,
            },
        )?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;

    #[test]
    fn parse_specs() {
        assert_eq!(EngineSpec::parse("unikv"), Some(EngineSpec::UniKv));
        assert_eq!(
            EngineSpec::parse("PebblesDB"),
            Some(EngineSpec::Lsm(Baseline::PebblesDb))
        );
        assert_eq!(EngineSpec::parse("nope"), None);
        assert_eq!(EngineSpec::comparison_set().len(), 5);
    }

    #[test]
    fn every_engine_roundtrips() {
        let specs = [
            EngineSpec::UniKv,
            EngineSpec::UniKvNoHashIndex,
            EngineSpec::UniKvNoSeparation,
            EngineSpec::UniKvNoPartitioning,
            EngineSpec::UniKvNoScanOpt,
            EngineSpec::Lsm(Baseline::LevelDb),
            EngineSpec::Lsm(Baseline::RocksDb),
            EngineSpec::Lsm(Baseline::HyperLevelDb),
            EngineSpec::Lsm(Baseline::PebblesDb),
            EngineSpec::HashStore,
        ];
        for (i, spec) in specs.iter().enumerate() {
            let env = MemEnv::shared();
            let e = make_engine(*spec, env, Path::new(&format!("/db{i}"))).unwrap();
            for k in 0..200u32 {
                e.put(format!("key{k:05}").as_bytes(), format!("val{k}").as_bytes())
                    .unwrap();
            }
            for k in (0..200u32).step_by(17) {
                assert_eq!(
                    e.get(format!("key{k:05}").as_bytes()).unwrap(),
                    Some(format!("val{k}").into_bytes()),
                    "{} key {k}",
                    e.name()
                );
            }
            if e.supports_scan() {
                assert_eq!(e.scan(b"key00000", 10).unwrap(), 10, "{}", e.name());
            }
            e.delete(b"key00000").unwrap();
            e.flush().unwrap();
        }
    }
}
