//! Experiment runner CLI.
//!
//! ```text
//! unikv-bench <experiment|all> [--n=KEYS] [--ops=OPS] [--value-size=B]
//!             [--quick] [--mem] [--seed=S]
//! ```
//!
//! Run `unikv-bench list` for the experiment index (E1–E14; DESIGN.md §3).

use unikv_bench::experiments::ALL;
use unikv_bench::BenchConfig;

fn usage() -> ! {
    eprintln!("usage: unikv-bench <experiment|all|list> [options]");
    eprintln!("options:");
    eprintln!("  --n=KEYS         records to preload (default 100000)");
    eprintln!("  --ops=OPS        ops per measured phase (default 50000)");
    eprintln!("  --value-size=B   value size in bytes (default 256)");
    eprintln!("  --quick          small sizes for a fast smoke run");
    eprintln!("  --mem            use the in-memory env instead of the filesystem");
    eprintln!("  --seed=S         workload RNG seed");
    eprintln!("experiments:");
    for (name, _) in ALL {
        eprintln!("  {name}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = BenchConfig::default();
    let mut target: Option<String> = None;
    for arg in &args {
        if let Some(v) = arg.strip_prefix("--n=") {
            cfg.num_keys = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = arg.strip_prefix("--ops=") {
            cfg.num_ops = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = arg.strip_prefix("--value-size=") {
            cfg.value_size = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            cfg.seed = v.parse().unwrap_or_else(|_| usage());
        } else if arg == "--quick" {
            let quick = BenchConfig::quick();
            cfg.num_keys = quick.num_keys;
            cfg.num_ops = quick.num_ops;
        } else if arg == "--mem" {
            cfg.use_mem_env = true;
        } else if arg.starts_with("--") {
            eprintln!("unknown option {arg}");
            usage();
        } else if target.is_none() {
            target = Some(arg.clone());
        } else {
            usage();
        }
    }
    let Some(target) = target else { usage() };

    if target == "list" {
        for (name, _) in ALL {
            println!("{name}");
        }
        return;
    }

    println!(
        "# unikv-bench: keys={} ops={} value={}B env={} seed={}",
        cfg.num_keys,
        cfg.num_ops,
        cfg.value_size,
        if cfg.use_mem_env { "mem" } else { "fs" },
        cfg.seed
    );

    let run = |name: &str, f: fn(&BenchConfig) -> unikv_common::Result<()>| {
        let start = std::time::Instant::now();
        match f(&cfg) {
            Ok(()) => println!("# {name} done in {:.1}s", start.elapsed().as_secs_f64()),
            Err(e) => {
                eprintln!("# {name} FAILED: {e}");
                std::process::exit(1);
            }
        }
    };

    if target == "all" {
        for (name, f) in ALL {
            run(name, *f);
        }
        return;
    }
    match ALL.iter().find(|(name, _)| *name == target) {
        Some((name, f)) => run(name, *f),
        None => {
            eprintln!("unknown experiment {target}");
            usage();
        }
    }
}
