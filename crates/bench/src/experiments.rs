//! The experiment suite: one function per paper table/figure.
//! See DESIGN.md §3 for the experiment index (E1–E14) and EXPERIMENTS.md
//! for paper-vs-measured results.

use crate::engine::{bench_unikv_options, make_engine, EngineSpec};
use crate::harness::{
    f1, f2, kops, load_phase, mb, read_phase, run_ycsb, scan_phase, update_phase, BenchConfig,
    Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use unikv::UniKv;
use unikv_common::Result;
use unikv_env::metrics::CountingEnv;
use unikv_env::{fs::FsEnv, mem::MemEnv, Env};
use unikv_hashstore::{HashStore, HashStoreOptions};
use unikv_lsm::{Baseline, LsmDb};
use unikv_workload::{format_key, make_value, YcsbKind, YcsbWorkload};

/// Workspace for one engine instance: env + unique directory, removed on
/// drop when filesystem-backed.
pub struct Workspace {
    /// The environment to open the engine with.
    pub env: Arc<dyn Env>,
    /// Engine directory.
    pub dir: PathBuf,
    fs_root: Option<PathBuf>,
}

impl Workspace {
    /// Create a fresh workspace according to `cfg`.
    pub fn new(cfg: &BenchConfig, tag: &str) -> Workspace {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        if cfg.use_mem_env {
            Workspace {
                env: MemEnv::shared(),
                dir: PathBuf::from(format!("/bench-{tag}-{id}")),
                fs_root: None,
            }
        } else {
            let root = std::env::temp_dir().join(format!(
                "unikv-bench-{}-{tag}-{id}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            Workspace {
                env: Arc::new(FsEnv::new()),
                dir: root.clone(),
                fs_root: Some(root),
            }
        }
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        if let Some(root) = &self.fs_root {
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

/// E1 / paper Fig. 2a (motivation): a RAM-bounded hash-indexed store beats
/// the LSM at small scale and falls behind as data grows (and cannot scan).
pub fn motivation_hash_vs_lsm(cfg: &BenchConfig) -> Result<()> {
    let sizes: Vec<u64> = [1u64, 2, 5, 10]
        .iter()
        .map(|m| (cfg.num_keys / 10 * m).max(1000))
        .collect();
    let mut t = Table::new(
        "E1  motivation: hash store vs LSM as data grows (random-read KOPS)",
        &["keys", "HashStore", "LevelDB", "hash avg probes"],
    );
    for &n in &sizes {
        // Hash store with a fixed, small bucket budget.
        let ws = Workspace::new(cfg, "e1h");
        let hs = HashStore::create(
            ws.env.clone(),
            ws.dir.clone(),
            HashStoreOptions {
                num_buckets: 1 << 10,
                sync_writes: false,
            },
        )?;
        for i in 0..n {
            hs.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let reads = cfg.num_ops.min(20_000);
        let start = Instant::now();
        let mut probes = 0u64;
        for _ in 0..reads {
            let k = rng.gen_range(0..n);
            let (v, visited) = hs.get_traced(&format_key(k))?;
            assert!(v.is_some());
            probes += visited;
        }
        let hash_kops = kops(reads, start.elapsed().as_secs_f64());
        let avg_probes = probes as f64 / reads as f64;

        let ws = Workspace::new(cfg, "e1l");
        let ldb = make_engine(EngineSpec::Lsm(Baseline::LevelDb), ws.env.clone(), &ws.dir)?;
        load_phase(ldb.as_ref(), n, cfg.value_size, true, cfg.seed)?;
        let r = read_phase(ldb.as_ref(), reads, n, cfg.seed)?;
        t.row(
            format!("{n}"),
            vec![f1(hash_kops), f1(r.kops()), f2(avg_probes)],
        );
    }
    t.print();
    println!("note: the hash store cannot serve range scans at any size.");
    Ok(())
}

/// E2 / paper §II (motivation): under a skewed read workload the deepest
/// LSM level holds most tables but receives few accesses.
pub fn motivation_skew(cfg: &BenchConfig) -> Result<()> {
    let ws = Workspace::new(cfg, "e2");
    // A deeper tree than the throughput benches: the hot working set must
    // fit strictly above the last level, as it does at the paper's scale.
    let mut opts = crate::engine::bench_lsm_options(Baseline::LevelDb);
    opts.write_buffer_size = 128 << 10;
    opts.table_size = 128 << 10;
    opts.base_level_bytes = 512 << 10;
    let db = LsmDb::open(ws.env.clone(), &ws.dir, opts)?;
    let n = cfg.num_keys;
    let mut order: Vec<u64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &i in &order {
        db.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
    }
    db.flush()?;
    db.compact_all()?;
    // Zipfian mixed read/update stream: real KV workloads revisit what
    // they recently wrote, which keeps hot keys in the upper levels — the
    // locality UniKV exploits.
    let mut w = unikv_workload::ScrambledZipfian::new(n);
    use unikv_workload::KeyChooser;
    // Warm-up: updates move the hot working set into the upper levels.
    for _ in 0..cfg.num_ops * 2 {
        let k = w.next_key(&mut rng, n);
        db.put(&format_key(k), &make_value(k, 1, cfg.value_size))?;
    }
    // Measured phase: reads only, so tables are stable and their access
    // counters accumulate without compaction churn resetting them.
    for _ in 0..cfg.num_ops * 2 {
        let k = w.next_key(&mut rng, n);
        let _ = db.get(&format_key(k))?;
    }
    let summary = db.version_summary();
    let total_tables: u64 = summary.iter().map(|(_, fs)| fs.len() as u64).sum();
    let total_accesses: u64 = summary
        .iter()
        .flat_map(|(_, fs)| fs.iter().map(|(_, _, a)| *a))
        .sum();
    let mut t = Table::new(
        "E2  motivation: per-level SSTable access skew (zipfian reads)",
        &["tables", "%tables", "accesses", "%accesses", "accesses/table"],
    );
    for (level, files) in &summary {
        if files.is_empty() {
            continue;
        }
        let tables = files.len() as u64;
        let accesses: u64 = files.iter().map(|(_, _, a)| *a).sum();
        t.row(
            format!("L{level}"),
            vec![
                tables.to_string(),
                f1(100.0 * tables as f64 / total_tables.max(1) as f64),
                accesses.to_string(),
                f1(100.0 * accesses as f64 / total_accesses.max(1) as f64),
                f1(accesses as f64 / tables.max(1) as f64),
            ],
        );
    }
    t.print();
    println!("paper claim: recently flushed (upper-level) tables serve far more");
    println!("requests per table; the last level holds most tables but a small");
    println!("per-table share — the locality UniKV's differentiated indexing uses.");
    Ok(())
}

/// E3 / paper Exp#1 (Fig. 6): microbenchmarks — load, random read, scan,
/// update — UniKV vs the four baselines.
pub fn micro(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E3  microbenchmarks (KOPS)",
        &["load", "read", "scan", "update"],
    );
    for spec in EngineSpec::comparison_set() {
        let ws = Workspace::new(cfg, "e3");
        let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
        let load_secs = load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
        let read = read_phase(e.as_ref(), cfg.num_ops, cfg.num_keys, cfg.seed + 1)?;
        let scans = (cfg.num_ops / 50).max(100);
        let scan = scan_phase(e.as_ref(), scans, 50, cfg.num_keys, cfg.seed + 2)?;
        let update = update_phase(
            e.as_ref(),
            cfg.num_ops,
            cfg.num_keys,
            cfg.value_size,
            cfg.seed + 3,
        )?;
        t.row(
            e.name(),
            vec![
                f1(kops(cfg.num_keys, load_secs)),
                f1(read.kops()),
                f1(scan.kops()),
                f1(update.kops()),
            ],
        );
    }
    t.print();
    Ok(())
}

/// E4 / paper Exp#2 (Fig. 7): mixed read-write workloads, zipfian keys,
/// read ratio swept 0–100%.
pub fn mixed(cfg: &BenchConfig) -> Result<()> {
    let ratios = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut t = Table::new(
        "E4  mixed read-write throughput (KOPS) by read ratio",
        &["0%", "25%", "50%", "75%", "100%"],
    );
    for spec in EngineSpec::comparison_set() {
        let mut cells = Vec::new();
        for &ratio in &ratios {
            let ws = Workspace::new(cfg, "e4");
            let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
            load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
            let mut w =
                unikv_workload::MixedWorkload::new(ratio, cfg.num_keys, false, cfg.seed + 9);
            let start = Instant::now();
            for i in 0..cfg.num_ops {
                match w.next_op() {
                    unikv_workload::Op::Read(k) => {
                        let _ = e.get(&k)?;
                    }
                    unikv_workload::Op::Update(k) => {
                        e.put(&k, &make_value(i, 4, cfg.value_size))?;
                    }
                    _ => unreachable!(),
                }
            }
            cells.push(f1(kops(cfg.num_ops, start.elapsed().as_secs_f64())));
        }
        t.row(spec.name(), cells);
    }
    t.print();
    Ok(())
}

/// E5 / paper Exp#3 (Fig. 8): scalability with dataset size.
pub fn scalability(cfg: &BenchConfig) -> Result<()> {
    let sizes: Vec<u64> = [1u64, 2, 4, 8]
        .iter()
        .map(|m| cfg.num_keys / 4 * m)
        .collect();
    let mut load_t = Table::new(
        "E5a scalability: load throughput (KOPS) by dataset size",
        &sizes
            .iter()
            .map(|n| format!("{n}"))
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    let mut read_t = Table::new(
        "E5b scalability: random-read throughput (KOPS) by dataset size",
        &sizes
            .iter()
            .map(|n| format!("{n}"))
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    for spec in EngineSpec::comparison_set() {
        let mut load_cells = Vec::new();
        let mut read_cells = Vec::new();
        for &n in &sizes {
            let ws = Workspace::new(cfg, "e5");
            let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
            let secs = load_phase(e.as_ref(), n, cfg.value_size, true, cfg.seed)?;
            load_cells.push(f1(kops(n, secs)));
            let reads = cfg.num_ops.min(n);
            let r = read_phase(e.as_ref(), reads, n, cfg.seed + 1)?;
            read_cells.push(f1(r.kops()));
        }
        load_t.row(spec.name(), load_cells);
        read_t.row(spec.name(), read_cells);
    }
    load_t.print();
    read_t.print();
    Ok(())
}

/// E6 / paper Exp#4 (Fig. 9): YCSB core workloads A–F.
pub fn ycsb(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E6  YCSB A-F throughput (KOPS)",
        &["A", "B", "C", "D", "E", "F"],
    );
    for spec in EngineSpec::comparison_set() {
        let mut cells = Vec::new();
        for kind in YcsbKind::all() {
            let ws = Workspace::new(cfg, "e6");
            let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
            load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
            let ops = if kind == YcsbKind::E {
                cfg.num_ops / 10 // scans are ~50x heavier per op
            } else {
                cfg.num_ops
            }
            .max(100);
            let mut w = YcsbWorkload::new(kind, cfg.num_keys, cfg.seed + 20);
            let r = run_ycsb(e.as_ref(), &mut w, ops, cfg.value_size)?;
            cells.push(f1(r.kops()));
        }
        t.row(spec.name(), cells);
    }
    t.print();
    for kind in YcsbKind::all() {
        println!("  {}: {}", kind.name(), kind.description());
    }
    Ok(())
}

/// E7 / paper Exp#5 ablation: the two-level hash index.
pub fn ablation_hash_index(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E7  ablation: hash indexing (zipfian-updated, uniform-read)",
        &["read KOPS", "tables checked/get", "index MB"],
    );
    for spec in [EngineSpec::UniKv, EngineSpec::UniKvNoHashIndex] {
        let ws = Workspace::new(cfg, "e7");
        let mut opts = bench_unikv_options();
        if spec == EngineSpec::UniKvNoHashIndex {
            opts.enable_hash_index = false;
        }
        // Big unsorted budget so reads hit the unsorted tier — the tier
        // the index accelerates.
        opts.unsorted_limit_bytes = 64 << 20;
        opts.enable_scan_optimization = false; // keep tables overlapping
        let db = UniKv::open(ws.env.clone(), &ws.dir, opts)?;
        // Random insertion order: every UnsortedStore table spans nearly
        // the whole key range, the regime hash indexing targets.
        let mut order: Vec<u64> = (0..cfg.num_keys).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            db.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
        }
        let start = Instant::now();
        for _ in 0..cfg.num_ops {
            let k = rng.gen_range(0..cfg.num_keys);
            assert!(db.get(&format_key(k))?.is_some());
        }
        let secs = start.elapsed().as_secs_f64();
        let checked = db.stats().tables_checked.load(Ordering::Relaxed);
        t.row(
            spec.name(),
            vec![
                f1(kops(cfg.num_ops, secs)),
                f2(checked as f64 / cfg.num_ops as f64),
                f2(db.index_memory_bytes() as f64 / (1 << 20) as f64),
            ],
        );
    }
    t.print();
    Ok(())
}

/// E8 / paper Exp#5 ablation: partial KV separation (merge cost).
///
/// Phase 1 loads and merges everything into the SortedStore; phase 2
/// writes a *new* batch of keys and merges again. With separation, the
/// second merge moves keys+pointers only — phase-1 values are never
/// rewritten. Without it, every merge rewrites all values it touches.
pub fn ablation_kv_separation(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E8  ablation: partial KV separation",
        &["load KOPS", "write amp", "2nd-merge MB", "total MB written"],
    );
    for spec in [EngineSpec::UniKv, EngineSpec::UniKvNoSeparation] {
        let ws = Workspace::new(cfg, "e8");
        let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
        let merge_mb = |e: &dyn crate::engine::BenchEngine| {
            e.stats_lines()
                .iter()
                .find_map(|l| l.strip_prefix("merge_bytes_written=").map(str::to_string))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        let secs = load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
        e.compact()?; // phase 1: everything merged into the SortedStore
        let after_phase1 = merge_mb(e.as_ref());
        // Phase 2: fresh keys beyond the loaded range, then merge again.
        for i in cfg.num_keys..cfg.num_keys + cfg.num_keys / 2 {
            e.put(&format_key(i), &make_value(i, 5, cfg.value_size))?;
        }
        e.compact()?;
        let second_merge = merge_mb(e.as_ref()) - after_phase1;
        let total_written = merge_mb(e.as_ref());
        t.row(
            spec.name(),
            vec![
                f1(kops(cfg.num_keys, secs)),
                f2(e.write_amplification().unwrap_or(0.0)),
                mb(second_merge),
                mb(total_written),
            ],
        );
    }
    t.print();
    Ok(())
}

/// E9 / paper Exp#5 ablation: dynamic range partitioning (scalability).
///
/// Without partitioning the single SortedStore run grows unboundedly, so
/// every UnsortedStore merge rewrites the whole store — merge cost (and
/// write amplification) grows linearly with data. Partitioning bounds the
/// merge input to one partition. The dataset is swept well past
/// `partition_size_limit` so several splits amortize.
pub fn ablation_partitioning(cfg: &BenchConfig) -> Result<()> {
    let sizes: Vec<u64> = [1u64, 2, 4].iter().map(|m| cfg.num_keys * m).collect();
    let headers: Vec<String> = sizes
        .iter()
        .flat_map(|n| [format!("{n} kops"), format!("{n} WA")])
        .collect();
    let mut t = Table::new(
        "E9  ablation: dynamic range partitioning (load KOPS / write amp by size)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for spec in [EngineSpec::UniKv, EngineSpec::UniKvNoPartitioning] {
        let mut cells = Vec::new();
        for &n in &sizes {
            let ws = Workspace::new(cfg, "e9");
            let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
            let load_secs = load_phase(e.as_ref(), n, cfg.value_size, true, cfg.seed)?;
            // Uniform overwrite churn creates log garbage past the GC
            // threshold, forcing GC — whose cost is what unbounded
            // partitions actually pay (paper §GC: "GC overhead would
            // become large as levels grow"): a monolithic partition's GC
            // rewrites every live value, a split one only its share.
            let upd = crate::harness::update_phase_dist(
                e.as_ref(),
                n * 3 / 2,
                n,
                cfg.value_size,
                cfg.seed + 3,
                true,
            )?;
            e.compact()?;
            cells.push(f1(kops(n + n * 3 / 2, load_secs + upd.secs)));
            cells.push(f2(e.write_amplification().unwrap_or(0.0)));
        }
        t.row(spec.name(), cells);
    }
    t.print();
    Ok(())
}

/// E10 / paper Exp#5 ablation: scan optimizations.
pub fn ablation_scan(cfg: &BenchConfig) -> Result<()> {
    let lens = [10usize, 100, 1000];
    let mut t = Table::new(
        "E10 ablation: scan optimization (scan KOPS by scan length)",
        &["len=10", "len=100", "len=1000"],
    );
    for spec in [EngineSpec::UniKv, EngineSpec::UniKvNoScanOpt] {
        let ws = Workspace::new(cfg, "e10");
        let e = make_engine(spec, ws.env.clone(), &ws.dir)?;
        load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
        let mut cells = Vec::new();
        for &len in &lens {
            let scans = (cfg.num_ops / len as u64).clamp(20, 2000);
            let r = scan_phase(e.as_ref(), scans, len, cfg.num_keys, cfg.seed + 6)?;
            cells.push(f1(r.kops()));
        }
        t.row(spec.name(), cells);
    }
    t.print();
    Ok(())
}

/// E11 / paper §I/O Cost Analysis: measured read/write amplification.
pub fn amplification(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E11 I/O amplification during load + zipfian overwrite",
        &["engine WA", "device WA", "device RA(read phase)"],
    );
    for spec in EngineSpec::comparison_set() {
        let inner: Arc<dyn Env> = if cfg.use_mem_env {
            MemEnv::shared()
        } else {
            Arc::new(FsEnv::new())
        };
        let counting = CountingEnv::new(inner);
        let counters = counting.counters();
        let dir = std::env::temp_dir().join(format!(
            "unikv-bench-{}-e11-{}",
            std::process::id(),
            spec.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let e = make_engine(spec, counting.clone(), &dir)?;
        let user_bytes =
            cfg.num_keys * (16 + cfg.value_size as u64) + cfg.num_ops * (16 + cfg.value_size as u64);
        load_phase(e.as_ref(), cfg.num_keys, cfg.value_size, true, cfg.seed)?;
        update_phase(
            e.as_ref(),
            cfg.num_ops,
            cfg.num_keys,
            cfg.value_size,
            cfg.seed + 7,
        )?;
        e.flush()?;
        // Atomic drain: background maintenance threads may still be
        // accounting I/O here, and read-then-reset would drop their bytes.
        let (_, written_so_far) = counters.snapshot_and_reset();
        let device_wa = written_so_far as f64 / user_bytes as f64;
        let reads = cfg.num_ops.min(10_000);
        read_phase(e.as_ref(), reads, cfg.num_keys, cfg.seed + 8)?;
        let device_ra =
            counters.bytes_read() as f64 / (reads * (16 + cfg.value_size as u64)) as f64;
        t.row(
            spec.name(),
            vec![
                f2(e.write_amplification().unwrap_or(f64::NAN)),
                f2(device_wa),
                f2(device_ra),
            ],
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    t.print();
    Ok(())
}

/// E12 / paper §Memory overhead: hash-index memory vs data size
/// (claim: <1% of the UnsortedStore-resident data, ~8 B/key).
pub fn memory_overhead(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E12 hash-index memory overhead",
        &["index KB", "data MB", "index/data %", "entries"],
    );
    for mult in [1u64, 2, 4] {
        let n = cfg.num_keys / 2 * mult;
        let ws = Workspace::new(cfg, "e12");
        let db = UniKv::open(ws.env.clone(), &ws.dir, bench_unikv_options())?;
        for i in 0..n {
            db.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
        }
        let idx = db.index_memory_bytes() as f64;
        let data = db.logical_bytes() as f64;
        t.row(
            format!("{n} keys"),
            vec![
                f1(idx / 1024.0),
                f1(data / (1 << 20) as f64),
                f2(100.0 * idx / data.max(1.0)),
                format!("{}", db.index_memory_bytes() / 8),
            ],
        );
    }
    t.print();
    println!("note: the index covers only the bounded UnsortedStore, so its");
    println!("footprint stays flat as total data grows — the paper's <1% claim.");
    Ok(())
}

/// E13 / paper §Crash Consistency: recovery time vs checkpoint cadence.
pub fn recovery(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E13 recovery time after load (hash-index checkpoint cadence)",
        &["reopen ms", "partitions"],
    );
    for interval in [1u32, 4, 16] {
        let ws = Workspace::new(cfg, "e13");
        let mut opts = bench_unikv_options();
        opts.index_checkpoint_interval = interval;
        {
            let db = UniKv::open(ws.env.clone(), &ws.dir, opts.clone())?;
            for i in 0..cfg.num_keys {
                db.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
            }
        }
        let start = Instant::now();
        let db = UniKv::open(ws.env.clone(), &ws.dir, opts)?;
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        // Sanity: recovered data is readable.
        assert!(db.get(&format_key(0))?.is_some());
        t.row(
            format!("ckpt every {interval} flushes"),
            vec![f1(ms), db.partition_count().to_string()],
        );
    }
    t.print();
    Ok(())
}

/// E14 / paper §Design parameters: sensitivity to `unsorted_limit` and
/// value size.
pub fn sensitivity(cfg: &BenchConfig) -> Result<()> {
    let mut t = Table::new(
        "E14a sensitivity: unsorted_limit (× write buffer)",
        &["load KOPS", "read KOPS", "merges"],
    );
    for mult in [2u64, 4, 8, 16] {
        let ws = Workspace::new(cfg, "e14a");
        let mut opts = bench_unikv_options();
        opts.unsorted_limit_bytes = mult * opts.write_buffer_size as u64;
        let db = UniKv::open(ws.env.clone(), &ws.dir, opts)?;
        let start = Instant::now();
        for i in 0..cfg.num_keys {
            db.put(&format_key(i), &make_value(i, 0, cfg.value_size))?;
        }
        let load_secs = start.elapsed().as_secs_f64();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let reads = cfg.num_ops.min(20_000);
        let start = Instant::now();
        for _ in 0..reads {
            let k = rng.gen_range(0..cfg.num_keys);
            let _ = db.get(&format_key(k))?;
        }
        let read_secs = start.elapsed().as_secs_f64();
        t.row(
            format!("{mult}x"),
            vec![
                f1(kops(cfg.num_keys, load_secs)),
                f1(kops(reads, read_secs)),
                db.stats().merges.load(Ordering::Relaxed).to_string(),
            ],
        );
    }
    t.print();

    let mut t = Table::new(
        "E14b sensitivity: value size",
        &["load MB/s", "read KOPS"],
    );
    for vsize in [64usize, 256, 1024, 4096] {
        let n = (cfg.num_keys * cfg.value_size as u64 / vsize as u64).max(2_000);
        let ws = Workspace::new(cfg, "e14b");
        let db = UniKv::open(ws.env.clone(), &ws.dir, bench_unikv_options())?;
        let start = Instant::now();
        for i in 0..n {
            db.put(&format_key(i), &make_value(i, 0, vsize))?;
        }
        let load_secs = start.elapsed().as_secs_f64();
        let mbps = (n * vsize as u64) as f64 / (1 << 20) as f64 / load_secs;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let reads = cfg.num_ops.min(20_000).min(n);
        let start = Instant::now();
        for _ in 0..reads {
            let k = rng.gen_range(0..n);
            let _ = db.get(&format_key(k))?;
        }
        t.row(
            format!("{vsize}B"),
            vec![f1(mbps), f1(kops(reads, start.elapsed().as_secs_f64()))],
        );
    }
    t.print();
    Ok(())
}

/// E15 / paper §Memory overhead mitigation: size-differentiated store
/// routing for small-value workloads (small KVs → classic LSM, sparing
/// them per-entry hash-index cost; large KVs → UniKV).
pub fn router(cfg: &BenchConfig) -> Result<()> {
    use unikv::{SizeRouter, SizeRouterOptions};
    let mut t = Table::new(
        "E15 size-routed store vs plain UniKV on small values",
        &["load KOPS", "read KOPS", "index KB"],
    );
    let n = cfg.num_keys / 2;
    let small_value = 48usize;

    // Plain UniKV on an all-small workload.
    {
        let ws = Workspace::new(cfg, "e15u");
        let db = UniKv::open(ws.env.clone(), &ws.dir, bench_unikv_options())?;
        let start = Instant::now();
        for i in 0..n {
            db.put(&format_key(i), &make_value(i, 0, small_value))?;
        }
        let load = start.elapsed().as_secs_f64();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let reads = cfg.num_ops.min(20_000);
        let start = Instant::now();
        for _ in 0..reads {
            let k = rng.gen_range(0..n);
            let _ = db.get(&format_key(k))?;
        }
        t.row(
            "UniKV",
            vec![
                f1(kops(n, load)),
                f1(kops(reads, start.elapsed().as_secs_f64())),
                f1(db.index_memory_bytes() as f64 / 1024.0),
            ],
        );
    }

    // Size router: everything below 128 B goes to the LSM side.
    {
        let ws = Workspace::new(cfg, "e15r");
        let router = SizeRouter::open(
            ws.env.clone(),
            &ws.dir,
            SizeRouterOptions {
                small_value_threshold: 128,
                lsm: crate::engine::bench_lsm_options(Baseline::LevelDb),
                unikv: bench_unikv_options(),
            },
        )?;
        let start = Instant::now();
        for i in 0..n {
            router.put(&format_key(i), &make_value(i, 0, small_value))?;
        }
        let load = start.elapsed().as_secs_f64();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let reads = cfg.num_ops.min(20_000);
        let start = Instant::now();
        for _ in 0..reads {
            let k = rng.gen_range(0..n);
            let _ = router.get(&format_key(k))?;
        }
        t.row(
            "SizeRouter",
            vec![
                f1(kops(n, load)),
                f1(kops(reads, start.elapsed().as_secs_f64())),
                f1(router.large_store().index_memory_bytes() as f64 / 1024.0),
            ],
        );
    }
    t.print();
    println!("paper §Memory overhead: for tiny values the 8 B/entry hash index");
    println!("is a poor trade; routing small KVs to a classic LSM avoids it.");
    Ok(())
}

/// Names of all experiments, in run order.
pub const ALL: &[(&str, fn(&BenchConfig) -> Result<()>)] = &[
    ("motivation-hash-vs-lsm", motivation_hash_vs_lsm),
    ("motivation-skew", motivation_skew),
    ("micro", micro),
    ("mixed", mixed),
    ("scalability", scalability),
    ("ycsb", ycsb),
    ("ablation-hash-index", ablation_hash_index),
    ("ablation-kv-separation", ablation_kv_separation),
    ("ablation-partitioning", ablation_partitioning),
    ("ablation-scan", ablation_scan),
    ("amplification", amplification),
    ("memory-overhead", memory_overhead),
    ("recovery", recovery),
    ("sensitivity", sensitivity),
    ("router", router),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            num_keys: 3_000,
            num_ops: 1_000,
            value_size: 64,
            use_mem_env: true,
            seed: 1,
        }
    }

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        let cfg = tiny();
        for (name, f) in ALL {
            f(&cfg).unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
        }
    }
}
