//! Experiment harness for the UniKV reproduction: a uniform engine
//! adapter over UniKV, the four LSM baselines, and the hash-store
//! motivation baseline, plus workload-execution and table-printing
//! utilities shared by every experiment binary (see EXPERIMENTS.md for
//! the experiment ↔ paper mapping).

pub mod engine;
pub mod experiments;
pub mod harness;

pub use engine::{make_engine, BenchEngine, EngineSpec};
pub use harness::{BenchConfig, Row, Table};
