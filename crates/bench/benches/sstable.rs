//! Criterion microbenchmarks: SSTable build / point read / iterate, with
//! and without Bloom filters (UniKV removes them; baselines keep them).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::Path;
use std::sync::Arc;
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_sstable::{Table, TableBuilder, TableBuilderOptions, TableOptions};

const N: u32 = 20_000;

fn entries() -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..N)
        .map(|i| (format!("key{i:08}").into_bytes(), vec![7u8; 100]))
        .collect()
}

fn build(env: &MemEnv, path: &Path, bloom: bool) -> Arc<Table> {
    let mut b = TableBuilder::new(
        env.new_writable(path).unwrap(),
        TableBuilderOptions {
            bloom_bits_per_key: bloom.then_some(10),
            ..Default::default()
        },
    );
    for (k, v) in entries() {
        b.add(&k, &v).unwrap();
    }
    let props = b.finish().unwrap();
    Table::open(
        env.new_random_access(path).unwrap(),
        props.file_size,
        TableOptions::raw_uncached(),
    )
    .unwrap()
}

fn bench_sstable(c: &mut Criterion) {
    let env = MemEnv::new();
    let mut g = c.benchmark_group("sstable");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);

    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("build_20k", |b| {
        b.iter(|| build(&env, Path::new("/bench.sst"), false));
    });
    g.finish();

    let plain = build(&env, Path::new("/plain.sst"), false);
    let bloomed = build(&env, Path::new("/bloom.sst"), true);

    let mut g = c.benchmark_group("sstable_read");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let mut k = 0u32;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            k = k.wrapping_mul(1664525).wrapping_add(1013904223) % N;
            let key = format!("key{k:08}");
            std::hint::black_box(plain.get(key.as_bytes(), None).unwrap())
        });
    });
    g.bench_function("get_absent_no_bloom", |b| {
        b.iter(|| std::hint::black_box(plain.get(b"nope", Some(b"nope")).unwrap()));
    });
    g.bench_function("get_absent_with_bloom", |b| {
        b.iter(|| std::hint::black_box(bloomed.get(b"nope", Some(b"nope")).unwrap()));
    });
    g.bench_function("iterate_1k", |b| {
        b.iter(|| {
            let mut it = plain.iter();
            it.seek_to_first().unwrap();
            let mut n = 0;
            while it.valid() && n < 1000 {
                std::hint::black_box(it.value());
                it.next().unwrap();
                n += 1;
            }
            n
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sstable);
criterion_main!(benches);
