//! Criterion microbenchmarks: skiplist / memtable operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use unikv_common::ValueType;
use unikv_memtable::MemTable;

fn bench_memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("memtable");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    g.bench_function("add_100b", |b| {
        b.iter_batched(
            MemTable::new,
            |m| {
                for i in 0..1000u64 {
                    m.add(i + 1, ValueType::Value, &i.to_be_bytes(), &[7u8; 100]);
                }
                m
            },
            BatchSize::SmallInput,
        );
    });

    let filled = MemTable::new();
    for i in 0..100_000u64 {
        filled.add(i + 1, ValueType::Value, &i.to_be_bytes(), &[7u8; 100]);
    }
    let mut k = 0u64;
    g.bench_function("get_hit_100k", |b| {
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % 100_000;
            std::hint::black_box(filled.get(&k.to_be_bytes(), u64::MAX >> 8))
        });
    });

    g.bench_function("get_miss_100k", |b| {
        b.iter(|| std::hint::black_box(filled.get(b"absent-key", u64::MAX >> 8)));
    });

    g.bench_function("seek_and_scan_50", |b| {
        b.iter(|| {
            let mut it = filled.iter();
            it.seek_to_first();
            let mut n = 0;
            while it.valid() && n < 50 {
                std::hint::black_box(it.value());
                it.next();
                n += 1;
            }
            n
        });
    });
    g.finish();
}

criterion_group!(benches, bench_memtable);
criterion_main!(benches);
