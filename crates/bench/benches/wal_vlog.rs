//! Criterion microbenchmarks: WAL appends and value-log append/read.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::Path;
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_vlog::ValueLog;
use unikv_wal::LogWriter;

fn bench_wal(c: &mut Criterion) {
    let env = MemEnv::new();
    let mut g = c.benchmark_group("wal");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);
    for size in [100usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("append_{size}b"), |b| {
            let mut w = LogWriter::new(env.new_writable(Path::new("/wal")).unwrap());
            let payload = vec![7u8; size];
            b.iter(|| w.add_record(&payload).unwrap());
        });
    }
    g.finish();
}

fn bench_vlog(c: &mut Criterion) {
    let env = MemEnv::shared();
    let mut g = c.benchmark_group("vlog");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);
    for size in [100usize, 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("append_{size}b"), |b| {
            let mut vl = ValueLog::open(env.clone(), "/vl-a", 0, 64 << 20).unwrap();
            let payload = vec![9u8; size];
            b.iter(|| vl.append(&payload).unwrap());
        });
    }
    // Random reads over a populated log set.
    let mut vl = ValueLog::open(env.clone(), "/vl-r", 0, 8 << 20).unwrap();
    let ptrs: Vec<_> = (0..50_000u32)
        .map(|i| vl.append(&i.to_le_bytes().repeat(64)).unwrap())
        .collect();
    vl.sync().unwrap();
    g.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    g.bench_function("read_256b", |b| {
        b.iter(|| {
            i = (i.wrapping_mul(48271).wrapping_add(11)) % ptrs.len();
            std::hint::black_box(vl.read(&ptrs[i]).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_wal, bench_vlog);
criterion_main!(benches);
