//! Criterion microbenchmarks: the two-level hash index.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use unikv_hashindex::TwoLevelHashIndex;

fn key(i: u64) -> [u8; 8] {
    i.to_be_bytes()
}

fn bench_hashindex(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashindex");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    g.bench_function("insert_100k", |b| {
        b.iter_batched(
            || TwoLevelHashIndex::with_capacity(100_000, 2),
            |mut idx| {
                for i in 0..100_000u64 {
                    idx.insert(&key(i), (i % 8) as u32);
                }
                idx
            },
            BatchSize::LargeInput,
        );
    });

    let mut idx = TwoLevelHashIndex::with_capacity(100_000, 2);
    for i in 0..100_000u64 {
        idx.insert(&key(i), (i % 8) as u32);
    }
    let mut k = 0u64;
    g.bench_function("candidates_hit", |b| {
        b.iter(|| {
            k = (k.wrapping_mul(2862933555777941757).wrapping_add(3)) % 100_000;
            std::hint::black_box(idx.candidates(&key(k)))
        });
    });
    g.bench_function("candidates_miss", |b| {
        b.iter(|| std::hint::black_box(idx.candidates(b"missing!")));
    });
    g.bench_function("checkpoint_100k", |b| {
        b.iter(|| std::hint::black_box(idx.checkpoint().len()));
    });
    let snap = idx.checkpoint();
    g.bench_function("restore_100k", |b| {
        b.iter(|| std::hint::black_box(TwoLevelHashIndex::restore(&snap).unwrap().len()));
    });
    g.finish();
}

criterion_group!(benches, bench_hashindex);
criterion_main!(benches);
