//! Criterion microbenchmarks: whole-engine put/get/scan, UniKV vs the
//! LevelDB-like baseline on identical in-memory environments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::Path;
use unikv_bench::engine::{make_engine, BenchEngine, EngineSpec};
use unikv_bench::harness::load_phase;
use unikv_env::mem::MemEnv;
use unikv_lsm::Baseline;
use unikv_workload::{format_key, make_value};

const PRELOAD: u64 = 50_000;

fn engine(spec: EngineSpec, tag: &str) -> Box<dyn BenchEngine> {
    let env = MemEnv::shared();
    let e = make_engine(spec, env, Path::new(&format!("/bench-{tag}"))).unwrap();
    load_phase(e.as_ref(), PRELOAD, 256, true, 42).unwrap();
    e
}

fn bench_engines(c: &mut Criterion) {
    let specs = [
        (EngineSpec::UniKv, "unikv"),
        (EngineSpec::Lsm(Baseline::LevelDb), "leveldb"),
        (EngineSpec::Lsm(Baseline::PebblesDb), "pebblesdb"),
    ];
    for (spec, tag) in specs {
        let e = engine(spec, tag);
        let mut g = c.benchmark_group(format!("engine_{tag}"));
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1200));
        g.sample_size(20);
        g.throughput(Throughput::Elements(1));

        let mut k = 0u64;
        g.bench_function("get_hit", |b| {
            b.iter(|| {
                k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % PRELOAD;
                std::hint::black_box(e.get(&format_key(k)).unwrap())
            });
        });
        g.bench_function("get_miss", |b| {
            b.iter(|| std::hint::black_box(e.get(b"user9999999999999").unwrap()));
        });
        let mut i = 0u64;
        g.bench_function("put_256b", |b| {
            b.iter(|| {
                i += 1;
                e.put(&format_key(i % PRELOAD), &make_value(i, 5, 256)).unwrap()
            });
        });
        g.sample_size(20);
        g.bench_function("scan_50", |b| {
            b.iter(|| {
                k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % PRELOAD;
                std::hint::black_box(e.scan(&format_key(k), 50).unwrap())
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
