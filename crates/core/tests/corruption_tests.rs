//! Corruption-recovery suite: flip bytes in every on-disk file type
//! (WAL, SSTable, value log, META, index checkpoint) and assert the
//! engine under `paranoid_checks` either refuses to open with
//! `Error::Corruption`, serves reads that are individually correct or
//! typed corruption errors — but **never** silently wrong values — or,
//! for redundant structures, recovers cleanly. The offline scrub
//! (`verify_db`) must localize the damage in every case.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use unikv::{verify_db, UniKv, UniKvOptions};
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_workload::{format_key, make_value};

const ROOT: &str = "/db";

fn opts() -> UniKvOptions {
    UniKvOptions {
        sync_writes: true,
        ..UniKvOptions::small_for_tests()
    }
}

fn paranoid() -> UniKvOptions {
    UniKvOptions {
        paranoid_checks: true,
        ..opts()
    }
}

/// Build a database with tables, value logs, and a WAL holding writes
/// newer than any flush, then crash. Returns the acked model.
fn build_db(fault: &Arc<FaultInjectionEnv>) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    {
        let db = UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, opts()).unwrap();
        // Distinct keys: after compaction every value-log record is live,
        // so a byte flip anywhere in a vlog hits a reachable value.
        for i in 0..500u64 {
            let k = format_key(i);
            let v = make_value(i, 7, 80);
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
        db.flush().unwrap();
        db.compact_all().unwrap(); // values move into the value logs
                                   // Writes after the compaction live only in the WAL + memtable.
        for i in 0..60u64 {
            let k = format_key(1000 + i);
            let v = make_value(i, 8, 40);
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
    }
    fault.crash().unwrap();
    model
}

/// Every file under the partitions recorded in META whose name ends with
/// `suffix`, largest first (the interesting one to damage).
fn files_with_suffix(env: &Arc<FaultInjectionEnv>, suffix: &str) -> Vec<(PathBuf, u64)> {
    let root = std::path::Path::new(ROOT);
    let meta = unikv::meta::DbMeta::decode(&env.read_to_vec(&root.join("META")).unwrap()).unwrap();
    let mut out = Vec::new();
    for p in &meta.partitions {
        let dir = unikv::resolver::partition_dir(root, p.id);
        for name in env.list_dir(&dir).unwrap() {
            if name.to_string_lossy().ends_with(suffix) {
                let path = dir.join(name);
                let size = env.file_size(&path).unwrap();
                out.push((path, size));
            }
        }
    }
    out.sort_by_key(|(_, size)| std::cmp::Reverse(*size));
    out
}

/// After damage, reads must never produce a silently wrong value: each
/// key yields its model value or a typed corruption error. Returns the
/// number of corruption errors observed.
fn assert_no_silent_garbage(db: &UniKv, model: &BTreeMap<Vec<u8>, Vec<u8>>) -> u64 {
    let mut corrupt = 0;
    for (k, v) in model {
        match db.get(k) {
            Ok(Some(got)) => assert_eq!(
                &got,
                v,
                "silently wrong value for {}",
                String::from_utf8_lossy(k)
            ),
            Ok(None) => panic!("key {} silently vanished", String::from_utf8_lossy(k)),
            Err(e) => {
                assert!(e.is_corruption(), "expected typed corruption, got: {e}");
                corrupt += 1;
            }
        }
    }
    corrupt
}

#[test]
fn corrupt_meta_fails_open_with_typed_error() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    build_db(&fault);
    let meta = std::path::Path::new(ROOT).join("META");
    let size = fault.file_size(&meta).unwrap();
    fault.flip_byte(&meta, size / 2).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(report.damage.iter().any(|d| d.kind == "META"), "{report:?}");

    let err = match UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()) {
        Ok(_) => panic!("paranoid open must fail"),
        Err(e) => e,
    };
    assert!(err.is_corruption(), "got: {err}");
}

#[test]
fn corrupt_wal_middle_fails_paranoid_open() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    build_db(&fault);
    let (wal, size) = files_with_suffix(&fault, ".wal")
        .into_iter()
        .next()
        .expect("a WAL with unflushed writes");
    assert!(size > 0, "WAL should hold the post-compaction writes");
    // A third of the way in: records follow, so this is mid-log damage
    // (acked writes after it would be lost), not a torn tail.
    fault.flip_byte(&wal, size / 3).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(report.damage.iter().any(|d| d.kind == "wal"), "{report:?}");

    let err = match UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()) {
        Ok(_) => panic!("paranoid open must fail"),
        Err(e) => e,
    };
    assert!(err.is_corruption(), "got: {err}");
    assert!(err.to_string().contains("WAL"), "got: {err}");
}

#[test]
fn corrupt_sstable_is_detected_never_served() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let model = build_db(&fault);
    let (sst, size) = files_with_suffix(&fault, ".sst")
        .into_iter()
        .next()
        .expect("a committed table");
    fault.flip_byte(&sst, size / 2).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(
        report.damage.iter().any(|d| d.kind == "sstable"),
        "{report:?}"
    );

    // Mid-file damage lands in a data block, which open-time footer/index
    // checks cannot see; the block CRC catches it at read time instead.
    match UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()) {
        Err(e) => assert!(e.is_corruption(), "got: {e}"),
        Ok(db) => {
            let corrupt = assert_no_silent_garbage(&db, &model);
            assert!(corrupt > 0, "damaged table never read");
            let stats: BTreeMap<_, _> = db.stats().snapshot().into_iter().collect();
            assert_eq!(
                stats["corruptions_detected"], corrupt,
                "stats must count each surfaced corruption"
            );
        }
    }
}

#[test]
fn corrupt_vlog_value_is_detected_never_served() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let model = build_db(&fault);
    let (vlog, size) = files_with_suffix(&fault, ".vlog")
        .into_iter()
        .next()
        .expect("a value log after compaction");
    fault.flip_byte(&vlog, size / 2).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(report.damage.iter().any(|d| d.kind == "vlog"), "{report:?}");

    match UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()) {
        Err(e) => assert!(e.is_corruption(), "got: {e}"),
        Ok(db) => {
            let corrupt = assert_no_silent_garbage(&db, &model);
            assert!(corrupt > 0, "damaged value log never read");
        }
    }
}

#[test]
fn corrupt_index_checkpoint_recovers_cleanly() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let model = build_db(&fault);
    let (ckpt, size) = {
        // The checkpoint lives beside the tables in each partition dir.
        let found = files_with_suffix(&fault, "INDEX.ckpt");
        match found.into_iter().next() {
            Some(f) => f,
            None => return, // no checkpoint written at this scale: nothing to corrupt
        }
    };
    fault.flip_byte(&ckpt, size / 2).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(
        report.damage.iter().any(|d| d.kind == "index-ckpt"),
        "{report:?}"
    );

    // The checkpoint is redundant (tables are the truth): recovery must
    // fall back to rebuilding the index and serve everything correctly.
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()).unwrap();
    assert_eq!(assert_no_silent_garbage(&db, &model), 0);
}

#[test]
fn missing_committed_table_fails_paranoid_open() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    build_db(&fault);
    let (sst, _) = files_with_suffix(&fault, ".sst")
        .into_iter()
        .next()
        .expect("a committed table");
    fault.delete_file(&sst).unwrap();

    let report = verify_db(fault.clone() as Arc<dyn Env>, ROOT).unwrap();
    assert!(
        report.damage.iter().any(|d| d.kind == "sstable"),
        "{report:?}"
    );

    let err = match UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, paranoid()) {
        Ok(_) => panic!("paranoid open must fail"),
        Err(e) => e,
    };
    assert!(err.is_corruption(), "got: {err}");

    // The default (non-paranoid) open defers detection, but reads still
    // surface errors rather than fabricated values.
    if let Ok(db) = UniKv::open(fault.clone() as Arc<dyn Env>, ROOT, opts()) {
        for i in 0..300u64 {
            if let Ok(Some(v)) = db.get(&format_key(i)) {
                assert!(!v.is_empty());
            }
        }
    }
}
