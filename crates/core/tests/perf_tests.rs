//! Per-operation profiler tests: exact stage accounting under the manual
//! metrics clock, and the overhead guard — an unprofiled, listener-free
//! run performs exactly the same clock reads and writes zero journal
//! bytes, i.e. behaves byte-identically to a build without the profiler.

use unikv::{manual_step_clock, PerfStage, UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;
use unikv_env::Env;

fn key(i: u32) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn value(i: u32, len: usize) -> Vec<u8> {
    let unit = format!("value-{i}-").into_bytes();
    let reps = len / unit.len() + 2;
    unit.repeat(reps)[..len].to_vec()
}

/// Overhead guard, clock half: with the step-1 manual clock every clock
/// read is observable. Unprofiled ops must read the clock exactly twice
/// each — the profiler hooks sprinkled through the read/write/WAL/table
/// paths must not add a single read when no profile is active.
#[test]
fn unprofiled_ops_read_clock_exactly_twice_each() {
    const PUTS: u64 = 40;
    const GETS: u64 = 25;
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(1)));
    for i in 0..PUTS as u32 {
        db.put(&key(i), &value(i, 32)).unwrap();
    }
    for i in 0..GETS as u32 {
        db.get(&key(i)).unwrap();
    }
    // Next read returns (reads so far + 1) * step.
    assert_eq!(
        db.metrics().registry.now_micros(),
        2 * (PUTS + GETS) + 1,
        "an unprofiled op read the clock more than twice"
    );
}

/// Overhead guard, on-disk half: the same seeded workload with and without
/// the journal produces identical user-visible results AND byte-identical
/// machine metrics reports (same clock reads, same counters, same trace),
/// and the journal-free run leaves no EVENTS bytes behind.
#[test]
fn no_listener_run_is_byte_identical_and_writes_no_journal() {
    let run = |journal: bool| {
        let env = MemEnv::shared();
        let opts = UniKvOptions {
            enable_event_journal: journal,
            ..UniKvOptions::small_for_tests()
        };
        let db = UniKv::open(env.clone(), "/db", opts).unwrap();
        db.set_metrics_clock(Some(manual_step_clock(3)));
        let mut rng: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let mut observed = Vec::new();
        for _ in 0..4000 {
            let k = key(next(400) as u32);
            match next(8) {
                0 => db.delete(&k).unwrap(),
                1..=5 => db.put(&k, &value(next(1000) as u32, 100)).unwrap(),
                _ => observed.push(db.get(&k).unwrap()),
            }
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        (observed, db.metrics_report_machine(), env)
    };

    let (res_off, report_off, env_off) = run(false);
    let (res_on, report_on, env_on) = run(true);
    assert_eq!(res_off, res_on, "journal changed user-visible results");
    assert_eq!(
        report_off, report_on,
        "journal perturbed the metrics clock or counters"
    );
    assert!(!env_off.file_exists(std::path::Path::new("/db/EVENTS")));
    assert!(!env_off.file_exists(std::path::Path::new("/db/EVENTS.old")));
    assert!(env_on.file_exists(std::path::Path::new("/db/EVENTS")));
}

/// Exact accounting: a profiled get's stage sum equals its total, which
/// equals the very sample its latency histogram recorded. Repeated
/// profiled ops stay exact — no state leaks between operations.
#[test]
fn profiled_get_stage_sums_match_histogram_total() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(5)));
    db.put(&key(1), &value(1, 64)).unwrap();

    let (v, ctx) = db.get_profiled(&key(1)).unwrap();
    assert_eq!(v, Some(value(1, 64)));
    assert_eq!(ctx.ops, 1);
    // Memtable hit: t0, router mark, memtable mark, t1 — three steps of 5.
    assert_eq!(ctx.total_micros, 15);
    assert_eq!(ctx.stage_sum(), ctx.total_micros);
    assert_eq!(ctx.stage(PerfStage::Router), 5);
    assert_eq!(ctx.stage(PerfStage::Memtable), 5);
    assert_eq!(ctx.stage(PerfStage::Other), 5);
    let snap = db.metrics_snapshot();
    assert_eq!(snap.histograms["get_latency_us"].count, 1);
    assert_eq!(snap.histograms["get_latency_us"].sum, ctx.total_micros);

    // A second profiled op is just as exact (thread-local state fully
    // cleared by the first).
    let (_, ctx2) = db.get_profiled(&key(1)).unwrap();
    assert_eq!(ctx2.ops, 1);
    assert_eq!(ctx2.total_micros, 15);
    assert_eq!(ctx2.stage_sum(), ctx2.total_micros);
}

/// Profiled writes attribute WAL append and memtable time; the stage sum
/// matches the put histogram sample exactly.
#[test]
fn profiled_put_stage_sums_match_histogram_total() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(5)));

    let ctx = db.put_profiled(&key(1), &value(1, 64)).unwrap();
    assert_eq!(ctx.ops, 1);
    // t0, router, wal_append, memtable, t1 — four steps of 5.
    assert_eq!(ctx.total_micros, 20);
    assert_eq!(ctx.stage_sum(), ctx.total_micros);
    assert_eq!(ctx.stage(PerfStage::Router), 5);
    assert_eq!(ctx.stage(PerfStage::WalAppend), 5);
    assert_eq!(ctx.stage(PerfStage::Memtable), 5);
    assert_eq!(ctx.stage(PerfStage::Other), 5);
    let snap = db.metrics_snapshot();
    assert_eq!(snap.histograms["put_latency_us"].count, 1);
    assert_eq!(snap.histograms["put_latency_us"].sum, ctx.total_micros);

    let ctx = db.delete_profiled(&key(1)).unwrap();
    assert_eq!(ctx.total_micros, ctx.stage_sum());
}

/// The I/O counters in a profile reflect where the read actually went:
/// hash-index probes and block reads for UnsortedStore hits, vlog fetches
/// once a merge has separated values into the value log.
#[test]
fn profiled_reads_count_probes_blocks_and_vlog_fetches() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    for i in 0..40u32 {
        db.put(&key(i), &value(i, 200)).unwrap();
    }
    db.flush().unwrap();

    // UnsortedStore hit: resolved via the hash index and a table block.
    let (v, ctx) = db.get_profiled(&key(7)).unwrap();
    assert_eq!(v, Some(value(7, 200)));
    assert!(ctx.hash_probes >= 1, "no hash probe counted: {ctx:?}");
    assert!(ctx.block_reads >= 1, "no block read counted: {ctx:?}");
    assert_eq!(ctx.cache_hits + ctx.cache_misses, ctx.block_reads);
    assert!(ctx.stage_hits[PerfStage::IndexProbe as usize] >= 1);
    assert!(ctx.stage_hits[PerfStage::BlockRead as usize] >= 1);

    // SortedStore + value log after the merge moves values out.
    db.compact_all().unwrap();
    let (v, ctx) = db.get_profiled(&key(7)).unwrap();
    assert_eq!(v, Some(value(7, 200)));
    assert!(ctx.vlog_fetches >= 1, "no vlog fetch counted: {ctx:?}");
    assert!(ctx.stage_hits[PerfStage::VlogFetch as usize] >= 1);
    assert!(ctx.stage_hits[PerfStage::BoundarySearch as usize] >= 1);
    assert_eq!(ctx.stage_sum(), ctx.total_micros);

    // A miss still produces a consistent profile.
    let (v, ctx) = db.get_profiled(b"zzz-not-there").unwrap();
    assert_eq!(v, None);
    assert_eq!(ctx.stage_sum(), ctx.total_micros);
}

/// The LSM baseline exposes the same profiled API with the same exactness
/// contract, so cross-engine breakdowns are comparable.
#[test]
fn lsm_baseline_profiles_with_exact_stage_sums() {
    use unikv_lsm::{Baseline, LsmDb, LsmOptions};
    let db = LsmDb::open(
        MemEnv::shared(),
        "/lsm",
        LsmOptions::baseline(Baseline::LevelDb),
    )
    .unwrap();
    db.metrics_registry().set_clock(Some(manual_step_clock(4)));

    let ctx = db.put_profiled(&key(1), &value(1, 64)).unwrap();
    assert_eq!(ctx.ops, 1);
    assert_eq!(ctx.total_micros, ctx.stage_sum());
    assert_eq!(ctx.stage(PerfStage::WalAppend), 4);
    assert_eq!(ctx.stage(PerfStage::Memtable), 4);

    let (v, ctx) = db.get_profiled(&key(1)).unwrap();
    assert_eq!(v, Some(value(1, 64)));
    assert_eq!(ctx.total_micros, ctx.stage_sum());
    assert_eq!(ctx.stage(PerfStage::Memtable), 4);
}
