//! API-surface tests: write batches, bounded scans, and concurrent access.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions, WriteBatch};
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;
use unikv_workload::{format_key, make_value};

fn open_small() -> UniKv {
    UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap()
}

#[test]
fn write_batch_applies_atomically_in_order() {
    let db = open_small();
    db.put(b"a", b"old").unwrap();
    let mut b = WriteBatch::new();
    b.put(b"a".to_vec(), b"new".to_vec())
        .put(b"b".to_vec(), b"1".to_vec())
        .delete(b"a".to_vec())
        .put(b"c".to_vec(), b"2".to_vec());
    db.write_batch(&b).unwrap();
    // Later ops in the batch shadow earlier ones.
    assert_eq!(db.get(b"a").unwrap(), None);
    assert_eq!(db.get(b"b").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"c").unwrap(), Some(b"2".to_vec()));
}

#[test]
fn empty_and_invalid_batches() {
    let db = open_small();
    db.write_batch(&WriteBatch::new()).unwrap();
    let mut bad = WriteBatch::new();
    bad.put(Vec::new(), b"x".to_vec());
    assert!(db.write_batch(&bad).is_err());
}

#[test]
fn write_batch_spans_partitions_and_survives_crash() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let opts = UniKvOptions {
        sync_writes: true,
        ..UniKvOptions::small_for_tests()
    };
    {
        let db = UniKv::open(fault.clone() as Arc<_>, "/db", opts.clone()).unwrap();
        // Force splits so later batches span multiple partitions.
        for i in 0..4_000u64 {
            db.put(&format_key(i), &make_value(i, 0, 100)).unwrap();
        }
        assert!(db.partition_count() >= 2);
        let mut b = WriteBatch::new();
        for i in (0..4_000u64).step_by(500) {
            b.put(format_key(i), make_value(i, 7, 64));
        }
        db.write_batch(&b).unwrap();
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault as Arc<_>, "/db", opts).unwrap();
    for i in (0..4_000u64).step_by(500) {
        assert_eq!(
            db.get(&format_key(i)).unwrap(),
            Some(make_value(i, 7, 64)),
            "batched write to key {i} lost"
        );
    }
}

#[test]
fn batched_and_individual_writes_interleave() {
    let db = open_small();
    for round in 0..10u64 {
        let mut b = WriteBatch::new();
        for i in 0..50u64 {
            b.put(format_key(round * 50 + i), make_value(round, i, 80));
        }
        db.write_batch(&b).unwrap();
        db.put(&format_key(round), b"override").unwrap();
    }
    assert_eq!(db.get(&format_key(3)).unwrap(), Some(b"override".to_vec()));
    assert_eq!(db.scan(b"", 10_000).unwrap().len(), 500);
}

#[test]
fn scan_range_bounds() {
    let db = open_small();
    for i in 0..500u64 {
        db.put(&format_key(i), &make_value(i, 0, 40)).unwrap();
    }
    // Bounded below and above.
    let items = db
        .scan_range(&format_key(100), Some(&format_key(110)), 1000)
        .unwrap();
    assert_eq!(items.len(), 10);
    assert_eq!(items[0].key, format_key(100));
    assert_eq!(items[9].key, format_key(109));
    // Limit still applies inside the bound.
    let items = db
        .scan_range(&format_key(100), Some(&format_key(200)), 5)
        .unwrap();
    assert_eq!(items.len(), 5);
    // Inverted/empty ranges.
    assert!(db
        .scan_range(&format_key(10), Some(&format_key(10)), 10)
        .unwrap()
        .is_empty());
    assert!(db
        .scan_range(&format_key(20), Some(&format_key(10)), 10)
        .unwrap()
        .is_empty());
    // Unbounded equals scan().
    assert_eq!(
        db.scan_range(&format_key(490), None, 100).unwrap().len(),
        10
    );
}

#[test]
fn scan_range_across_partition_boundaries() {
    let db = open_small();
    for i in 0..4_000u64 {
        db.put(&format_key(i), &make_value(i, 0, 100)).unwrap();
    }
    assert!(db.partition_count() >= 2);
    let items = db
        .scan_range(&format_key(500), Some(&format_key(3_500)), 100_000)
        .unwrap();
    assert_eq!(items.len(), 3_000);
    assert!(items.windows(2).all(|w| w[0].key < w[1].key));
}

#[test]
fn lsm_scan_range_matches() {
    use unikv_lsm::{Baseline, LsmDb, LsmOptions};
    let mut o = LsmOptions::baseline(Baseline::LevelDb);
    o.write_buffer_size = 8 << 10;
    o.table_size = 8 << 10;
    let db = LsmDb::open(MemEnv::shared(), "/l", o).unwrap();
    for i in 0..300u64 {
        db.put(&format_key(i), b"v").unwrap();
    }
    let items = db
        .scan_range(&format_key(50), Some(&format_key(60)), 100)
        .unwrap();
    assert_eq!(items.len(), 10);
    assert!(db
        .scan_range(&format_key(60), Some(&format_key(50)), 100)
        .unwrap()
        .is_empty());
}

#[test]
fn concurrent_readers_during_writes() {
    // UniKv is Sync: point reads and scans may run from many threads while
    // a writer mutates. Readers must always observe internally consistent
    // results (sorted scans, valid values).
    let db = Arc::new(open_small());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(&format_key(i % 2_000), &make_value(i, 1, 64))
                    .unwrap();
                i += 1;
            }
            i
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = (r * 97 + checked) % 2_000;
                    let _ = db.get(&format_key(k)).unwrap();
                    if checked.is_multiple_of(50) {
                        let items = db.scan(&format_key(k), 20).unwrap();
                        assert!(items.windows(2).all(|w| w[0].key < w[1].key));
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let written = writer.join().unwrap();
    let read: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(written > 0 && read > 0);
}
