//! End-to-end tests of the UniKV engine: correctness across flushes,
//! merges, GC, splits, scans, ablations, and recovery.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions};
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;

fn open(env: Arc<MemEnv>, opts: UniKvOptions) -> UniKv {
    UniKv::open(env, "/db", opts).unwrap()
}

fn key(i: u32) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn value(i: u32, len: usize) -> Vec<u8> {
    let unit = format!("value-{i}-").into_bytes();
    let reps = len / unit.len() + 2;
    unit.repeat(reps)[..len].to_vec()
}

#[test]
fn basic_put_get_delete() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    db.put(b"alpha", b"1").unwrap();
    db.put(b"beta", b"2").unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"beta").unwrap(), Some(b"2".to_vec()));
    assert_eq!(db.get(b"gamma").unwrap(), None);
    db.delete(b"alpha").unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), None);
    db.put(b"alpha", b"3").unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), Some(b"3".to_vec()));
}

#[test]
fn empty_key_rejected() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    assert!(db.put(b"", b"v").is_err());
}

#[test]
fn model_check_random_workload() {
    // Mixed puts/deletes against a BTreeMap reference model, with sizes
    // chosen so flushes, scan merges, full merges, GC, and splits all fire.
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng: u64 = 0x853c_49e6_748f_ea9b;
    let mut next = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };
    for _ in 0..6000 {
        let k = key(next(700) as u32);
        match next(10) {
            0 => {
                db.delete(&k).unwrap();
                model.remove(&k);
            }
            _ => {
                let v = value(next(1000) as u32, 32 + next(96) as usize);
                db.put(&k, &v).unwrap();
                model.insert(k, v);
            }
        }
    }
    // Engine exercised every mechanism.
    let stats = db.stats();
    assert!(stats.flushes.load(Ordering::Relaxed) > 0, "no flushes");
    assert!(stats.merges.load(Ordering::Relaxed) > 0, "no merges");
    // (splits are exercised by split_produces_disjoint_partitions — this
    // workload's live set is intentionally smaller than the split limit)

    // Point lookups agree with the model.
    for i in 0..700u32 {
        let k = key(i);
        assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned(), "key {i}");
    }
    // Scans agree with the model.
    for start in [0u32, 13, 350, 699] {
        let from = key(start);
        let got = db.scan(&from, 25).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(from.clone()..)
            .take(25)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(got.len(), expect.len(), "scan from {start}");
        for (g, (ek, ev)) in got.iter().zip(&expect) {
            assert_eq!(&g.key, ek);
            assert_eq!(&g.value, ev);
        }
    }

    // Metrics invariants: the tier-resolution counters partition `reads`
    // exactly, histogram sample counts equal op counts, and the op-trace
    // ring never exceeds its configured bound.
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counters["writes"], 6000);
    assert_eq!(snap.histograms["put_latency_us"].count, 6000);
    assert_eq!(snap.counters["reads"], 700);
    assert_eq!(snap.histograms["get_latency_us"].count, 700);
    assert_eq!(snap.counters["scans"], 4);
    assert_eq!(snap.histograms["scan_latency_us"].count, 4);
    assert_eq!(
        snap.counters["reads"],
        snap.counters["reads_hit_memtable"]
            + snap.counters["reads_hit_unsorted"]
            + snap.counters["reads_hit_sorted"]
            + snap.counters["reads_miss"]
    );
    let trace = db.metrics().registry.trace();
    assert!(trace.len() <= trace.capacity());
}

#[test]
fn values_survive_merge_into_sorted_store() {
    let env = MemEnv::shared();
    let db = open(env, UniKvOptions::small_for_tests());
    let n = 600u32;
    for i in 0..n {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    assert!(db.stats().merges.load(Ordering::Relaxed) > 0);
    for i in 0..n {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
    }
}

#[test]
fn partial_kv_separation_stores_pointers() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    for i in 0..400u32 {
        db.put(&key(i), &value(i, 128)).unwrap();
    }
    db.compact_all().unwrap();
    // After merging, values live in logs: logical bytes include live
    // value bytes and reads still work.
    assert!(db.logical_bytes() > 0);
    for i in (0..400).step_by(37) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 128)));
    }
    // Scans resolve pointers (parallel fetch path).
    let items = db.scan(&key(0), 50).unwrap();
    assert_eq!(items.len(), 50);
    for (j, item) in items.iter().enumerate() {
        assert_eq!(item.key, key(j as u32));
        assert_eq!(item.value, value(j as u32, 128));
    }
}

#[test]
fn gc_reclaims_dead_values() {
    let env = MemEnv::shared();
    let db = open(env.clone(), UniKvOptions::small_for_tests());
    // Write the same keys repeatedly: old versions become garbage in logs.
    for round in 0..8u32 {
        for i in 0..200u32 {
            db.put(&key(i), &value(i * 31 + round, 100)).unwrap();
        }
        db.compact_all().unwrap();
    }
    let before = env.total_bytes();
    db.force_gc().unwrap();
    let after = env.total_bytes();
    assert!(db.stats().gcs.load(Ordering::Relaxed) > 0, "GC never ran");
    assert!(
        after < before,
        "GC did not reclaim space: {before} -> {after}"
    );
    for i in (0..200).step_by(17) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i * 31 + 7, 100)));
    }
}

#[test]
fn split_produces_disjoint_partitions() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    for i in 0..3000u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    assert!(db.partition_count() >= 2, "expected at least one split");
    let bounds = db.partition_boundaries();
    // Boundaries strictly increasing, first is -infinity (empty).
    assert!(bounds[0].is_empty());
    for w in bounds.windows(2) {
        assert!(w[0] < w[1], "boundaries not increasing");
    }
    // All data still readable across partitions.
    for i in (0..3000).step_by(71) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
    }
    // A scan crossing a partition boundary is seamless and sorted.
    let boundary = bounds[1].clone();
    let start = std::str::from_utf8(&boundary[4..])
        .unwrap()
        .trim_start_matches('0')
        .parse::<u32>()
        .unwrap_or(0)
        .saturating_sub(5);
    let items = db.scan(&key(start), 10).unwrap();
    assert_eq!(items.len(), 10);
    for w in items.windows(2) {
        assert!(w[0].key < w[1].key);
    }
}

#[test]
fn recovery_from_clean_shutdown() {
    let env = MemEnv::shared();
    {
        let db = open(env.clone(), UniKvOptions::small_for_tests());
        for i in 0..1500u32 {
            db.put(&key(i), &value(i, 48)).unwrap();
        }
        db.delete(&key(3)).unwrap();
    }
    let db = open(env, UniKvOptions::small_for_tests());
    assert_eq!(db.get(&key(0)).unwrap(), Some(value(0, 48)));
    assert_eq!(db.get(&key(1499)).unwrap(), Some(value(1499, 48)));
    assert_eq!(db.get(&key(3)).unwrap(), None);
    // Writes continue with the recovered sequence.
    db.put(&key(3), b"back").unwrap();
    assert_eq!(db.get(&key(3)).unwrap(), Some(b"back".to_vec()));
}

#[test]
fn recovery_reopens_after_splits_and_gc() {
    let env = MemEnv::shared();
    {
        let db = open(env.clone(), UniKvOptions::small_for_tests());
        for round in 0..3u32 {
            for i in 0..1200u32 {
                db.put(&key(i), &value(i + round, 64)).unwrap();
            }
        }
        db.force_gc().unwrap();
        assert!(db.partition_count() >= 2);
    }
    let db = open(env, UniKvOptions::small_for_tests());
    assert!(db.partition_count() >= 2);
    for i in (0..1200).step_by(53) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i + 2, 64)), "key {i}");
    }
    let items = db.scan(&key(0), 30).unwrap();
    assert_eq!(items.len(), 30);
}

#[test]
fn crash_recovery_preserves_synced_writes() {
    let mem = MemEnv::shared();
    let fault = FaultInjectionEnv::new(mem);
    {
        let mut opts = UniKvOptions::small_for_tests();
        opts.sync_writes = true;
        let db = UniKv::open(fault.clone(), "/db", opts).unwrap();
        for i in 0..800u32 {
            db.put(&key(i), &value(i, 40)).unwrap();
        }
        // No clean shutdown: simulate power failure.
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
    for i in (0..800).step_by(29) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 40)), "key {i}");
    }
}

#[test]
fn crash_without_sync_loses_only_memtable_tail() {
    let mem = MemEnv::shared();
    let fault = FaultInjectionEnv::new(mem);
    {
        let db = UniKv::open(fault.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
        for i in 0..800u32 {
            db.put(&key(i), &value(i, 40)).unwrap();
        }
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
    // Everything that reached a flushed table (committed via META) must be
    // present; only unsynced WAL tail may be missing. Count survivors.
    let mut survivors = 0;
    for i in 0..800u32 {
        if db.get(&key(i)).unwrap() == Some(value(i, 40)) {
            survivors += 1;
        }
    }
    // With a 4 KiB write buffer and ~50-byte entries, the unsynced tail is
    // at most one memtable worth (~80 entries).
    assert!(survivors >= 600, "too much data lost: {survivors}/800");
}

#[test]
fn ablation_no_hash_index_still_correct() {
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_hash_index = false;
    let db = open(MemEnv::shared(), opts);
    for i in 0..900u32 {
        db.put(&key(i), &value(i, 50)).unwrap();
    }
    for i in (0..900).step_by(41) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 50)));
    }
    assert_eq!(db.index_memory_bytes(), 0);
}

#[test]
fn ablation_no_kv_separation_still_correct() {
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_kv_separation = false;
    let db = open(MemEnv::shared(), opts);
    for i in 0..900u32 {
        db.put(&key(i), &value(i, 50)).unwrap();
    }
    db.compact_all().unwrap();
    for i in (0..900).step_by(41) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 50)));
    }
    let items = db.scan(&key(100), 20).unwrap();
    assert_eq!(items.len(), 20);
}

#[test]
fn ablation_no_partitioning_stays_single() {
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_partitioning = false;
    let db = open(MemEnv::shared(), opts);
    for i in 0..3000u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    assert_eq!(db.partition_count(), 1);
    for i in (0..3000).step_by(97) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)));
    }
}

#[test]
fn ablation_no_scan_optimization_still_correct() {
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_scan_optimization = false;
    let db = open(MemEnv::shared(), opts);
    for i in 0..900u32 {
        db.put(&key(i), &value(i, 50)).unwrap();
    }
    assert_eq!(db.stats().scan_merges.load(Ordering::Relaxed), 0);
    let items = db.scan(&key(50), 40).unwrap();
    assert_eq!(items.len(), 40);
    assert_eq!(items[0].key, key(50));
}

#[test]
fn overwrites_return_newest_across_tiers() {
    // One key overwritten in every tier: SortedStore, UnsortedStore,
    // memtable — newest must always win.
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    db.put(b"pivot", b"oldest").unwrap();
    for i in 0..500u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    db.compact_all().unwrap(); // "oldest" now in SortedStore
    db.put(b"pivot", b"middle").unwrap();
    db.flush().unwrap(); // "middle" now in UnsortedStore
    assert_eq!(db.get(b"pivot").unwrap(), Some(b"middle".to_vec()));
    db.put(b"pivot", b"newest").unwrap(); // memtable
    assert_eq!(db.get(b"pivot").unwrap(), Some(b"newest".to_vec()));
    // Scan sees the newest too.
    let items = db.scan(b"pivot", 1).unwrap();
    assert_eq!(items[0].value, b"newest".to_vec());
}

#[test]
fn deletes_shadow_sorted_store_values() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    for i in 0..300u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    db.compact_all().unwrap();
    db.delete(&key(5)).unwrap();
    db.flush().unwrap(); // tombstone now in UnsortedStore
    assert_eq!(db.get(&key(5)).unwrap(), None);
    let items = db.scan(&key(4), 3).unwrap();
    assert_eq!(items[0].key, key(4));
    assert_eq!(items[1].key, key(6), "deleted key must not appear in scans");
    // After a full merge the tombstone and value are both gone.
    db.compact_all().unwrap();
    assert_eq!(db.get(&key(5)).unwrap(), None);
}

#[test]
fn scan_with_limit_zero_and_past_end() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    db.put(b"a", b"1").unwrap();
    assert!(db.scan(b"a", 0).unwrap().is_empty());
    assert!(db.scan(b"zzz", 10).unwrap().is_empty());
}

#[test]
fn large_values_roundtrip() {
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    let big = vec![0xabu8; 64 << 10]; // larger than write buffer
    db.put(b"big", &big).unwrap();
    assert_eq!(db.get(b"big").unwrap(), Some(big.clone()));
    db.compact_all().unwrap();
    assert_eq!(db.get(b"big").unwrap(), Some(big));
}

#[test]
fn index_memory_stays_bounded() {
    // The hash index only covers the UnsortedStore; merges reset it, so
    // its footprint is bounded by the unsorted limit, not the data size.
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    for i in 0..4000u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    let idx_bytes = db.index_memory_bytes();
    let data_bytes = db.logical_bytes();
    assert!(
        (idx_bytes as f64) < 0.05 * data_bytes as f64,
        "index {idx_bytes} B too large vs data {data_bytes} B"
    );
}

#[test]
fn reopen_with_different_ablation_flags() {
    // Feature switches affect future behaviour only: a store built with
    // everything enabled must stay fully readable when reopened with
    // features disabled (and vice versa).
    let env = MemEnv::shared();
    {
        let db = open(env.clone(), UniKvOptions::small_for_tests());
        for i in 0..3000u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        assert!(db.partition_count() >= 2);
    }
    let mut opts = UniKvOptions::small_for_tests();
    opts.enable_partitioning = false;
    opts.enable_hash_index = false;
    opts.enable_scan_optimization = false;
    let db = open(env.clone(), opts);
    assert!(db.partition_count() >= 2, "existing partitions preserved");
    for i in (0..3000).step_by(101) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
    }
    drop(db);
    // And back to full features.
    let db = open(env, UniKvOptions::small_for_tests());
    assert_eq!(db.scan(&key(0), 20).unwrap().len(), 20);
}

#[test]
fn gc_preserves_data_after_partition_splits() {
    // Lazy value split: children share parent logs until GC rewrites
    // them. Force that whole lifecycle and verify nothing is lost.
    let env = MemEnv::shared();
    let db = open(env.clone(), UniKvOptions::small_for_tests());
    let n = 3000u32;
    for i in 0..n {
        db.put(&key(i), &value(i, 80)).unwrap();
    }
    assert!(db.partition_count() >= 2);
    db.force_gc().unwrap(); // un-lazies every shared log
    for i in (0..n).step_by(73) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 80)), "key {i}");
    }
    // After GC, no partition may still reference another's logs; a second
    // GC pass must be a no-op for correctness.
    db.force_gc().unwrap();
    let items = db.scan(&key(0), n as usize).unwrap();
    assert_eq!(items.len(), n as usize);
}

#[test]
fn sequential_load_then_backward_probe() {
    // Sequential loads give UnsortedStore tables disjoint ranges — the
    // path where range pruning, not the hash index, resolves lookups.
    let db = open(MemEnv::shared(), UniKvOptions::small_for_tests());
    for i in 0..2000u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    for i in (0..2000).rev().step_by(37) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)));
    }
}
