//! Graceful-degradation suite: seeded transient storms against background
//! maintenance must drive the database through Degraded/ReadOnly — never
//! Poisoned — and the database must heal itself once the storm clears,
//! with zero lost acked writes and zero resurrected deletes (checked live
//! and again across a crash + paranoid reopen). A permanent failure of
//! the META commit step must still poison with a typed error.
//!
//! On failure, the failing fault plan (seed + injected fault events) is
//! written to `target/tmp/fault-suite/` so CI can upload it as an
//! artifact. Override the storm seed with `UNIKV_FAULT_SEED`.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unikv::{HealthState, UniKv, UniKvOptions};
use unikv_env::fault::{FaultAction, FaultInjectionEnv, FaultOp, FaultPlan, FaultRule};
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_workload::{format_key, make_value};

const OPS: u64 = 2600;
const KEY_SPACE: u64 = 1500;
const VALUE_LEN: usize = 120;

/// Last *acknowledged* state per key. `None` = acked delete.
type Model = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

fn opts(background_jobs: usize) -> UniKvOptions {
    UniKvOptions {
        sync_writes: true, // an acked op is a durable op
        background_jobs,
        ..UniKvOptions::small_for_tests()
    }
}

fn reopen_opts() -> UniKvOptions {
    UniKvOptions {
        paranoid_checks: true,
        ..opts(0)
    }
}

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn seed_from_env(default: u64) -> u64 {
    std::env::var("UNIKV_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn stat(db: &UniKv, name: &str) -> u64 {
    db.stats()
        .snapshot()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("unknown stat {name}"))
}

/// Persist the failing plan for CI artifact upload, then panic.
fn fail_with_plan(scenario: &str, seed: u64, fault: &FaultInjectionEnv, msg: String) -> ! {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fault-suite");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("failing-plan-{scenario}-{seed}.txt"));
    let body = format!(
        "scenario: {scenario}\nseed: {seed}\nfailure: {msg}\nfault events:\n{}\n",
        fault.fault_events().join("\n")
    );
    let _ = std::fs::write(&path, body);
    panic!("{msg} (fault plan saved to {})", path.display());
}

/// A seeded storm of *transient* faults: a bounded number of failures on
/// table/value-log appends (the first ENOSPC-tagged, exercising the
/// ReadOnly watchdog) and on syncs anywhere (WAL, build files, META
/// temp), after which every operation succeeds again.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(
            FaultRule::fail_times(FaultOp::Append, 2 + seed % 4)
                .on_path(".sst")
                .error_kind(std::io::ErrorKind::StorageFull),
        )
        .rule(FaultRule::fail_times(FaultOp::Append, 2 + (seed >> 4) % 4).on_path(".vlog"))
        .rule(FaultRule::fail_times(FaultOp::Sync, 2 + (seed >> 8) % 4))
}

/// Run the fixed workload, tolerating write failures (the storm). Acked
/// ops go into the model; failed ops mark their key *dirty* — the failed
/// attempt never reaches the memtable, so the live state still matches
/// the model, but its WAL bytes may survive a crash if a later sync
/// persists them, so crash-recovery checks must skip dirty keys.
/// Returns `(model, dirty, worst health observed)`.
fn run_storm_workload(db: &UniKv, seed: u64) -> (Model, HashSet<Vec<u8>>, HealthState) {
    let mut model = Model::new();
    let mut dirty: HashSet<Vec<u8>> = HashSet::new();
    let mut worst = HealthState::Healthy;
    let mut s = seed;
    for i in 0..OPS {
        s = lcg(s);
        let k = format_key(s % KEY_SPACE);
        let delete = s.is_multiple_of(11);
        let outcome = if delete {
            db.delete(&k)
        } else {
            db.put(&k, &make_value(i, seed, VALUE_LEN))
        };
        match outcome {
            Ok(()) => {
                let v = if delete {
                    None
                } else {
                    Some(make_value(i, seed, VALUE_LEN))
                };
                model.insert(k, v);
                dirty.remove(&format_key(s % KEY_SPACE));
            }
            Err(_) => {
                dirty.insert(k);
            }
        }
        let h = db.health();
        worst = worst.max(h);
        assert_ne!(
            h,
            HealthState::Poisoned,
            "transient storm poisoned the database at op {i}: {:?}",
            db.background_error()
        );
    }
    (model, dirty, worst)
}

/// Poll until the database reports Healthy (quarantine probes fire on
/// their own schedule, so this can take a few probe intervals).
fn wait_healthy(db: &UniKv, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if db.health() == HealthState::Healthy {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    db.health() == HealthState::Healthy
}

/// Strict live check: every acked op must be visible exactly as acked
/// (a failed op never reaches the memtable, so even dirty keys must
/// still show their last acked state while the database is live).
fn check_live(db: &UniKv, model: &Model) -> Result<(), String> {
    for (k, expect) in model {
        let got = db
            .get(k)
            .map_err(|e| format!("get {:?}: {e}", String::from_utf8_lossy(k)))?;
        if got.as_ref() != expect.as_ref() {
            return Err(format!(
                "key {} diverged live: got {:?}, expected {:?}",
                String::from_utf8_lossy(k),
                got.map(|v| v.len()),
                expect.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// Crash-recovery check: like [`check_live`] but via a paranoid reopen,
/// skipping dirty keys (failed ops may leave replayable WAL bytes).
fn check_recovery(
    env: Arc<FaultInjectionEnv>,
    model: &Model,
    dirty: &HashSet<Vec<u8>>,
) -> Result<(), String> {
    let db = UniKv::open(env as Arc<dyn Env>, "/db", reopen_opts())
        .map_err(|e| format!("recovery open failed: {e}"))?;
    for (k, expect) in model {
        if dirty.contains(k) {
            continue;
        }
        let got = db
            .get(k)
            .map_err(|e| format!("get {:?}: {e}", String::from_utf8_lossy(k)))?;
        if got.as_ref() != expect.as_ref() {
            return Err(format!(
                "key {} diverged after recovery: got {:?}, expected {:?}",
                String::from_utf8_lossy(k),
                got.map(|v| v.len()),
                expect.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// The acceptance scenario: a scripted transient storm on sync/append
/// during flush+merge+GC degrades the database (Degraded, and ReadOnly
/// via the ENOSPC-tagged rule) but never poisons it; once the storm
/// clears it returns to Healthy on its own, with zero lost acked writes
/// and zero resurrected deletes — live and across a crash.
#[test]
fn transient_storm_degrades_then_heals_with_no_lost_writes() {
    let seed = seed_from_env(0x570_12A1);
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let (model, dirty) = {
        let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(2)).unwrap();
        fault.set_plan(storm_plan(seed));
        let (model, dirty, worst) = run_storm_workload(&db, seed);
        db.wait_for_background();
        assert_eq!(db.background_error(), None, "storm poisoned the database");
        assert!(
            stat(&db, "maint_job_retries") > 0,
            "storm never made a job retry (plan did not bite)"
        );
        assert!(
            worst >= HealthState::Degraded,
            "storm never degraded health"
        );
        // The storm is bounded (fail_times): quarantine probes and retries
        // must bring the database back to Healthy without intervention.
        if !wait_healthy(&db, Duration::from_secs(30)) {
            fail_with_plan(
                "transient-storm",
                seed,
                &fault,
                format!("database stuck in {:?} after storm cleared", db.health()),
            );
        }
        assert!(stat(&db, "health_transitions") >= 2);
        assert_eq!(stat(&db, "maint_jobs_failed"), 0, "fatal failure counted");
        // Writes work again, and every acked op is intact.
        db.put(b"post-storm", b"ok").unwrap();
        if let Err(msg) = check_live(&db, &model) {
            fail_with_plan("transient-storm", seed, &fault, msg);
        }
        (model, dirty)
    };
    fault.clear_plan();
    fault.crash().unwrap();
    if let Err(msg) = check_recovery(fault.clone(), &model, &dirty) {
        fail_with_plan("transient-storm", seed, &fault, msg);
    }
}

/// Crash while the storm is still raging (health Degraded/ReadOnly):
/// recovery must still satisfy the model for every acked op.
#[test]
fn crash_mid_storm_recovers_every_acked_write() {
    let seed = lcg(seed_from_env(0x570_12A2));
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let (model, dirty) = {
        let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(2)).unwrap();
        // A longer storm than the workload, so faults are still armed
        // (and jobs still retrying) when the crash hits.
        fault.set_plan(
            FaultPlan::new(seed)
                .rule(FaultRule::fail_times(FaultOp::Append, 64).on_path(".sst"))
                .rule(FaultRule::fail_times(FaultOp::Sync, 8 + seed % 8)),
        );
        let (model, dirty, _) = run_storm_workload(&db, seed);
        (model, dirty)
        // Drop mid-storm: workers abandon queued/backoff jobs.
    };
    fault.clear_plan();
    fault.crash().unwrap();
    if let Err(msg) = check_recovery(fault.clone(), &model, &dirty) {
        fail_with_plan("crash-mid-storm", seed, &fault, msg);
    }
}

/// Sticky ENOSPC on table builds: the database must go ReadOnly (typed
/// write rejections, reads/scans still serving) and recover to Healthy
/// on its own once space "frees", losing nothing.
#[test]
fn storage_full_goes_read_only_then_recovers() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(1)).unwrap();
    fault.set_plan(
        FaultPlan::new(1).rule(
            FaultRule::new(FaultOp::Append, FaultAction::Fail)
                .on_path(".sst")
                .sticky()
                .error_kind(std::io::ErrorKind::StorageFull),
        ),
    );

    // Ingest until the stuck flush turns the database read-only.
    let mut acked: Vec<u64> = Vec::new();
    let mut read_only_err = None;
    for i in 0..50_000u64 {
        match db.put(&format_key(i), &make_value(i, 7, VALUE_LEN)) {
            Ok(()) => acked.push(i),
            Err(e) => {
                assert!(e.is_read_only(), "expected ReadOnly rejection, got: {e}");
                read_only_err = Some(e);
                break;
            }
        }
    }
    let err = read_only_err.expect("ENOSPC flush never drove the database read-only");
    assert!(
        err.to_string().contains("read-only"),
        "untyped error: {err}"
    );
    assert_eq!(db.health(), HealthState::ReadOnly);
    assert!(stat(&db, "maint_job_retries") > 0);
    assert_eq!(db.background_error(), None, "ENOSPC must not poison");

    // Reads and scans keep serving under ReadOnly.
    let probe = acked[acked.len() / 2];
    assert_eq!(
        db.get(&format_key(probe)).unwrap(),
        Some(make_value(probe, 7, VALUE_LEN))
    );
    assert!(!db.scan(&format_key(0), 10).unwrap().is_empty());

    // Space frees → retries (or quarantine probes) succeed → Healthy.
    fault.clear_plan();
    assert!(
        wait_healthy(&db, Duration::from_secs(30)),
        "database stuck in {:?} after ENOSPC cleared",
        db.health()
    );
    db.put(b"post-enospc", b"ok").unwrap();
    for &i in &acked {
        assert_eq!(
            db.get(&format_key(i)).unwrap(),
            Some(make_value(i, 7, VALUE_LEN)),
            "acked key {i} lost across the ReadOnly episode"
        );
    }
}

/// The preserved fail-stop path: a *permanent* failure of the atomic META
/// commit still poisons the database with a typed error.
#[test]
fn permanent_commit_failure_still_poisons() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(1)).unwrap();

    let mut i = 0u64;
    let mut poisoned = false;
    'rounds: for _ in 0..50 {
        fault.clear_plan();
        // Write until a fresh background job is enqueued, then fail every
        // META commit rename while it is (or its successor is) in flight.
        let scheduled = stat(&db, "maint_jobs_scheduled");
        loop {
            match db.put(&format_key(i), &make_value(i, 3, VALUE_LEN)) {
                Ok(()) => {}
                Err(_) => {
                    fault.clear_plan();
                    continue;
                }
            }
            i += 1;
            if stat(&db, "maint_jobs_scheduled") > scheduled {
                break;
            }
        }
        fault.set_plan(
            FaultPlan::new(2).rule(
                FaultRule::new(FaultOp::Rename, FaultAction::Fail)
                    .on_path("META")
                    .sticky(),
            ),
        );
        db.wait_for_background();
        if db.background_error().is_some() {
            poisoned = true;
            break 'rounds;
        }
    }
    assert!(poisoned, "permanent META-commit failures never poisoned");
    fault.clear_plan();

    assert_eq!(db.health(), HealthState::Poisoned);
    assert!(stat(&db, "maint_jobs_failed") >= 1);
    let err = db.put(b"after", b"x").unwrap_err().to_string();
    assert!(err.contains("poisoned"), "unexpected error: {err}");
    let report = db.health_report();
    assert!(report.background_error.unwrap().contains("META"));
    // Reads still serve committed data.
    db.get(&format_key(0)).unwrap();
    db.scan(&format_key(0), 10).unwrap();
}

/// Satellite bugfix: dropping the database while a worker's job sits in a
/// long backoff must not wait out the backoff — shutdown interrupts it.
#[test]
fn shutdown_interrupts_backoff_and_joins_promptly() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let mut o = opts(1);
    o.maint_retry_base_ms = 600_000; // 10 minutes
    o.maint_retry_max_ms = 1_200_000;
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", o).unwrap();
    fault.set_plan(
        FaultPlan::new(3).rule(FaultRule::fail_times(FaultOp::Append, u64::MAX).on_path(".sst")),
    );
    // Ingest until the first flush fails transiently and parks in backoff.
    let mut i = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while stat(&db, "maint_job_retries") == 0 {
        assert!(Instant::now() < deadline, "flush never entered retry");
        match db.put(&format_key(i), &make_value(i, 5, VALUE_LEN)) {
            Ok(()) => i += 1,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let start = Instant::now();
    drop(db);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "drop waited {:?} — shutdown did not interrupt the backoff",
        start.elapsed()
    );
}

/// The injectable maintenance clock: with hour-long backoffs, advancing
/// the clock manually lets the retry schedule elapse without sleeping.
#[test]
fn manual_clock_drives_retry_schedule_without_sleeping() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let mut o = opts(1);
    o.maint_retry_base_ms = 3_600_000; // 1 hour
    o.maint_retry_max_ms = 7_200_000;
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", o).unwrap();
    let clock = Arc::new(AtomicU64::new(0));
    let c = clock.clone();
    db.set_maintenance_clock(Some(Arc::new(move || c.load(Ordering::SeqCst))));

    // Exactly one transient failure: the first flush attempt fails, its
    // retry is scheduled ~an hour of scheduler time out.
    fault.set_plan(
        FaultPlan::new(4).rule(FaultRule::fail_times(FaultOp::Append, 1).on_path(".sst")),
    );
    let mut i = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while stat(&db, "maint_job_retries") == 0 {
        assert!(Instant::now() < deadline, "flush never entered retry");
        match db.put(&format_key(i), &make_value(i, 9, VALUE_LEN)) {
            Ok(()) => i += 1,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert_eq!(db.health(), HealthState::Degraded);

    // Jump the scheduler clock past the backoff deadline: the retry runs
    // (the fault already exhausted) and the database heals — in real
    // milliseconds, not scheduler hours.
    clock.store(8_000_000, Ordering::SeqCst);
    assert!(
        wait_healthy(&db, Duration::from_secs(30)),
        "retry never ran after the clock advanced (health {:?})",
        db.health()
    );
    assert!(stat(&db, "flushes") > 0);
    assert!(stat(&db, "time_degraded_ms") > 0);
    for j in 0..i {
        assert_eq!(
            db.get(&format_key(j)).unwrap(),
            Some(make_value(j, 9, VALUE_LEN))
        );
    }
}
