//! Deterministic tests for the observability layer: with a manual metrics
//! clock every latency sample is an exact, scripted value, so bucket
//! counts and quantiles are asserted exactly — no tolerance windows — and
//! two identical runs must produce byte-identical machine reports.

use std::sync::Arc;
use unikv::{manual_step_clock, TraceOutcome, UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;

fn key(i: u32) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn value(i: u32, len: usize) -> Vec<u8> {
    let unit = format!("value-{i}-").into_bytes();
    let reps = len / unit.len() + 2;
    unit.repeat(reps)[..len].to_vec()
}

/// Default (large-buffer) options: the scripted workloads below never
/// trigger a flush mid-write, so every op reads the clock exactly twice.
fn quiet_opts() -> UniKvOptions {
    UniKvOptions::default()
}

/// A scripted workload whose per-op clock reads are exactly two: with a
/// step-7 manual clock every get/put/scan observes a duration of exactly
/// 7 us, which lands in bucket [4,7] — so bucket counts AND quantiles are
/// exact.
#[test]
fn manual_clock_yields_exact_buckets_and_quantiles() {
    const STEP: u64 = 7;
    const PUTS: u64 = 40;
    const GETS: u64 = 25;
    const SCANS: u64 = 3;

    let db = UniKv::open(MemEnv::shared(), "/db", quiet_opts()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(STEP)));

    for i in 0..PUTS as u32 {
        db.put(&key(i), &value(i, 32)).unwrap();
    }
    for i in 0..GETS as u32 {
        db.get(&key(i % 50)).unwrap();
    }
    for _ in 0..SCANS {
        db.scan(b"user", 10).unwrap();
    }

    let snap = db.metrics_snapshot();
    let put = &snap.histograms["put_latency_us"];
    let get = &snap.histograms["get_latency_us"];
    let scan = &snap.histograms["scan_latency_us"];

    // Histogram sample counts equal op counts exactly.
    assert_eq!(put.count, PUTS);
    assert_eq!(get.count, GETS);
    assert_eq!(scan.count, SCANS);

    // Every duration is exactly STEP: one bucket holds everything.
    // bucket_index(7) = 3 (range [4,7]).
    assert_eq!(put.buckets[3], PUTS);
    assert_eq!(put.buckets.iter().sum::<u64>(), PUTS);
    assert_eq!(get.buckets[3], GETS);

    // Quantiles are exact, not approximate: upper bound of bucket 3 is 7
    // and the recorded max is 7.
    for h in [put, get, scan] {
        assert_eq!(h.quantile(0.50), STEP);
        assert_eq!(h.quantile(0.95), STEP);
        assert_eq!(h.quantile(0.99), STEP);
        assert_eq!(h.max, STEP);
        assert_eq!(h.sum, STEP * h.count);
    }

    // Tier accounting: every read is a memtable hit (nothing flushed).
    assert_eq!(snap.counters["reads"], GETS);
    assert_eq!(snap.counters["reads_hit_memtable"], GETS);
    assert_eq!(snap.counters["reads_miss"], 0);
    assert_eq!(snap.counters["writes"], PUTS);
    assert_eq!(snap.counters["scans"], SCANS);
    assert_eq!(snap.counters["scan_items"], SCANS * 10);
}

/// The same seeded workload run twice from scratch produces byte-identical
/// machine reports: the deterministic-metrics contract the test suite
/// locks down.
#[test]
fn two_runs_are_byte_identical() {
    let run = || -> String {
        let db = UniKv::open(MemEnv::shared(), "/db", quiet_opts()).unwrap();
        db.set_metrics_clock(Some(manual_step_clock(5)));
        for i in 0..60u32 {
            db.put(&key(i), &value(i, 48)).unwrap();
        }
        db.flush().unwrap();
        for i in 0..80u32 {
            db.get(&key(i)).unwrap(); // 60 hits + 20 misses
        }
        db.scan(b"user", 25).unwrap();
        db.metrics_report_machine()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "metrics must be reproducible across identical runs");
    assert!(a.contains("get_latency_us"));
    assert!(a.contains("flush_latency_us"));
}

/// Registry snapshot merge is associative and commutative — the property
/// that makes per-partition (or per-database) metrics foldable into one
/// report in any order.
#[test]
fn snapshot_merge_is_associative_across_databases() {
    let mk = |keys: std::ops::Range<u32>| {
        let db = UniKv::open(MemEnv::shared(), "/db", quiet_opts()).unwrap();
        db.set_metrics_clock(Some(manual_step_clock(3)));
        for i in keys.clone() {
            db.put(&key(i), b"v").unwrap();
        }
        for i in keys {
            db.get(&key(i)).unwrap();
        }
        db.metrics_snapshot()
    };
    let (a, b, c) = (mk(0..10), mk(10..25), mk(25..27));

    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc);

    let mut ba = b.clone();
    ba.merge(&a);
    let mut ab = a.clone();
    ab.merge(&b);
    assert_eq!(ab, ba);

    assert_eq!(ab_c.counters["reads"], 27);
    assert_eq!(ab_c.histograms["get_latency_us"].count, 27);
}

/// `reset()` zeroes every family and clears the trace, but the families
/// stay registered (their names remain enumerable for reports).
#[test]
fn reset_empties_but_keeps_families() {
    let db = UniKv::open(MemEnv::shared(), "/db", quiet_opts()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(2)));
    for i in 0..20u32 {
        db.put(&key(i), b"v").unwrap();
    }
    db.get(&key(3)).unwrap();
    let families_before = db.metrics().registry.family_names();
    assert!(!db.metrics().registry.trace().is_empty());

    db.reset_metrics();

    let snap = db.metrics_snapshot();
    assert!(snap.counters.values().all(|v| *v == 0));
    assert!(snap.gauges.values().all(|v| *v == 0));
    assert!(snap.histograms.values().all(|h| h.is_empty()));
    assert!(db.metrics().registry.trace().is_empty());
    assert_eq!(db.metrics().registry.trace().dropped(), 0);
    assert_eq!(db.metrics().registry.family_names(), families_before);

    // Recording still works after a reset.
    db.put(&key(99), b"v").unwrap();
    assert_eq!(db.metrics_snapshot().counters["writes"], 1);
}

/// The op-trace ring is bounded: it retains at most the configured number
/// of events (newest last), counts what it dropped, and event timestamps
/// are non-decreasing under the manual clock.
#[test]
fn trace_ring_is_bounded_and_ordered() {
    let opts = UniKvOptions {
        metrics_trace_events: 8,
        ..quiet_opts()
    };
    let db = UniKv::open(MemEnv::shared(), "/db", opts).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(1)));
    for i in 0..100u32 {
        db.put(&key(i), b"v").unwrap();
    }
    let trace = db.metrics().registry.trace();
    assert_eq!(trace.capacity(), 8);
    assert_eq!(trace.len(), 8);
    assert_eq!(trace.dropped(), 92);
    let events = trace.events();
    for w in events.windows(2) {
        assert!(w[0].at_micros <= w[1].at_micros);
    }
    // The retained tail is the newest 8 puts.
    assert!(events.iter().all(|e| e.dur_micros == 1));
}

/// Satellite: the overhead guard. The same seeded workload with metrics
/// disabled returns identical user-visible results, and the disabled
/// registry records nothing at all — counters stay zero, histograms stay
/// empty, the trace ring stays off, and the clock reads as zero (the
/// disabled fast path never takes a timestamp).
#[test]
fn disabled_metrics_change_nothing_and_record_nothing() {
    let run = |enable: bool| {
        let opts = UniKvOptions {
            enable_metrics: enable,
            ..UniKvOptions::small_for_tests()
        };
        let db = UniKv::open(MemEnv::shared(), "/db", opts).unwrap();
        let mut rng: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let mut observed = Vec::new();
        for _ in 0..3000 {
            let k = key(next(300) as u32);
            match next(8) {
                0 => db.delete(&k).unwrap(),
                1..=4 => db.put(&k, &value(next(1000) as u32, 64)).unwrap(),
                5 => observed.push((k.clone(), db.get(&k).unwrap())),
                _ => observed.push((
                    k.clone(),
                    Some(
                        db.scan(&k, 5)
                            .unwrap()
                            .into_iter()
                            .flat_map(|it| it.key)
                            .collect(),
                    ),
                )),
            }
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        (observed, db)
    };

    let (enabled_results, enabled_db) = run(true);
    let (disabled_results, disabled_db) = run(false);

    // Identical user-visible behaviour.
    assert_eq!(enabled_results, disabled_results);

    // The enabled run recorded real work...
    let on = enabled_db.metrics_snapshot();
    assert!(on.counters["writes"] > 0);
    assert!(on.histograms["get_latency_us"].count > 0);
    assert!(on.counters["wal_records"] > 0);

    // ...the disabled run recorded nothing anywhere.
    let off = disabled_db.metrics_snapshot();
    assert!(off.counters.values().all(|v| *v == 0));
    assert!(off.gauges.values().all(|v| *v == 0));
    assert!(off.histograms.values().all(|h| h.is_empty()));
    assert_eq!(disabled_db.metrics().registry.trace().capacity(), 0);
    assert!(disabled_db.metrics().registry.trace().is_empty());
    assert_eq!(disabled_db.metrics().registry.now_micros(), 0);
    // Families stay enumerable even when disabled, so reports keep their
    // shape across configurations.
    assert_eq!(
        enabled_db.metrics().registry.family_names(),
        disabled_db.metrics().registry.family_names()
    );
}

/// Histogram sample counts equal op counts even when the workload drives
/// real maintenance (flushes, merges, GC, splits) with background jobs
/// disabled — the acceptance invariant for the whole layer.
#[test]
fn histogram_counts_match_op_counts_under_maintenance() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    let (mut puts, mut dels, mut gets, mut scans) = (0u64, 0u64, 0u64, 0u64);
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };
    for _ in 0..10_000 {
        let k = key(next(1200) as u32);
        match next(10) {
            0 => {
                db.delete(&k).unwrap();
                dels += 1;
            }
            1..=6 => {
                db.put(&k, &value(next(1000) as u32, 120)).unwrap();
                puts += 1;
            }
            7..=8 => {
                db.get(&k).unwrap();
                gets += 1;
            }
            _ => {
                db.scan(&k, 4).unwrap();
                scans += 1;
            }
        }
    }
    db.force_gc().unwrap();

    let snap = db.metrics_snapshot();
    let stats: std::collections::HashMap<_, _> = db.stats().snapshot().into_iter().collect();

    assert_eq!(snap.histograms["put_latency_us"].count, puts + dels);
    assert_eq!(snap.counters["writes"], puts + dels);
    assert_eq!(snap.histograms["get_latency_us"].count, gets);
    assert_eq!(snap.counters["reads"], gets);
    assert_eq!(snap.histograms["scan_latency_us"].count, scans);
    assert_eq!(snap.counters["scans"], scans);

    // The tier-resolution counters partition `reads` exactly.
    assert_eq!(
        snap.counters["reads"],
        snap.counters["reads_hit_memtable"]
            + snap.counters["reads_hit_unsorted"]
            + snap.counters["reads_hit_sorted"]
            + snap.counters["reads_miss"]
    );
    // Vlog-resolved reads are a subset of sorted-tier hits.
    assert!(snap.counters["reads_vlog_resolved"] <= snap.counters["reads_hit_sorted"]);

    // Maintenance histograms agree with the engine's own work counters.
    assert_eq!(snap.histograms["flush_latency_us"].count, stats["flushes"]);
    assert_eq!(
        snap.histograms["merge_latency_us"].count,
        stats["merges"] + stats["scan_merges"]
    );
    assert_eq!(snap.histograms["gc_latency_us"].count, stats["gcs"]);
    assert_eq!(snap.histograms["split_latency_us"].count, stats["splits"]);
    // This workload is sized to make every maintenance kind fire at least
    // once, so the assertions above are not vacuous.
    assert!(stats["flushes"] > 0);
    assert!(stats["merges"] + stats["scan_merges"] > 0);
    assert!(stats["gcs"] > 0);
    assert!(stats["splits"] > 0);
}

/// KV separation surfaces in the tier counters: after a merge moves
/// values into the value log, point reads resolve through pointers and
/// count as vlog-resolved sorted hits.
#[test]
fn vlog_resolution_is_visible_in_tier_counters() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    for i in 0..40u32 {
        db.put(&key(i), &value(i, 200)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    db.reset_metrics();

    for i in 0..40u32 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 200)));
    }
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counters["reads"], 40);
    assert_eq!(snap.counters["reads_hit_sorted"], 40);
    assert_eq!(snap.counters["reads_vlog_resolved"], 40);
    assert_eq!(snap.counters["reads_miss"], 0);

    // The op trace saw the same story.
    let events = db.metrics().registry.trace().events();
    assert!(events
        .iter()
        .filter(|e| matches!(e.op, unikv::TraceOp::Get))
        .all(|e| e.outcome == TraceOutcome::Vlog));
}

/// The machine report covers every registered family — the same check the
/// CI smoke run performs via `mixed_workload --metrics`.
#[test]
fn machine_report_covers_every_family() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    for i in 0..50u32 {
        db.put(&key(i), &value(i, 64)).unwrap();
    }
    db.flush().unwrap();
    db.get(&key(1)).unwrap();
    db.scan(b"user", 5).unwrap();

    let report = db.metrics_report_machine();
    for family in db.metrics().registry.family_names() {
        assert!(
            report
                .lines()
                .any(|l| l.split('\t').nth(1) == Some(family.as_str())),
            "family {family} missing from machine report"
        );
    }
    // And the human report names the headline sections.
    let text = db.metrics_report();
    for needle in ["== counters ==", "== histograms (us) ==", "== trace ("] {
        assert!(text.contains(needle), "report missing {needle}");
    }
}

/// Batch writes record one batch sample plus per-op write counts, and do
/// not pollute the put-latency histogram (its count keeps matching the
/// number of put/delete calls).
#[test]
fn write_batch_accounting() {
    let db = UniKv::open(MemEnv::shared(), "/db", quiet_opts()).unwrap();
    db.set_metrics_clock(Some(manual_step_clock(4)));
    let mut batch = unikv::WriteBatch::new();
    for i in 0..10u32 {
        batch.put(key(i), b"v".to_vec());
    }
    db.write_batch(&batch).unwrap();
    db.put(&key(100), b"v").unwrap();

    let snap = db.metrics_snapshot();
    assert_eq!(snap.counters["writes"], 11);
    assert_eq!(snap.counters["batch_ops"], 10);
    assert_eq!(snap.histograms["batch_latency_us"].count, 1);
    assert_eq!(snap.histograms["put_latency_us"].count, 1);
}

/// Metrics survive into reopened databases as fresh (zeroed) registries —
/// reopening must not double-count recovery work into user op families.
#[test]
fn reopen_starts_clean_and_counts_recovery_io_only_in_io_families() {
    let env: Arc<MemEnv> = MemEnv::shared();
    {
        let db = UniKv::open(env.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
        for i in 0..200u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
    }
    let db = UniKv::open(env, "/db", UniKvOptions::small_for_tests()).unwrap();
    let snap = db.metrics_snapshot();
    // No user ops yet: op families are zero...
    assert_eq!(snap.counters["reads"], 0);
    assert_eq!(snap.counters["writes"], 0);
    assert_eq!(snap.histograms["get_latency_us"].count, 0);
    // ...while recovery's internal work (WAL replay flush) legitimately
    // shows up in the flush histogram and I/O families.
    assert!(snap.histograms["flush_latency_us"].count > 0);
    assert!(snap.counters.contains_key("sst_block_reads"));
    assert_eq!(db.get(&key(5)).unwrap(), Some(value(5, 64)));
    assert_eq!(db.metrics_snapshot().counters["reads"], 1);
}
