//! Concurrency tests for the background maintenance subsystem:
//! multi-threaded writers/readers/scanners against live background
//! flush/merge/GC/split, read-your-writes, monotonic sequence numbers,
//! write-stall accounting, worker-failure quarantine with self-healing,
//! and clean recovery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unikv::{HealthState, UniKv, UniKvOptions};
use unikv_common::rng::DetRng;
use unikv_env::fault::FaultInjectionEnv;
use unikv_env::mem::MemEnv;

fn bg_opts(jobs: usize) -> UniKvOptions {
    let mut opts = UniKvOptions::small_for_tests();
    opts.background_jobs = jobs;
    opts
}

fn stat(db: &UniKv, name: &str) -> u64 {
    db.stats()
        .snapshot()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("unknown stat {name}"))
}

fn wkey(writer: usize, i: usize) -> Vec<u8> {
    format!("w{writer}k{i:06}").into_bytes()
}

fn wvalue(writer: usize, i: usize, version: usize) -> Vec<u8> {
    format!("w{writer}k{i:06}v{version:04}:{}", "x".repeat(48)).into_bytes()
}

/// N writers + M readers + a scanner + a sequence watcher, all racing
/// background maintenance. Each writer checks read-your-writes on its own
/// disjoint key space; the scanner checks ordering invariants; afterwards
/// the full contents are verified, then verified again after a clean
/// reopen in inline mode.
#[test]
fn stress_mixed_workload_with_background_maintenance() {
    const WRITERS: usize = 4;
    const KEYS_PER_WRITER: usize = 250;
    const ROUNDS: usize = 2;

    let env = MemEnv::shared();
    let db = Arc::new(UniKv::open(env.clone(), "/db", bg_opts(2)).unwrap());
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::seed_from_u64(0xC0FFEE + w as u64);
            for version in 0..ROUNDS {
                for i in 0..KEYS_PER_WRITER {
                    let key = wkey(w, i);
                    db.put(&key, &wvalue(w, i, version)).unwrap();
                    // Read-your-writes: this thread owns the key, so the
                    // freshly written version must be visible regardless
                    // of which tier it currently lives in.
                    let got = db.get(&key).unwrap();
                    assert_eq!(got, Some(wvalue(w, i, version)), "RYW w{w} i{i}");
                    // Occasionally delete and re-insert to exercise
                    // tombstones racing flushes.
                    if rng.next_f64() < 0.05 {
                        db.delete(&key).unwrap();
                        assert_eq!(db.get(&key).unwrap(), None, "RYW-del w{w} i{i}");
                        db.put(&key, &wvalue(w, i, version)).unwrap();
                    }
                }
            }
        }));
    }

    // Readers: any visible value must be well-formed and belong to the
    // key it was read from.
    for r in 0..2 {
        let db = db.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::seed_from_u64(0xBEEF + r as u64);
            while !done.load(Ordering::Relaxed) {
                let w = rng.u64_in(0..WRITERS as u64) as usize;
                let i = rng.u64_in(0..KEYS_PER_WRITER as u64) as usize;
                let key = wkey(w, i);
                if let Some(v) = db.get(&key).unwrap() {
                    assert!(
                        v.starts_with(String::from_utf8(key.clone()).unwrap().as_bytes()),
                        "value for {} does not match its key",
                        String::from_utf8_lossy(&key)
                    );
                }
            }
        }));
    }

    // Scanner: results must be strictly sorted and within range.
    {
        let db = db.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::seed_from_u64(0xFACE);
            while !done.load(Ordering::Relaxed) {
                let w = rng.u64_in(0..WRITERS as u64) as usize;
                let from = wkey(w, rng.u64_in(0..KEYS_PER_WRITER as u64) as usize);
                let items = db.scan(&from, 25).unwrap();
                for pair in items.windows(2) {
                    assert!(pair[0].key < pair[1].key, "scan results out of order");
                }
                for item in &items {
                    assert!(item.key.as_slice() >= from.as_slice());
                }
            }
        }));
    }

    // Sequence watcher: the committed sequence number never goes back.
    {
        let db = db.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let mut last = 0;
            while !done.load(Ordering::Relaxed) {
                let seq = db.last_sequence();
                assert!(seq >= last, "sequence went backwards: {seq} < {last}");
                last = seq;
            }
        }));
    }

    for h in handles.drain(..WRITERS) {
        h.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    db.wait_for_background();
    assert_eq!(db.background_error(), None);
    assert!(
        stat(&db, "maint_jobs_scheduled") > 0,
        "no background jobs ran"
    );
    assert!(stat(&db, "maint_jobs_completed") > 0);
    assert_eq!(stat(&db, "maint_jobs_failed"), 0);
    assert!(stat(&db, "flushes") > 0);

    let verify = |db: &UniKv| {
        for w in 0..WRITERS {
            for i in 0..KEYS_PER_WRITER {
                assert_eq!(
                    db.get(&wkey(w, i)).unwrap(),
                    Some(wvalue(w, i, ROUNDS - 1)),
                    "final value w{w} i{i}"
                );
            }
        }
    };
    verify(&db);

    // Clean recovery: drop (joins workers; queued jobs abandoned) and
    // reopen in inline mode — sealed WALs committed in META are replayed.
    drop(Arc::try_unwrap(db).ok().expect("all clones joined"));
    let db = UniKv::open(env, "/db", UniKvOptions::small_for_tests()).unwrap();
    verify(&db);
}

/// With generous thresholds writes never stall; with a hard-stop
/// threshold of one sealed memtable the stall counters engage.
#[test]
fn stall_counters_track_thresholds() {
    // Thresholds far above what this workload can accumulate: no stalls.
    let mut opts = bg_opts(1);
    opts.slowdown_sealed_memtables = 100;
    opts.stop_sealed_memtables = 200;
    opts.slowdown_unsorted_tables = 1000;
    opts.stop_unsorted_tables = 2000;
    let db = UniKv::open(MemEnv::shared(), "/db", opts).unwrap();
    for i in 0..1500u32 {
        db.put(format!("k{i:06}").as_bytes(), &[7u8; 100]).unwrap();
    }
    db.wait_for_background();
    assert_eq!(db.background_error(), None);
    assert_eq!(stat(&db, "stall_slowdowns"), 0);
    assert_eq!(stat(&db, "stall_stops"), 0);
    assert_eq!(stat(&db, "stall_time_micros"), 0);
    drop(db);

    // One sealed memtable already hard-stops: with a single worker and
    // continuous ingest, writes must brake (and stall time accrues).
    let mut opts = bg_opts(1);
    opts.slowdown_sealed_memtables = 1;
    opts.stop_sealed_memtables = 1;
    let db = UniKv::open(MemEnv::shared(), "/db2", opts).unwrap();
    for i in 0..1500u32 {
        db.put(format!("k{i:06}").as_bytes(), &[7u8; 100]).unwrap();
    }
    db.wait_for_background();
    assert_eq!(db.background_error(), None);
    assert!(
        stat(&db, "stall_stops") > 0,
        "hard-stop threshold of 1 sealed memtable never engaged"
    );
    assert!(stat(&db, "stall_time_micros") > 0);
    // Every write still landed.
    for i in (0..1500u32).step_by(97) {
        assert_eq!(
            db.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(vec![7u8; 100])
        );
    }
}

/// Foreground writes keep completing while merges run in the background
/// (the paper's pain point with inline compaction): no hard stops with
/// default thresholds, yet merges demonstrably happened.
#[test]
fn writes_proceed_while_merges_run() {
    let db = UniKv::open(MemEnv::shared(), "/db", bg_opts(2)).unwrap();
    for i in 0..4000u32 {
        db.put(format!("k{i:06}").as_bytes(), &[3u8; 120]).unwrap();
    }
    db.wait_for_background();
    assert_eq!(db.background_error(), None);
    assert!(
        stat(&db, "merges") + stat(&db, "scan_merges") > 0,
        "no merge ever ran"
    );
    assert!(stat(&db, "flushes") > 0);
    for i in (0..4000u32).step_by(131) {
        assert_eq!(
            db.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(vec![3u8; 120])
        );
    }
}

/// A background job failing permanently (outside the META commit step)
/// no longer poisons the database: the job is quarantined, the stuck
/// flush drives health to ReadOnly — writes fail fast with a typed
/// `Error::ReadOnly` while reads keep serving — and once the fault
/// clears, the quarantine probe re-runs the job and the database heals
/// itself without a reopen.
#[test]
fn worker_failure_quarantines_and_database_self_heals() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let db = UniKv::open(fault.clone(), "/db", bg_opts(1)).unwrap();

    let mut quarantined = false;
    let mut i = 0u32;
    'rounds: for _ in 0..50 {
        fault.clear_failures();
        // Write until a fresh background job is enqueued, then make every
        // append fail while it (or its successor) is still in flight.
        let scheduled = stat(&db, "maint_jobs_scheduled");
        loop {
            match db.put(format!("k{i:06}").as_bytes(), &[9u8; 200]) {
                Err(e) if e.is_read_only() => {
                    // A flush already quarantined in an earlier round.
                    quarantined = true;
                    break 'rounds;
                }
                Err(_) => {
                    // A foreground WAL append caught the injected failure
                    // from a previous round; keep going.
                    fault.clear_failures();
                    continue;
                }
                Ok(()) => {}
            }
            i += 1;
            if stat(&db, "maint_jobs_scheduled") > scheduled {
                break;
            }
        }
        fault.fail_after_appends(0);
        db.wait_for_background();
        if !db.health_report().quarantined.is_empty() {
            quarantined = true;
            break 'rounds;
        }
    }
    assert!(quarantined, "background failures never quarantined a job");

    // Quarantine, not poison: the injected failure is permanent but not a
    // commit-step failure, so the database stays alive.
    assert_eq!(db.background_error(), None);
    assert_eq!(stat(&db, "maint_jobs_failed"), 0);
    assert!(stat(&db, "maint_jobs_quarantined") >= 1);

    // A quarantined flush means sealed memtables cannot drain: ReadOnly.
    // Writes are rejected with the typed error while the fault persists...
    assert_eq!(db.health(), HealthState::ReadOnly);
    let err = db.put(b"after", b"x").unwrap_err();
    assert!(err.is_read_only(), "unexpected error: {err}");
    // ...but reads still serve whatever was committed.
    db.get(b"k000000").unwrap();
    db.scan(b"k", 10).unwrap();

    // Fault clears → the periodic quarantine probe re-runs the flush,
    // which now succeeds, and health recovers on its own.
    fault.clear_failures();
    let deadline = Instant::now() + Duration::from_secs(30);
    while db.health() != HealthState::Healthy && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        db.health(),
        HealthState::Healthy,
        "database did not self-heal"
    );
    assert!(db.health_report().quarantined.is_empty());
    db.put(b"after", b"x").unwrap();
    assert_eq!(db.get(b"after").unwrap(), Some(b"x".to_vec()));
}

/// Crash (power failure) with sealed memtables pending flush: with
/// synced writes, everything acknowledged is recovered by replaying the
/// sealed WALs recorded in META.
#[test]
fn crash_with_sealed_memtables_recovers_from_sealed_wals() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    {
        let mut opts = bg_opts(1);
        opts.sync_writes = true;
        // Keep flushes slow to finish relative to ingest so sealed
        // memtables are routinely outstanding at crash time.
        opts.stop_sealed_memtables = 8;
        opts.slowdown_sealed_memtables = 8;
        let db = UniKv::open(fault.clone(), "/db", opts).unwrap();
        for i in 0..1200u32 {
            db.put(format!("k{i:06}").as_bytes(), &[5u8; 90]).unwrap();
        }
        // Drop joins the workers but does NOT flush: sealed memtables that
        // were still queued exist only in their (synced) sealed WALs.
        drop(db);
    }
    fault.crash().unwrap();
    let db = UniKv::open(fault.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
    for i in 0..1200u32 {
        assert_eq!(
            db.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(vec![5u8; 90]),
            "key {i} lost after crash"
        );
    }
}
