//! Integration tests for the causal event journal and the listener API:
//! chains reconstructed from a real run connect seal → flush → merge → GC,
//! rotation keeps sequence numbers monotonic across database reopens, a
//! panicking listener is caught and counted without poisoning the
//! database, and a damaged journal never fails `UniKv::open`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use unikv::{
    causal_chain, read_events, Event, EventKind, EventListener, UniKv, UniKvOptions, EVENTS_FILE,
    EVENTS_OLD_FILE,
};
use unikv_env::mem::MemEnv;
use unikv_env::Env;

fn key(i: u64) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

fn value(i: u64, len: usize) -> Vec<u8> {
    let unit = format!("value-{i}-").into_bytes();
    let reps = len / unit.len() + 2;
    unit.repeat(reps)[..len].to_vec()
}

fn journal_opts() -> UniKvOptions {
    UniKvOptions {
        enable_event_journal: true,
        ..UniKvOptions::small_for_tests()
    }
}

/// A seeded overwrite-heavy workload sized (like the metrics suite's) so
/// every structural operation — flush, merge or scan-merge, GC, split —
/// fires organically, i.e. with real `cause` links, not via force_gc.
fn drive(db: &UniKv, ops: u64) {
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };
    for _ in 0..ops {
        let k = key(next(1200));
        match next(10) {
            0 => db.delete(&k).unwrap(),
            1..=7 => db.put(&k, &value(next(1000), 120)).unwrap(),
            _ => {
                db.get(&k).unwrap();
            }
        }
    }
}

/// Tentpole acceptance: from a real run's journal, the causal ancestry of
/// a GC reaches back through the merge that triggered it and the flush
/// that triggered the merge, all the way to the seal that froze the
/// memtable — every hop an explicit `cause` link.
#[test]
fn causal_chain_connects_seal_flush_merge_gc() {
    let env = MemEnv::shared();
    let db = UniKv::open(env.clone(), "/db", journal_opts()).unwrap();
    drive(&db, 10_000);
    drop(db);

    let events = read_events(env.as_ref(), std::path::Path::new("/db"));
    assert!(!events.is_empty(), "journal is empty after a 10k-op run");

    // An organically-triggered GC (cause set) must exist in this workload.
    let gc = events
        .iter()
        .find(|e| {
            e.kind == EventKind::GcFinish && {
                let start = events.iter().find(|s| Some(s.seq) == e.cause);
                start.is_some_and(|s| s.cause.is_some())
            }
        })
        .unwrap_or_else(|| panic!("no organically-caused GC in {} events", events.len()));

    let chain = causal_chain(&events, gc.seq);
    assert!(chain.len() >= 6, "chain too short: {chain:?}");
    // Every hop is an explicit cause link.
    for w in chain.windows(2) {
        assert_eq!(w[1].cause, Some(w[0].seq), "disconnected link: {w:?}");
    }
    assert_eq!(chain.first().unwrap().kind, EventKind::Seal);
    assert_eq!(chain.last().unwrap().kind, EventKind::GcFinish);
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::FlushStart));
    assert!(kinds.contains(&EventKind::FlushFinish));
    assert!(
        kinds.contains(&EventKind::MergeFinish) || kinds.contains(&EventKind::ScanMergeFinish),
        "no merge between flush and GC: {kinds:?}"
    );
    assert!(kinds.contains(&EventKind::GcStart));

    // WAL retirement also points back at the flush that made it safe.
    let retired = events
        .iter()
        .find(|e| e.kind == EventKind::WalRetired)
        .expect("no WAL retirement recorded");
    let wal_chain = causal_chain(&events, retired.seq);
    assert_eq!(wal_chain.first().unwrap().kind, EventKind::Seal);
    assert!(wal_chain
        .iter()
        .any(|e| e.kind == EventKind::FlushStart && !e.inputs.is_empty()));

    // Splits fired too, and finish events carry the child partition ids.
    let split = events
        .iter()
        .find(|e| e.kind == EventKind::SplitFinish)
        .expect("workload never split a partition");
    assert_eq!(split.outputs.len(), 2);
}

/// Rotation: a byte-capped journal rolls to `EVENTS.old`, seq numbers stay
/// strictly monotonic across the rotation, and a reopened database keeps
/// numbering after the highest surviving seq.
#[test]
fn rotation_keeps_seq_monotonic_across_reopen() {
    let env = MemEnv::shared();
    let opts = UniKvOptions {
        event_journal_max_bytes: 1024,
        ..journal_opts()
    };
    {
        let db = UniKv::open(env.clone(), "/db", opts.clone()).unwrap();
        drive(&db, 4000);
    }
    assert!(
        env.file_exists(std::path::Path::new("/db/EVENTS.old")),
        "cap of 1 KiB never rotated"
    );
    let before = read_events(env.as_ref(), std::path::Path::new("/db"));
    let max_before = before.last().unwrap().seq;
    for w in before.windows(2) {
        assert!(w[0].seq < w[1].seq, "seq not monotonic: {w:?}");
    }

    // Reopen and force one more flush: new events continue the numbering.
    {
        let db = UniKv::open(env.clone(), "/db", opts).unwrap();
        for i in 0..50 {
            db.put(&key(90_000 + i), &value(i, 120)).unwrap();
        }
        db.flush().unwrap();
    }
    let after = read_events(env.as_ref(), std::path::Path::new("/db"));
    assert!(after.last().unwrap().seq > max_before);
    for w in after.windows(2) {
        assert!(w[0].seq < w[1].seq, "seq regressed after reopen: {w:?}");
    }
}

/// A listener that panics on the first event it sees.
struct Panicky(AtomicBool);
impl EventListener for Panicky {
    fn on_event(&self, _: &Event) {
        if !self.0.swap(true, Ordering::SeqCst) {
            panic!("listener boom");
        }
    }
}

/// A listener that records the kinds it observes.
struct Collect(Mutex<Vec<EventKind>>);
impl EventListener for Collect {
    fn on_event(&self, e: &Event) {
        self.0.lock().unwrap().push(e.kind);
    }
}

/// Listener contract: a panicking listener is caught and counted; other
/// listeners (and the journal) still run, and the database keeps serving
/// reads and writes afterwards — no poisoned locks, no failed ops.
#[test]
fn listener_panic_is_caught_counted_and_does_not_poison() {
    let env = MemEnv::shared();
    let collector = Arc::new(Collect(Mutex::new(Vec::new())));
    let mut opts = journal_opts();
    opts.listeners
        .push(Arc::new(Panicky(AtomicBool::new(false))));
    opts.listeners.push(collector.clone());

    let db = UniKv::open(env.clone(), "/db", opts).unwrap();
    for i in 0..400 {
        db.put(&key(i), &value(i, 120)).unwrap();
    }
    db.flush().unwrap();

    assert_eq!(db.listener_panics(), 1, "panic not caught exactly once");
    let seen = collector.0.lock().unwrap().clone();
    assert!(
        seen.contains(&EventKind::Seal) && seen.contains(&EventKind::FlushFinish),
        "collector behind the panicking listener missed events: {seen:?}"
    );
    // The journal (also a listener) kept writing through the panic.
    let (written, errors) = db.event_journal_stats().expect("journal enabled");
    assert!(written >= seen.len() as u64);
    assert_eq!(errors, 0);

    // Database fully operational after the panic.
    db.put(&key(9999), b"still alive").unwrap();
    assert_eq!(db.get(&key(9999)).unwrap(), Some(b"still alive".to_vec()));
}

/// The journal is advisory: a torn tail is truncated on open, a fully
/// garbage journal is discarded, and neither ever fails `UniKv::open`.
#[test]
fn damaged_journal_never_fails_open() {
    let env = MemEnv::shared();
    {
        let db = UniKv::open(env.clone(), "/db", journal_opts()).unwrap();
        for i in 0..400 {
            db.put(&key(i), &value(i, 120)).unwrap();
        }
        db.flush().unwrap();
    }
    let path = std::path::Path::new("/db").join(EVENTS_FILE);
    let intact = read_events(env.as_ref(), std::path::Path::new("/db"));
    let max_intact = intact.last().unwrap().seq;

    // Torn tail: a half-written line after a crash.
    let mut data = env.read_to_vec(&path).unwrap();
    data.extend_from_slice(b"{\"seq\":999999,\"at_us\":1,\"ki");
    let mut f = env.new_writable(&path).unwrap();
    f.append(&data).unwrap();
    f.flush().unwrap();
    drop(f);
    {
        let db = UniKv::open(env.clone(), "/db", journal_opts()).unwrap();
        db.put(&key(5000), b"x").unwrap();
        db.flush().unwrap();
    }
    let events = read_events(env.as_ref(), std::path::Path::new("/db"));
    assert!(events.iter().all(|e| e.seq != 999_999), "torn event kept");
    assert!(
        events.last().unwrap().seq > max_intact,
        "journal did not resume after the surviving prefix"
    );
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }

    // Total garbage in both generations: open still succeeds and a fresh
    // journal starts.
    for name in [EVENTS_FILE, EVENTS_OLD_FILE] {
        let mut f = env
            .new_writable(&std::path::Path::new("/db").join(name))
            .unwrap();
        f.append(b"\x00\xffnot json at all\x00").unwrap();
        f.flush().unwrap();
    }
    {
        let db = UniKv::open(env.clone(), "/db", journal_opts()).unwrap();
        db.put(&key(5001), b"y").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(&key(5001)).unwrap(), Some(b"y".to_vec()));
    }
    let events = read_events(env.as_ref(), std::path::Path::new("/db"));
    assert!(!events.is_empty(), "fresh journal after garbage is empty");
    assert_eq!(events.first().unwrap().seq, 1, "garbage must reset seq");
}

/// With the journal disabled and no listeners, nothing touches disk: no
/// `EVENTS` file exists and the journal stats report absent.
#[test]
fn disabled_journal_writes_nothing() {
    let env = MemEnv::shared();
    let db = UniKv::open(env.clone(), "/db", UniKvOptions::small_for_tests()).unwrap();
    drive(&db, 3000);
    db.flush().unwrap();
    assert!(db.event_journal_stats().is_none());
    assert_eq!(db.listener_panics(), 0);
    assert!(!env.file_exists(std::path::Path::new("/db").join(EVENTS_FILE).as_path()));
    assert!(!env.file_exists(std::path::Path::new("/db").join(EVENTS_OLD_FILE).as_path()));
}
