//! Property-based model checking: arbitrary operation sequences applied
//! to UniKV must match a `BTreeMap` reference model, across every
//! combination of ablation switches, including after a reopen.

use proptest::prelude::*;
use std::collections::BTreeMap;
use unikv::{UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;

#[derive(Debug, Clone)]
enum ModelOp {
    Put(u16, u8),
    Delete(u16),
    Flush,
    Compact,
    Gc,
    Scan(u16, u8),
}

fn op_strategy() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        8 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| ModelOp::Put(k % 200, v)),
        2 => any::<u16>().prop_map(|k| ModelOp::Delete(k % 200)),
        1 => Just(ModelOp::Flush),
        1 => Just(ModelOp::Compact),
        1 => Just(ModelOp::Gc),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(k, n)| ModelOp::Scan(k % 200, n)),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    format!("value-{k}-{v}-")
        .into_bytes()
        .repeat(1 + v as usize % 4)
}

fn check(ops: &[ModelOp], opts: UniKvOptions) {
    let env = MemEnv::shared();
    let db = UniKv::open(env.clone(), "/db", opts.clone()).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let (mut mutations, mut scans) = (0u64, 0u64);
    for op in ops {
        match op {
            ModelOp::Put(k, v) => {
                db.put(&key(*k), &value(*k, *v)).unwrap();
                model.insert(key(*k), value(*k, *v));
                mutations += 1;
            }
            ModelOp::Delete(k) => {
                db.delete(&key(*k)).unwrap();
                model.remove(&key(*k));
                mutations += 1;
            }
            ModelOp::Flush => db.flush().unwrap(),
            ModelOp::Compact => db.compact_all().unwrap(),
            ModelOp::Gc => db.force_gc().unwrap(),
            ModelOp::Scan(k, n) => {
                scans += 1;
                let got = db.scan(&key(*k), *n as usize).unwrap();
                let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(*k)..)
                    .take(*n as usize)
                    .map(|(a, b)| (a.clone(), b.clone()))
                    .collect();
                assert_eq!(got.len(), expect.len());
                for (g, (ek, ev)) in got.iter().zip(&expect) {
                    assert_eq!(&g.key, ek);
                    assert_eq!(&g.value, ev);
                }
            }
        }
    }
    // Stats counters must never regress: snapshot here, compare after the
    // read-only audit below (which may trigger no maintenance at all).
    let stats_before: BTreeMap<&str, u64> = db.stats().snapshot().into_iter().collect();

    // Final audit: every key agrees, reads and scans.
    for k in 0..200u16 {
        assert_eq!(
            db.get(&key(k)).unwrap(),
            model.get(&key(k)).cloned(),
            "key {k}"
        );
    }
    let all = db.scan(b"", 1000).unwrap();
    assert_eq!(all.len(), model.len());

    let stats_after: BTreeMap<&str, u64> = db.stats().snapshot().into_iter().collect();
    for (name, before) in &stats_before {
        assert!(
            stats_after[name] >= *before,
            "stats counter {name} regressed: {before} -> {}",
            stats_after[name]
        );
    }

    // Metrics invariants hold for every generated op sequence and every
    // ablation combination: tier counters partition `reads`, histogram
    // counts equal op counts, and the trace ring respects its bound.
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counters["writes"], mutations);
    assert_eq!(snap.histograms["put_latency_us"].count, mutations);
    assert_eq!(snap.counters["reads"], 200);
    assert_eq!(snap.histograms["get_latency_us"].count, 200);
    assert_eq!(snap.counters["scans"], scans + 1);
    assert_eq!(snap.histograms["scan_latency_us"].count, scans + 1);
    assert_eq!(
        snap.counters["reads"],
        snap.counters["reads_hit_memtable"]
            + snap.counters["reads_hit_unsorted"]
            + snap.counters["reads_hit_sorted"]
            + snap.counters["reads_miss"]
    );
    let trace = db.metrics().registry.trace();
    assert!(trace.len() <= trace.capacity());

    // Reopen and audit again (recovery path).
    drop(db);
    let db = UniKv::open(env, "/db", opts).unwrap();
    for k in (0..200u16).step_by(7) {
        assert_eq!(
            db.get(&key(k)).unwrap(),
            model.get(&key(k)).cloned(),
            "post-reopen key {k}"
        );
    }
}

// Tiny thresholds so structural operations trigger within short sequences.
fn tiny_opts() -> UniKvOptions {
    UniKvOptions {
        write_buffer_size: 1 << 10,
        table_size: 2 << 10,
        unsorted_limit_bytes: 4 << 10,
        scan_merge_limit: 3,
        partition_size_limit: 16 << 10,
        max_log_size: 4 << 10,
        gc_min_bytes: 4 << 10,
        index_checkpoint_interval: 2,
        value_fetch_threads: 2,
        block_cache_bytes: 64 << 10,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs hundreds of engine ops
        ..ProptestConfig::default()
    })]

    #[test]
    fn prop_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        check(&ops, tiny_opts());
    }

    #[test]
    fn prop_engine_matches_model_under_ablations(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        no_hash in any::<bool>(),
        no_sep in any::<bool>(),
        no_part in any::<bool>(),
        no_scan_opt in any::<bool>(),
    ) {
        let mut opts = tiny_opts();
        opts.enable_hash_index = !no_hash;
        opts.enable_kv_separation = !no_sep;
        opts.enable_partitioning = !no_part;
        opts.enable_scan_optimization = !no_scan_opt;
        check(&ops, opts);
    }
}
