//! Streaming-iterator tests: seek/next semantics, partition crossing,
//! snapshot stability under concurrent mutation, and agreement with
//! materialized scans and a reference model.

use std::collections::BTreeMap;
use unikv::{UniKv, UniKvOptions};
use unikv_env::mem::MemEnv;
use unikv_workload::{format_key, make_value};

fn loaded(n: u32, vs: usize) -> (UniKv, BTreeMap<Vec<u8>, Vec<u8>>) {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    let mut model = BTreeMap::new();
    // Shuffled insert so tiers overlap; some deletes for tombstones.
    let mut s = 0x5a5au64;
    let mut order: Vec<u32> = (0..n).collect();
    for i in (1..order.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    for i in order {
        let k = format_key(i as u64);
        let v = make_value(i as u64, 0, vs);
        db.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    for i in (0..n).step_by(13) {
        let k = format_key(i as u64);
        db.delete(&k).unwrap();
        model.remove(&k);
    }
    (db, model)
}

#[test]
fn iterator_matches_model_full_walk() {
    let (db, model) = loaded(2_000, 80);
    let mut it = db.iter().unwrap();
    it.seek(b"").unwrap();
    for (count, (k, v)) in model.iter().enumerate() {
        assert!(it.valid(), "iterator ended early at {count}");
        assert_eq!(it.key(), &k[..]);
        assert_eq!(it.value(), &v[..]);
        it.next().unwrap();
    }
    assert!(!it.valid(), "iterator has phantom entries");
}

#[test]
fn iterator_seek_matches_model_lower_bound() {
    let (db, model) = loaded(1_500, 60);
    for probe in [0u64, 1, 13, 500, 777, 1_499, 5_000] {
        let from = format_key(probe);
        let mut it = db.iter().unwrap();
        it.seek(&from).unwrap();
        match model.range(from.clone()..).next() {
            Some((k, v)) => {
                assert!(it.valid(), "probe {probe}");
                assert_eq!(it.key(), &k[..], "probe {probe}");
                assert_eq!(it.value(), &v[..], "probe {probe}");
            }
            None => assert!(!it.valid(), "probe {probe}"),
        }
    }
}

#[test]
fn iterator_crosses_partitions() {
    let (db, model) = loaded(4_000, 100);
    assert!(db.partition_count() >= 2, "need splits for this test");
    let mut it = db.iter().unwrap();
    it.seek(&format_key(0)).unwrap();
    let mut walked = 0usize;
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(p) = &prev {
            assert!(p.as_slice() < it.key(), "ordering broke at {walked}");
        }
        prev = Some(it.key().to_vec());
        walked += 1;
        it.next().unwrap();
    }
    assert_eq!(walked, model.len());
}

#[test]
fn iterator_is_a_stable_snapshot() {
    let (db, model) = loaded(1_000, 60);
    let mut it = db.iter().unwrap();
    it.seek(b"").unwrap();
    // Mutate heavily after iterator creation: overwrite everything and
    // force merges/GC/splits.
    for i in 0..1_000u64 {
        db.put(&format_key(i), b"MUTATED-AFTER-SNAPSHOT").unwrap();
    }
    db.compact_all().unwrap();
    db.force_gc().unwrap();
    // The iterator still sees the pre-mutation state.
    for (k, v) in &model {
        assert!(it.valid());
        assert_eq!(it.key(), &k[..]);
        assert_eq!(it.value(), &v[..], "snapshot leaked new data");
        it.next().unwrap();
    }
    assert!(!it.valid());
    // A fresh iterator sees the new state.
    let mut it = db.iter().unwrap();
    it.seek(&format_key(0)).unwrap();
    assert_eq!(it.value(), b"MUTATED-AFTER-SNAPSHOT");
}

#[test]
fn iterator_agrees_with_materialized_scan() {
    let (db, _) = loaded(1_200, 70);
    let from = format_key(300);
    let items = db.scan(&from, 200).unwrap();
    let mut it = db.iter().unwrap();
    it.seek(&from).unwrap();
    for item in &items {
        assert!(it.valid());
        assert_eq!(it.key(), &item.key[..]);
        assert_eq!(it.value(), &item.value[..]);
        it.next().unwrap();
    }
}

#[test]
fn empty_database_iterator() {
    let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::small_for_tests()).unwrap();
    let mut it = db.iter().unwrap();
    it.seek(b"").unwrap();
    assert!(!it.valid());
    it.seek(b"anything").unwrap();
    assert!(!it.valid());
}

#[test]
fn lsm_iterator_basics() {
    use unikv_lsm::{Baseline, LsmDb, LsmOptions};
    let mut o = LsmOptions::baseline(Baseline::LevelDb);
    o.write_buffer_size = 8 << 10;
    o.table_size = 8 << 10;
    let db = LsmDb::open(MemEnv::shared(), "/l", o).unwrap();
    for i in 0..500u64 {
        db.put(&format_key(i), &make_value(i, 0, 50)).unwrap();
    }
    db.delete(&format_key(7)).unwrap();
    let mut it = db.iter().unwrap();
    it.seek(&format_key(5)).unwrap();
    let mut seen = Vec::new();
    while it.valid() && seen.len() < 5 {
        seen.push(it.key().to_vec());
        it.next().unwrap();
    }
    assert_eq!(
        seen,
        vec![
            format_key(5),
            format_key(6),
            format_key(8), // 7 deleted
            format_key(9),
            format_key(10)
        ]
    );
    // Snapshot semantics: writes after iter() are invisible.
    let mut it = db.iter().unwrap();
    db.put(&format_key(9_999), b"new").unwrap();
    it.seek(&format_key(9_000)).unwrap();
    assert!(!it.valid());
}
