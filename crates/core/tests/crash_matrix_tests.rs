//! Crash-everywhere matrix: for every named sync point in the
//! flush/merge/GC/split commit sequences, run a fixed workload, force a
//! crash exactly there, reopen with `paranoid_checks`, and assert the
//! recovered database matches a model — no lost acked writes, no
//! resurrected deletes. Both the inline (`background_jobs = 0`) and the
//! background-worker mode are covered, plus seeded random crash points
//! under background jobs.
//!
//! On failure, the failing fault plan (seed, crash point, injected fault
//! events) is written to `target/tmp/fault-suite/` so CI can upload it
//! as an artifact. Override the random seed with `UNIKV_FAULT_SEED`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use unikv::{UniKv, UniKvOptions, SYNC_POINTS};
use unikv_env::fault::{FaultAction, FaultInjectionEnv, FaultOp, FaultPlan, FaultRule};
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_workload::{format_key, make_value};

const OPS: u64 = 2600;
const KEY_SPACE: u64 = 1500;
const VALUE_LEN: usize = 120;

/// The effects every scenario must preserve across a crash.
type Model = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

fn opts(background_jobs: usize) -> UniKvOptions {
    UniKvOptions {
        sync_writes: true, // an acked op is a durable op
        background_jobs,
        ..UniKvOptions::small_for_tests()
    }
}

fn reopen_opts() -> UniKvOptions {
    UniKvOptions {
        paranoid_checks: true,
        ..opts(0)
    }
}

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

fn seed_from_env(default: u64) -> u64 {
    std::env::var("UNIKV_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Persist the failing plan for CI artifact upload, then panic.
fn fail_with_plan(scenario: &str, seed: u64, fault: &FaultInjectionEnv, msg: String) -> ! {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fault-suite");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("failing-plan-{scenario}-{seed}.txt"));
    let body = format!(
        "scenario: {scenario}\nseed: {seed}\nfailure: {msg}\nfault events:\n{}\n",
        fault.fault_events().join("\n")
    );
    let _ = std::fs::write(&path, body);
    panic!("{msg} (fault plan saved to {})", path.display());
}

/// Run the fixed workload until the first error (the injected crash) or
/// completion. Returns the acked model and the key of the op that was in
/// flight when the crash hit (its state after recovery may be either).
fn run_workload(db: &UniKv, seed: u64) -> (Model, Option<Vec<u8>>) {
    let mut model = Model::new();
    let mut s = seed;
    for i in 0..OPS {
        s = lcg(s);
        let k = format_key(s % KEY_SPACE);
        let delete = s.is_multiple_of(11);
        let outcome = if delete {
            db.delete(&k)
        } else {
            db.put(&k, &make_value(i, seed, VALUE_LEN))
        };
        match outcome {
            Ok(()) => {
                let v = if delete {
                    None
                } else {
                    Some(make_value(i, seed, VALUE_LEN))
                };
                model.insert(k, v);
            }
            Err(_) => return (model, Some(k)),
        }
    }
    (model, None)
}

/// Reopen after the crash and check the model. Returns a description of
/// the first divergence instead of panicking so the caller can attach
/// the fault plan.
fn check_recovery(
    env: Arc<FaultInjectionEnv>,
    model: &Model,
    in_flight: Option<&[u8]>,
) -> Result<(), String> {
    let db = UniKv::open(env as Arc<dyn Env>, "/db", reopen_opts())
        .map_err(|e| format!("recovery open failed: {e}"))?;
    for (k, expect) in model {
        // The op interrupted by the crash was never acked: both its old
        // and its new state are legal. Everything acked must match.
        if in_flight == Some(k.as_slice()) {
            continue;
        }
        let got = db
            .get(k)
            .map_err(|e| format!("get {:?}: {e}", String::from_utf8_lossy(k)))?;
        if got.as_ref() != expect.as_ref() {
            return Err(format!(
                "key {} diverged after recovery: got {:?}, expected {:?}",
                String::from_utf8_lossy(k),
                got.map(|v| v.len()),
                expect.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// Crash at `point` (first hit) in the given mode, then verify recovery.
fn crash_at_point(point: &'static str, background_jobs: usize) {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let fired = Arc::new(AtomicBool::new(false));
    let seed = 0xC0FFEE ^ background_jobs as u64;
    let (model, in_flight) = {
        let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(background_jobs)).unwrap();
        let f = fired.clone();
        db.sync_points().arm(Arc::new(move |name| {
            if name == point && !f.swap(true, Ordering::SeqCst) {
                return Err(unikv_common::Error::internal(format!(
                    "injected crash at {name}"
                )));
            }
            Ok(())
        }));
        let (mut model, in_flight) = run_workload(&db, seed);
        if !fired.load(Ordering::SeqCst) {
            // The workload alone did not reach this operation: drive the
            // remaining structural ops explicitly (errors are the crash).
            let _ = db.flush();
            let _ = db.compact_all();
            let _ = db.force_gc();
            db.wait_for_background();
        }
        db.sync_points().disarm();
        // The abort also models a *transient* failure the engine survives:
        // keep writing and force one more commit, so any half-applied
        // in-memory mutation the aborted operation left behind would be
        // persisted — and caught by the recovery check. (Background mode
        // may be poisoned by the failed job; errors just mean nothing
        // further commits, which is the real-crash case already covered.)
        for i in 0..20u64 {
            let k = format_key(KEY_SPACE + i);
            let v = make_value(i, 99, VALUE_LEN);
            if db.put(&k, &v).is_ok() {
                model.insert(k, Some(v));
            }
        }
        let _ = db.flush();
        (model, in_flight)
    };
    fault.crash().unwrap();
    assert!(
        fired.load(Ordering::SeqCst),
        "sync point {point} never fired with background_jobs={background_jobs}"
    );
    if let Err(msg) = check_recovery(fault.clone(), &model, in_flight.as_deref()) {
        let scenario = format!("point-{}-bg{background_jobs}", point.replace(':', "-"));
        fail_with_plan(&scenario, seed, &fault, format!("[{point}] {msg}"));
    }
}

#[test]
fn crash_matrix_inline_mode_covers_every_sync_point() {
    // Inline flushes use the same seal-then-drain protocol as background
    // mode, so every point — including seal:* — fires in both modes.
    for point in SYNC_POINTS {
        crash_at_point(point, 0);
    }
}

#[test]
fn crash_matrix_background_mode_covers_every_sync_point() {
    for point in SYNC_POINTS {
        crash_at_point(point, 2);
    }
}

/// Seeded random crash points under background jobs: fail the Nth sync()
/// according to a scripted fault plan, crash, and verify recovery. The
/// workload keeps writing through job failures until the engine refuses
/// further writes (poisoned) or the ops run out.
#[test]
fn crash_at_random_seeded_points_under_background_jobs() {
    let base_seed = seed_from_env(0x5EED_0001);
    for round in 0..4u64 {
        let seed = lcg(base_seed.wrapping_add(round));
        let fault = FaultInjectionEnv::new(MemEnv::shared());
        // Fail one seeded sync somewhere in the run; everything after it
        // in that file is volatile and must be discarded by crash().
        fault.set_plan(
            FaultPlan::new(seed)
                .rule(FaultRule::new(FaultOp::Sync, FaultAction::Fail).after(seed % 200)),
        );
        let (model, in_flight) = {
            let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(2)).unwrap();
            let r = run_workload(&db, seed);
            db.wait_for_background();
            r
        };
        fault.clear_plan();
        fault.crash().unwrap();
        if let Err(msg) = check_recovery(fault.clone(), &model, in_flight.as_deref()) {
            fail_with_plan("random-sync-crash", seed, &fault, msg);
        }
    }
}

/// The event journal is advisory even under paranoid recovery: run with
/// the journal on (paranoid, so every event is synced through the fault
/// env), crash, tear the journal's tail with a half-written record, and
/// reopen with `paranoid_checks` + journal still enabled. The open must
/// succeed, every acked write must survive, and the journal must resume
/// with monotonic sequence numbers above the surviving prefix.
#[test]
fn crash_with_torn_event_journal_recovers_and_journal_resumes() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let seed = seed_from_env(0x10E5_CAFE);
    let journal_opts = || UniKvOptions {
        enable_event_journal: true,
        paranoid_checks: true,
        ..opts(0)
    };
    let model = {
        let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", journal_opts()).unwrap();
        let (model, in_flight) = run_workload(&db, seed);
        assert!(in_flight.is_none(), "no faults armed, no op may fail");
        db.flush().unwrap();
        model
    };
    fault.crash().unwrap();

    let path = std::path::Path::new("/db/EVENTS");
    let survived = unikv::read_events(fault.as_ref(), std::path::Path::new("/db"));
    assert!(
        !survived.is_empty(),
        "paranoid journal lost all synced events"
    );
    let max_survived = survived.last().unwrap().seq;
    let mut data = fault.read_to_vec(path).unwrap();
    data.extend_from_slice(b"{\"seq\":424242,\"at_us\":7,\"ki");
    let mut f = fault.new_writable(path).unwrap();
    f.append(&data).unwrap();
    f.flush().unwrap();
    f.sync().unwrap();
    drop(f);

    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", journal_opts()).unwrap();
    for (k, expect) in &model {
        let got = db.get(k).unwrap();
        assert_eq!(
            got.as_ref(),
            expect.as_ref(),
            "key {} diverged after torn-journal recovery",
            String::from_utf8_lossy(k)
        );
    }
    // New events continue past the surviving prefix, torn record dropped.
    db.put(b"post-crash", b"v").unwrap();
    db.flush().unwrap();
    drop(db);
    let events = unikv::read_events(fault.as_ref(), std::path::Path::new("/db"));
    assert!(events.iter().all(|e| e.seq != 424_242), "torn event kept");
    assert!(
        events.last().unwrap().seq > max_survived,
        "journal did not resume after the torn tail"
    );
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "seq not monotonic: {w:?}");
    }
}

/// The matrix must exercise real structural work: with the workload above
/// every job kind runs at least once when no fault is armed.
#[test]
fn workload_reaches_all_structural_operations() {
    let fault = FaultInjectionEnv::new(MemEnv::shared());
    let db = UniKv::open(fault.clone() as Arc<dyn Env>, "/db", opts(0)).unwrap();
    let (_, in_flight) = run_workload(&db, 0xC0FFEE);
    assert!(in_flight.is_none(), "no faults armed, no op may fail");
    db.flush().unwrap();
    db.compact_all().unwrap();
    db.force_gc().unwrap();
    let stats: BTreeMap<String, u64> = db
        .stats()
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    for counter in ["flushes", "merges", "scan_merges", "gcs", "splits"] {
        assert!(
            stats.get(counter).copied().unwrap_or(0) > 0,
            "workload never triggered {counter}: {stats:?}"
        );
    }
}
