#![warn(missing_docs)]

//! # UniKV
//!
//! A persistent key-value store unifying hash indexing and LSM organization
//! — a from-scratch Rust reproduction of *"UniKV: Toward High-Performance
//! and Scalable KV Storage in Mixed Workloads via Unified Indexing"*
//! (ICDE 2020).
//!
//! ## Architecture
//!
//! Data is range-partitioned; each partition has a two-tier layout:
//!
//! * **UnsortedStore** — SSTables appended in flush order, indexed by an
//!   in-memory [two-level hash index](unikv_hashindex) for O(1) point
//!   lookups of recently written (hot) data. No Bloom filters anywhere.
//! * **SortedStore** — a single fully-sorted run with **partial KV
//!   separation**: keys+pointers in SSTables, values in append-only value
//!   logs, so merges move keys, not values.
//!
//! Scalability comes from **dynamic range partitioning**: a partition that
//! exceeds its size limit splits at the median key into two independent
//! partitions (values split lazily during GC), instead of deepening an LSM.
//!
//! ## Quick start
//!
//! ```
//! use unikv::{UniKv, UniKvOptions};
//! use unikv_env::mem::MemEnv;
//!
//! let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
//! db.put(b"city", b"hong kong").unwrap();
//! assert_eq!(db.get(b"city").unwrap(), Some(b"hong kong".to_vec()));
//! let items = db.scan(b"a", 10).unwrap();
//! assert_eq!(items.len(), 1);
//! ```

pub mod batch;
pub mod db;
pub mod fetch;
pub mod iter;
pub mod journal;
pub mod maintenance;
pub mod meta;
pub mod metrics;
pub mod options;
pub mod partition;
pub mod resolver;
pub mod router;
pub mod verify;

pub use batch::WriteBatch;
pub use db::{UniKv, UniKvStats};
pub use fetch::{FetchMetrics, FetchPool};
pub use iter::UniKvIterator;
pub use journal::{read_events, EventJournal, EVENTS_FILE, EVENTS_OLD_FILE};
pub use maintenance::{
    backoff_delay_ms, HealthReport, HealthState, Job, JobKind, MaintClock, QuarantinedJob,
    SyncPointHook, SyncPoints, SYNC_POINTS,
};
pub use metrics::DbMetrics;
pub use options::UniKvOptions;
pub use router::{SizeRouter, SizeRouterOptions};
pub use unikv_common::events::{
    causal_chain, Event, EventBus, EventClock, EventKind, EventListener, Listeners,
};
pub use unikv_common::metrics::{
    manual_step_clock, MetricsClock, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceOp,
    TraceOutcome,
};
pub use unikv_common::perf::{PerfContext, PerfStage, PERF_STAGE_COUNT};
pub use unikv_lsm::db::ScanItem;
pub use verify::{verify_db, FileDamage, VerifyReport};
