//! Persistent database metadata: the partition index and per-partition
//! file inventories, written as one atomic snapshot (`META`) on every
//! structural change.
//!
//! The paper persists partition metadata in a manifest with WAL semantics;
//! at this workspace's scale the metadata is tiny (a few KiB for dozens of
//! partitions), so an atomic whole-snapshot rewrite gives the same crash
//! guarantee — the rename is the commit point of every flush, merge, GC,
//! and split — with far less recovery machinery. Files created before the
//! snapshot lands are orphans that recovery deletes.

use unikv_common::coding::{
    get_length_prefixed_slice, get_varint32, get_varint64, put_fixed32, put_length_prefixed_slice,
    put_varint32, put_varint64, try_decode_fixed32,
};
use unikv_common::{crc32c, Error, Result};

/// Current snapshot format version.
const META_VERSION: u32 = 1;

/// Metadata of one SSTable (in either tier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// File number within the partition directory.
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
}

/// A reference to a value log owned by (possibly) another partition —
/// the lazy-split sharing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogRef {
    /// Owning partition id (directory the file lives in).
    pub partition: u32,
    /// Log file number.
    pub log_number: u64,
}

/// Snapshot of one partition's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionMeta {
    /// Partition id (names the directory `p<id>`).
    pub id: u32,
    /// Inclusive lower boundary of the key range (empty = -∞).
    pub lo: Vec<u8>,
    /// Exclusive upper boundary; `None` = +∞.
    pub hi: Option<Vec<u8>>,
    /// WAL file number currently receiving writes.
    pub wal_number: u64,
    /// UnsortedStore tables in flush order (oldest first).
    pub unsorted: Vec<TableMeta>,
    /// SortedStore run, ordered by key, non-overlapping.
    pub sorted: Vec<TableMeta>,
    /// Value logs owned by this partition.
    pub own_logs: Vec<u64>,
    /// Shared logs inherited from a split parent, still referenced by
    /// pointers in this partition's SortedStore.
    pub inherited_logs: Vec<LogRef>,
    /// Unsorted table numbers covered by the on-disk hash-index checkpoint.
    pub ckpt_tables: Vec<u64>,
    /// Sum of live separated-value lengths in the SortedStore (GC trigger
    /// bookkeeping; recomputed at each merge).
    pub live_value_bytes: u64,
    /// WAL numbers of sealed (immutable) memtables awaiting a background
    /// flush, oldest first. Recovery replays them before the active WAL.
    /// Empty in deterministic inline mode (`background_jobs = 0`), and
    /// encoded as an optional trailing section so snapshots without
    /// sealed WALs stay byte-identical to the pre-background format.
    pub sealed_wals: Vec<u64>,
}

/// Whole-database snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbMeta {
    /// All partitions, ordered by `lo`.
    pub partitions: Vec<PartitionMeta>,
    /// Next partition id to allocate.
    pub next_partition: u32,
    /// Next file number to allocate (global across partitions).
    pub next_file: u64,
    /// Last committed sequence number covered by flushed data.
    pub last_sequence: u64,
}

impl Default for DbMeta {
    fn default() -> Self {
        DbMeta {
            partitions: vec![PartitionMeta {
                id: 0,
                ..Default::default()
            }],
            next_partition: 1,
            next_file: 1,
            last_sequence: 0,
        }
    }
}

fn encode_table(out: &mut Vec<u8>, t: &TableMeta) {
    put_varint64(out, t.number);
    put_varint64(out, t.size);
    put_length_prefixed_slice(out, &t.smallest);
    put_length_prefixed_slice(out, &t.largest);
}

fn decode_table(src: &[u8]) -> Result<(TableMeta, usize)> {
    let (number, a) = get_varint64(src)?;
    let (size, b) = get_varint64(&src[a..])?;
    let (smallest, c) = get_length_prefixed_slice(&src[a + b..])?;
    let smallest = smallest.to_vec();
    let (largest, d) = get_length_prefixed_slice(&src[a + b + c..])?;
    Ok((
        TableMeta {
            number,
            size,
            smallest,
            largest: largest.to_vec(),
        },
        a + b + c + d,
    ))
}

impl DbMeta {
    /// Serialize the snapshot (with trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_fixed32(&mut out, META_VERSION);
        put_varint64(&mut out, self.last_sequence);
        put_varint64(&mut out, self.next_file);
        put_varint32(&mut out, self.next_partition);
        put_varint32(&mut out, self.partitions.len() as u32);
        for p in &self.partitions {
            put_varint32(&mut out, p.id);
            put_length_prefixed_slice(&mut out, &p.lo);
            match &p.hi {
                Some(hi) => {
                    out.push(1);
                    put_length_prefixed_slice(&mut out, hi);
                }
                None => out.push(0),
            }
            put_varint64(&mut out, p.wal_number);
            put_varint32(&mut out, p.unsorted.len() as u32);
            for t in &p.unsorted {
                encode_table(&mut out, t);
            }
            put_varint32(&mut out, p.sorted.len() as u32);
            for t in &p.sorted {
                encode_table(&mut out, t);
            }
            put_varint32(&mut out, p.own_logs.len() as u32);
            for l in &p.own_logs {
                put_varint64(&mut out, *l);
            }
            put_varint32(&mut out, p.inherited_logs.len() as u32);
            for l in &p.inherited_logs {
                put_varint32(&mut out, l.partition);
                put_varint64(&mut out, l.log_number);
            }
            put_varint32(&mut out, p.ckpt_tables.len() as u32);
            for t in &p.ckpt_tables {
                put_varint64(&mut out, *t);
            }
            put_varint64(&mut out, p.live_value_bytes);
        }
        // Optional trailing section: per-partition sealed-WAL lists, only
        // present when at least one partition has sealed memtables. With
        // `background_jobs = 0` nothing is ever sealed, so the encoding is
        // byte-identical to snapshots that predate background maintenance.
        if self.partitions.iter().any(|p| !p.sealed_wals.is_empty()) {
            for p in &self.partitions {
                put_varint32(&mut out, p.sealed_wals.len() as u32);
                for w in &p.sealed_wals {
                    put_varint64(&mut out, *w);
                }
            }
        }
        let crc = crc32c::mask(crc32c::value(&out));
        put_fixed32(&mut out, crc);
        out
    }

    /// Parse a snapshot produced by [`encode`](Self::encode).
    pub fn decode(data: &[u8]) -> Result<DbMeta> {
        if data.len() < 8 {
            return Err(Error::corruption("META too small"));
        }
        let body = &data[..data.len() - 4];
        let stored = try_decode_fixed32(&data[data.len() - 4..])?;
        if crc32c::unmask(stored) != crc32c::value(body) {
            return Err(Error::corruption("META crc mismatch"));
        }
        let version = try_decode_fixed32(body)?;
        if version != META_VERSION {
            return Err(Error::corruption(format!(
                "unsupported META version {version}"
            )));
        }
        let mut pos = 4usize;
        macro_rules! v64 {
            () => {{
                let (v, n) = get_varint64(&body[pos..])?;
                pos += n;
                v
            }};
        }
        macro_rules! v32 {
            () => {{
                let (v, n) = get_varint32(&body[pos..])?;
                pos += n;
                v
            }};
        }
        macro_rules! slice {
            () => {{
                let (s, n) = get_length_prefixed_slice(&body[pos..])?;
                pos += n;
                s.to_vec()
            }};
        }
        let last_sequence = v64!();
        let next_file = v64!();
        let next_partition = v32!();
        let num_partitions = v32!();
        let mut partitions = Vec::with_capacity(num_partitions as usize);
        for _ in 0..num_partitions {
            let id = v32!();
            let lo = slice!();
            let has_hi = *body
                .get(pos)
                .ok_or_else(|| Error::corruption("META truncated"))?;
            pos += 1;
            let hi = match has_hi {
                0 => None,
                1 => Some(slice!()),
                _ => return Err(Error::corruption("META bad hi flag")),
            };
            let wal_number = v64!();
            let mut unsorted = Vec::new();
            for _ in 0..v32!() {
                let (t, n) = decode_table(&body[pos..])?;
                pos += n;
                unsorted.push(t);
            }
            let mut sorted = Vec::new();
            for _ in 0..v32!() {
                let (t, n) = decode_table(&body[pos..])?;
                pos += n;
                sorted.push(t);
            }
            let mut own_logs = Vec::new();
            for _ in 0..v32!() {
                own_logs.push(v64!());
            }
            let mut inherited_logs = Vec::new();
            for _ in 0..v32!() {
                let partition = v32!();
                let log_number = v64!();
                inherited_logs.push(LogRef {
                    partition,
                    log_number,
                });
            }
            let mut ckpt_tables = Vec::new();
            for _ in 0..v32!() {
                ckpt_tables.push(v64!());
            }
            let live_value_bytes = v64!();
            partitions.push(PartitionMeta {
                id,
                lo,
                hi,
                wal_number,
                unsorted,
                sorted,
                own_logs,
                inherited_logs,
                ckpt_tables,
                live_value_bytes,
                sealed_wals: Vec::new(),
            });
        }
        // Optional sealed-WAL section (see `encode`).
        if pos < body.len() {
            for p in partitions.iter_mut() {
                for _ in 0..v32!() {
                    p.sealed_wals.push(v64!());
                }
            }
        }
        if pos != body.len() {
            return Err(Error::corruption("META trailing bytes"));
        }
        Ok(DbMeta {
            partitions,
            next_partition,
            next_file,
            last_sequence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DbMeta {
        DbMeta {
            partitions: vec![
                PartitionMeta {
                    id: 0,
                    lo: Vec::new(),
                    hi: Some(b"m".to_vec()),
                    wal_number: 12,
                    unsorted: vec![TableMeta {
                        number: 3,
                        size: 100,
                        smallest: b"a\0\0\0\0\0\0\0\x01".to_vec(),
                        largest: b"l\0\0\0\0\0\0\0\x01".to_vec(),
                    }],
                    sorted: vec![],
                    own_logs: vec![5, 6],
                    inherited_logs: vec![LogRef {
                        partition: 9,
                        log_number: 2,
                    }],
                    ckpt_tables: vec![3],
                    live_value_bytes: 4096,
                    sealed_wals: Vec::new(),
                },
                PartitionMeta {
                    id: 1,
                    lo: b"m".to_vec(),
                    hi: None,
                    wal_number: 13,
                    ..Default::default()
                },
            ],
            next_partition: 2,
            next_file: 20,
            last_sequence: 777,
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(DbMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn default_is_single_open_partition() {
        let m = DbMeta::default();
        assert_eq!(m.partitions.len(), 1);
        assert!(m.partitions[0].lo.is_empty());
        assert!(m.partitions[0].hi.is_none());
        assert_eq!(DbMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sealed_wals_roundtrip_and_stay_optional() {
        let mut m = sample();
        let clean = m.encode();
        // No sealed WALs → the trailing section is absent entirely.
        m.partitions[0].sealed_wals = vec![41, 42];
        let sealed = m.encode();
        assert!(sealed.len() > clean.len());
        assert_eq!(DbMeta::decode(&sealed).unwrap(), m);
        m.partitions[0].sealed_wals.clear();
        assert_eq!(
            m.encode(),
            clean,
            "empty sealed_wals must not change encoding"
        );
    }

    #[test]
    fn corruption_detected() {
        let mut enc = sample().encode();
        let n = enc.len();
        enc[n / 2] ^= 0xff;
        assert!(DbMeta::decode(&enc).is_err());
        assert!(DbMeta::decode(&enc[..6]).is_err());
        assert!(DbMeta::decode(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            last_sequence in any::<u64>(),
            next_file in any::<u64>(),
            ids in proptest::collection::vec(any::<u32>(), 1..8),
            lo in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            let partitions: Vec<PartitionMeta> = ids
                .iter()
                .map(|&id| PartitionMeta { id, lo: lo.clone(), ..Default::default() })
                .collect();
            let m = DbMeta { partitions, next_partition: 99, next_file, last_sequence };
            prop_assert_eq!(DbMeta::decode(&m.encode()).unwrap(), m);
        }
    }
}
