//! The UniKV engine: differentiated indexing, partial KV separation,
//! dynamic range partitioning, scan optimization, and crash recovery.
//!
//! ## Structure
//!
//! A database is a list of range partitions ordered by boundary key
//! (the in-memory *partition index*; persisted in `META`). Each partition
//! has its own memtable + WAL, an UnsortedStore (appended SSTables + hash
//! index), a SortedStore (one sorted run with value pointers), and a value
//! log. One `RwLock` guards the partition list: reads/scans share it,
//! writes and structural operations (flush, merge, GC, split) take it
//! exclusively and run inline, so experiments are deterministic — the
//! paper's background threads are serialized with the foreground exactly
//! as its §GC notes ("GC and compaction operations are executed
//! sequentially... GC cost is charged to write performance").
//!
//! ## Crash consistency
//!
//! Every structural change follows *write files → sync → commit `META`
//! atomically → delete old files*. The `META` rename is the commit point
//! (the paper's `GC_done` marker generalized); files written before a
//! crash that never got committed are orphans removed during recovery.

use crate::batch::{decode_batch_record, encode_batch_record, WriteBatch};
use crate::fetch::FetchPool;
use crate::journal::EventJournal;
use crate::maintenance::{
    stall_level, worker_loop, HealthReport, HealthState, Job, JobKind, MaintClock, MaintState,
    RetryConfig, StallLevel, SyncPoints,
};
use crate::meta::{DbMeta, LogRef, PartitionMeta, TableMeta};
use crate::metrics::DbMetrics;
use crate::options::UniKvOptions;
use crate::partition::{
    checkpoint_due, decode_index_ckpt, encode_index_ckpt, table_options_with_io, Partition,
    SealedMem, INDEX_CKPT,
};
use crate::resolver::{partition_dir, ValueResolver};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unikv_common::events::{EventBus, EventClock, EventKind, EventListener};
use unikv_common::ikey::{
    extract_seq_type, extract_user_key, make_internal_key, SequenceNumber, ValueType,
};
use unikv_common::metrics::{MetricsClock, MetricsSnapshot, TraceEvent, TraceOp, TraceOutcome};
use unikv_common::perf::{self, PerfContext, PerfStage};
use unikv_common::pointer::SeparatedValue;
use unikv_common::{Error, Result};
use unikv_env::Env;
use unikv_hashindex::TwoLevelHashIndex;
use unikv_lsm::db::ScanItem;
use unikv_lsm::filenames;
use unikv_lsm::iter::{
    ConcatSource, InternalIterator, MemTableSource, MergingIterator, TableSource,
};
use unikv_memtable::{LookupResult, MemTable};
use unikv_sstable::{BlockCache, Table, TableBuilder, TableBuilderOptions, TableOptions};
use unikv_vlog::{parse_vlog_file_name, vlog_file_name, ValueLog};
use unikv_wal::{LogReader, LogWriter, ReadOutcome};

thread_local! {
    /// Set when `commit_meta` fails on the current thread. The worker
    /// loop reads it to tell commit-step failures — the only permanent
    /// failures that poison the database — apart from failures in the
    /// preparatory build steps, which quarantine instead.
    static COMMIT_FAILED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Take (and clear) the current thread's commit-failure marker.
pub(crate) fn take_commit_failure() -> bool {
    COMMIT_FAILED.with(|c| c.replace(false))
}

/// Scope guard pairing a structural op's `*Start` event with exactly one
/// terminal event: [`OpScope::finish`] publishes the `*Finish` and disarms
/// the guard; any other exit — a `?` early return on a build or commit
/// error, an injected sync-point fault, a panic — publishes the `*Abort`
/// on drop. Every terminal event's `cause` is the op's own start seq, so
/// causal chains stay connected even through failures.
struct OpScope<'a> {
    bus: &'a EventBus,
    abort: EventKind,
    partition: u32,
    start_seq: u64,
    done: bool,
}

impl<'a> OpScope<'a> {
    #[allow(clippy::too_many_arguments)]
    fn begin(
        bus: &'a EventBus,
        start: EventKind,
        abort: EventKind,
        partition: u32,
        cause: Option<u64>,
        inputs: Vec<u64>,
        bytes: u64,
    ) -> OpScope<'a> {
        let start_seq = bus.publish(start, partition, cause, inputs, vec![], bytes, "");
        OpScope {
            bus,
            abort,
            partition,
            start_seq,
            done: false,
        }
    }

    fn finish(mut self, kind: EventKind, outputs: Vec<u64>, bytes: u64, detail: &str) -> u64 {
        self.done = true;
        self.bus.publish(
            kind,
            self.partition,
            Some(self.start_seq),
            vec![],
            outputs,
            bytes,
            detail,
        )
    }
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.bus.publish(
                self.abort,
                self.partition,
                Some(self.start_seq),
                vec![],
                vec![],
                0,
                "aborted",
            );
        }
    }
}

/// Engine-level counters (per-database).
#[derive(Debug, Default)]
pub struct UniKvStats {
    /// Bytes of user data accepted by writes (key + value).
    pub user_bytes_written: AtomicU64,
    /// Bytes written by memtable flushes.
    pub bytes_flushed: AtomicU64,
    /// Bytes read by UnsortedStore→SortedStore merges.
    pub merge_bytes_read: AtomicU64,
    /// Bytes written by merges (tables + newly separated values).
    pub merge_bytes_written: AtomicU64,
    /// Bytes rewritten by GC (values + tables).
    pub gc_bytes_written: AtomicU64,
    /// Bytes written while splitting partitions.
    pub split_bytes_written: AtomicU64,
    /// Number of flushes.
    pub flushes: AtomicU64,
    /// Number of full merges.
    pub merges: AtomicU64,
    /// Number of size-based (scan-optimization) merges.
    pub scan_merges: AtomicU64,
    /// Number of GC passes.
    pub gcs: AtomicU64,
    /// Number of partition splits.
    pub splits: AtomicU64,
    /// SSTables consulted across all point lookups.
    pub tables_checked: AtomicU64,
    /// Gets answered by a memtable.
    pub memtable_hits: AtomicU64,
    /// Hash-index candidates that failed key verification.
    pub index_false_positives: AtomicU64,
    /// Microseconds foreground writes spent stalled (slowdowns + stops).
    pub stall_time_micros: AtomicU64,
    /// Writes that hit the slowdown threshold.
    pub stall_slowdowns: AtomicU64,
    /// Writes that hit the hard-stop threshold.
    pub stall_stops: AtomicU64,
    /// Background maintenance jobs enqueued.
    pub maint_jobs_scheduled: AtomicU64,
    /// Background maintenance jobs completed successfully.
    pub maint_jobs_completed: AtomicU64,
    /// Background maintenance jobs that failed *fatally* (poisoning the
    /// database): a permanent META-commit failure or a worker panic.
    /// Transient failures retry (`maint_job_retries`) or quarantine
    /// (`maint_jobs_quarantined`) without touching this counter.
    pub maint_jobs_failed: AtomicU64,
    /// Transient job failures re-queued with backoff.
    pub maint_job_retries: AtomicU64,
    /// Jobs quarantined after exhausting their retry budget or failing
    /// permanently (counted once per quarantine entry).
    pub maint_jobs_quarantined: AtomicU64,
    /// Health state transitions (Healthy↔Degraded↔ReadOnly→Poisoned).
    pub health_transitions: AtomicU64,
    /// Total milliseconds spent in any non-Healthy state (accrued when
    /// the database transitions back to Healthy).
    pub time_degraded_ms: AtomicU64,
    /// Most recently observed maintenance queue depth.
    pub maint_queue_depth: AtomicU64,
    /// Checksum/structure failures detected (and surfaced as
    /// `Error::Corruption`) instead of serving garbage.
    pub corruptions_detected: AtomicU64,
    /// Non-corruption I/O errors surfaced by read paths.
    pub read_io_errors: AtomicU64,
    /// WAL bytes dropped as torn tails during recovery replay.
    pub wal_dropped_bytes: AtomicU64,
}

impl UniKvStats {
    pub(crate) fn add(c: &AtomicU64, v: u64) {
        c.fetch_add(v, Ordering::Relaxed);
    }

    /// Write amplification: device writes / user writes.
    pub fn write_amplification(&self) -> f64 {
        let user = self.user_bytes_written.load(Ordering::Relaxed);
        if user == 0 {
            return 0.0;
        }
        let device = self.bytes_flushed.load(Ordering::Relaxed)
            + self.merge_bytes_written.load(Ordering::Relaxed)
            + self.gc_bytes_written.load(Ordering::Relaxed)
            + self.split_bytes_written.load(Ordering::Relaxed);
        device as f64 / user as f64
    }

    /// Snapshot all counters as `(name, value)` pairs.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let l = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("user_bytes_written", l(&self.user_bytes_written)),
            ("bytes_flushed", l(&self.bytes_flushed)),
            ("merge_bytes_read", l(&self.merge_bytes_read)),
            ("merge_bytes_written", l(&self.merge_bytes_written)),
            ("gc_bytes_written", l(&self.gc_bytes_written)),
            ("split_bytes_written", l(&self.split_bytes_written)),
            ("flushes", l(&self.flushes)),
            ("merges", l(&self.merges)),
            ("scan_merges", l(&self.scan_merges)),
            ("gcs", l(&self.gcs)),
            ("splits", l(&self.splits)),
            ("tables_checked", l(&self.tables_checked)),
            ("memtable_hits", l(&self.memtable_hits)),
            ("index_false_positives", l(&self.index_false_positives)),
            ("stall_time_micros", l(&self.stall_time_micros)),
            ("stall_slowdowns", l(&self.stall_slowdowns)),
            ("stall_stops", l(&self.stall_stops)),
            ("maint_jobs_scheduled", l(&self.maint_jobs_scheduled)),
            ("maint_jobs_completed", l(&self.maint_jobs_completed)),
            ("maint_jobs_failed", l(&self.maint_jobs_failed)),
            ("maint_job_retries", l(&self.maint_job_retries)),
            ("maint_jobs_quarantined", l(&self.maint_jobs_quarantined)),
            ("health_transitions", l(&self.health_transitions)),
            ("time_degraded_ms", l(&self.time_degraded_ms)),
            ("maint_queue_depth", l(&self.maint_queue_depth)),
            ("corruptions_detected", l(&self.corruptions_detected)),
            ("read_io_errors", l(&self.read_io_errors)),
            ("wal_dropped_bytes", l(&self.wal_dropped_bytes)),
        ]
    }
}

struct DbCore {
    /// Partitions ordered by `meta.lo`.
    partitions: Vec<Partition>,
    next_partition: u32,
    next_file: u64,
    last_seq: SequenceNumber,
}

impl DbCore {
    fn alloc_file(&mut self) -> u64 {
        let n = self.next_file;
        self.next_file += 1;
        n
    }

    /// Index of the partition whose range contains `user_key`.
    fn route(&self, user_key: &[u8]) -> usize {
        let idx = self
            .partitions
            .partition_point(|p| p.meta.lo.as_slice() <= user_key);
        idx.saturating_sub(1)
    }

    /// Current index of the partition with id `pid`, if it still exists.
    /// Background jobs address partitions by id because indexes shift
    /// whenever another partition splits.
    fn partition_index(&self, pid: u32) -> Option<usize> {
        self.partitions.iter().position(|p| p.meta.id == pid)
    }

    fn to_meta(&self) -> DbMeta {
        DbMeta {
            partitions: self.partitions.iter().map(|p| p.meta.clone()).collect(),
            next_partition: self.next_partition,
            next_file: self.next_file,
            last_sequence: self.last_seq,
        }
    }
}

/// Engine state shared between the public handle and the maintenance
/// worker threads. All database logic lives here; [`UniKv`] is a thin
/// wrapper that owns the workers' join handles.
pub(crate) struct DbInner {
    pub(crate) env: Arc<dyn Env>,
    root: PathBuf,
    pub(crate) opts: UniKvOptions,
    topts: TableOptions,
    core: RwLock<DbCore>,
    resolver: Arc<ValueResolver>,
    fetch_pool: FetchPool,
    pub(crate) stats: Arc<UniKvStats>,
    pub(crate) metrics: DbMetrics,
    pub(crate) maint: MaintState,
    pub(crate) sync: SyncPoints,
    /// Lifecycle event bus: journal + user listeners. With neither, a
    /// publish is one atomic increment (seq numbering stays continuous).
    pub(crate) events: Arc<EventBus>,
    /// The persistent journal, kept for its error counters; it is also
    /// registered on `events` as a listener.
    journal: Option<Arc<EventJournal>>,
    /// Causal triggers for scheduled background jobs: the event seq that
    /// made `schedule_triggers` enqueue the job, consumed when a worker
    /// starts it. Kept outside `Job` so job identity (dedup, quarantine)
    /// is untouched.
    job_causes: parking_lot::Mutex<HashMap<Job, u64>>,
}

impl DbInner {
    /// Open (creating or recovering) the engine state under `root`.
    fn open_inner(env: Arc<dyn Env>, root: PathBuf, opts: UniKvOptions) -> Result<DbInner> {
        opts.validate()?;
        env.create_dir_all(&root)?;
        let cache = (opts.block_cache_bytes > 0).then(|| BlockCache::new(opts.block_cache_bytes));
        let metrics = DbMetrics::new(&opts);
        let topts = table_options_with_io(cache, Some(metrics.table_io.clone()));

        let meta_path = root.join("META");
        let meta = if env.file_exists(&meta_path) {
            DbMeta::decode(&env.read_to_vec(&meta_path)?)?
        } else {
            DbMeta::default()
        };

        // Inherited-log references across all partitions, used both for
        // orphan sweeping and for keeping parent logs alive.
        let inherited_refs: HashSet<(u32, u64)> = meta
            .partitions
            .iter()
            .flat_map(|p| p.inherited_logs.iter())
            .map(|r| (r.partition, r.log_number))
            .collect();

        let mut core = DbCore {
            partitions: Vec::with_capacity(meta.partitions.len()),
            next_partition: meta.next_partition,
            next_file: meta.next_file,
            last_seq: meta.last_sequence,
        };

        // Sweep orphans in every partition directory before opening logs
        // (ValueLog::open adopts whatever *.vlog files it finds).
        for name in env.list_dir(&root)? {
            let Some(s) = name.to_str() else { continue };
            let Some(id) = s.strip_prefix('p').and_then(|x| x.parse::<u32>().ok()) else {
                continue;
            };
            let dir = partition_dir(&root, id);
            let pmeta = meta.partitions.iter().find(|p| p.id == id);
            sweep_partition_dir(env.as_ref(), &dir, id, pmeta, &inherited_refs)?;
        }

        let stats = Arc::new(UniKvStats::default());
        let mut last_seq = meta.last_sequence;
        let mut stale_wals = Vec::new();
        let mut next_file = core.next_file;
        for pmeta in &meta.partitions {
            let (p, stale) = open_partition(
                &env,
                &root,
                &opts,
                &topts,
                pmeta,
                &mut last_seq,
                &mut next_file,
                &stats,
                &metrics,
            )?;
            core.partitions.push(p);
            stale_wals.extend(stale);
        }
        if opts.paranoid_checks {
            // Every inherited value-log reference must resolve to a file;
            // a missing one means committed pointers would dangle.
            for r in &inherited_refs {
                let path = partition_dir(&root, r.0).join(vlog_file_name(r.1));
                if !env.file_exists(&path) {
                    return Err(Error::corruption(format!(
                        "inherited value log missing: {}",
                        path.display()
                    )));
                }
            }
        }
        core.last_seq = last_seq;
        core.next_file = next_file;
        core.partitions.sort_by(|a, b| a.meta.lo.cmp(&b.meta.lo));

        // Event bus + optional persistent journal. The journal is strictly
        // advisory: failure to open it degrades to "no journal" (never a
        // failed database open), and seq numbering continues from whatever
        // events survived on disk.
        let mut listeners = opts.listeners.0.clone();
        let mut journal = None;
        let mut first_seq = 1u64;
        if opts.enable_event_journal {
            if let Ok((j, next)) = EventJournal::open(
                env.clone(),
                &root,
                opts.event_journal_max_bytes,
                opts.paranoid_checks,
            ) {
                first_seq = next;
                listeners.push(j.clone() as Arc<dyn EventListener>);
                journal = Some(j);
            }
        }
        let events = EventBus::new(listeners, first_seq);

        let db = DbInner {
            resolver: Arc::new(ValueResolver::new(env.clone(), root.clone())),
            fetch_pool: FetchPool::new(opts.value_fetch_threads)
                .with_metrics(metrics.fetch.clone()),
            env,
            root,
            maint: MaintState::new(
                RetryConfig::from_options(&opts),
                stats.clone(),
                events.clone(),
            ),
            opts,
            topts,
            core: RwLock::new(core),
            stats,
            metrics,
            sync: SyncPoints::default(),
            events,
            journal,
            job_causes: parking_lot::Mutex::new(HashMap::new()),
        };

        // Flush any memtable rebuilt from a WAL so the on-disk state is
        // self-describing, then persist a fresh META (also covers the
        // fresh-database case). Replayed WAL files can go once their
        // contents are in flushed tables.
        {
            let mut core = db.core.write();
            for i in 0..core.partitions.len() {
                if !core.partitions[i].mem.is_empty() {
                    db.flush_partition(&mut core, i)?;
                }
            }
            db.commit_meta(&core)?;
            for path in stale_wals {
                if db.env.file_exists(&path) {
                    db.env.delete_file(&path)?;
                }
            }
        }
        Ok(db)
    }

    /// Counters.
    pub fn stats(&self) -> &UniKvStats {
        &self.stats
    }

    /// Options this database was opened with.
    pub fn options(&self) -> &UniKvOptions {
        &self.opts
    }

    /// Number of partitions (grows via dynamic range partitioning).
    pub fn partition_count(&self) -> usize {
        self.core.read().partitions.len()
    }

    /// The current partition boundary keys (`lo` of each partition).
    pub fn partition_boundaries(&self) -> Vec<Vec<u8>> {
        self.core
            .read()
            .partitions
            .iter()
            .map(|p| p.meta.lo.clone())
            .collect()
    }

    /// Total bytes of in-memory hash-index entries across partitions
    /// (experiment E12).
    pub fn index_memory_bytes(&self) -> usize {
        self.core
            .read()
            .partitions
            .iter()
            .map(|p| p.index.memory_bytes())
            .sum()
    }

    /// Total logical bytes stored (tables + live values).
    pub fn logical_bytes(&self) -> u64 {
        self.core
            .read()
            .partitions
            .iter()
            .map(|p| p.logical_size())
            .sum()
    }

    /// Last committed sequence number.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.core.read().last_seq
    }

    /// Insert or update `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, ValueType::Value)
    }

    /// Delete `key`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", ValueType::Deletion)
    }

    /// Insert or update `key`, returning a per-operation stage profile.
    pub fn put_profiled(&self, key: &[u8], value: &[u8]) -> Result<PerfContext> {
        self.write_observed(key, value, ValueType::Value, true)
    }

    /// Delete `key`, returning a per-operation stage profile.
    pub fn delete_profiled(&self, key: &[u8]) -> Result<PerfContext> {
        self.write_observed(key, b"", ValueType::Deletion, true)
    }

    fn write(&self, key: &[u8], value: &[u8], t: ValueType) -> Result<()> {
        self.write_observed(key, value, t, false).map(|_| ())
    }

    /// The write path with optional per-op profiling. The profiler reuses
    /// the operation's own histogram clock readings (`t0`/`t1`), so the
    /// profile's stage sum equals the recorded latency exactly and an
    /// unprofiled call performs the same two clock reads as before.
    fn write_observed(
        &self,
        key: &[u8],
        value: &[u8],
        t: ValueType,
        profile: bool,
    ) -> Result<PerfContext> {
        if key.is_empty() {
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        let t0 = self.metrics.registry.now_micros();
        if profile {
            perf::begin_at(self.metrics.registry.clone(), t0);
        }
        let pid = match self.write_impl(key, value, t) {
            Ok(pid) => pid,
            Err(e) => {
                if profile {
                    perf::cancel();
                }
                return Err(e);
            }
        };
        let t1 = self.metrics.registry.now_micros();
        let ctx = if profile {
            perf::finish_at(t1)
        } else {
            PerfContext::default()
        };
        self.metrics.eng.writes.inc();
        self.metrics.eng.put_latency.record(t1.saturating_sub(t0));
        self.metrics.registry.trace_event(TraceEvent {
            at_micros: t1,
            dur_micros: t1.saturating_sub(t0),
            op: if t == ValueType::Value {
                TraceOp::Put
            } else {
                TraceOp::Delete
            },
            outcome: TraceOutcome::Done,
            partition: pid,
            bytes: (key.len() + value.len()) as u64,
        });
        Ok(ctx)
    }

    fn write_impl(&self, key: &[u8], value: &[u8], t: ValueType) -> Result<u32> {
        if self.opts.background_jobs > 0 {
            self.wait_for_write_room(Some(key))?;
            perf::mark(PerfStage::StallWait);
        }
        let mut core = self.core.write();
        core.last_seq += 1;
        let seq = core.last_seq;
        let pidx = core.route(key);
        perf::mark(PerfStage::Router);
        let p = &mut core.partitions[pidx];
        let op = [(t, key.to_vec(), value.to_vec())];
        p.wal.add_record(&encode_batch_record(seq, &op))?;
        if self.opts.sync_writes {
            p.wal.sync()?;
        }
        // Memtable values carry the SeparatedValue slot encoding so every
        // store tier speaks the same value format.
        let slot = SeparatedValue::Inline(value.to_vec()).encode();
        p.mem.add(seq, t, key, &slot);
        perf::mark(PerfStage::Memtable);
        UniKvStats::add(
            &self.stats.user_bytes_written,
            (key.len() + value.len()) as u64,
        );
        let pid = p.meta.id;
        if p.mem.approximate_memory_usage() >= self.opts.write_buffer_size {
            if self.opts.background_jobs > 0 {
                self.seal_memtable(&mut core, pidx)?;
                self.schedule(JobKind::Flush, pid);
            } else {
                let fin = self.flush_partition(&mut core, pidx)?;
                self.run_triggers(&mut core, pidx, fin)?;
            }
        }
        Ok(pid)
    }

    /// Apply `batch` atomically: each partition's slice of the batch is
    /// one WAL record, and all slices are logged (and synced, when
    /// `sync_writes` is on) before any becomes visible via flush.
    pub fn write_batch(&self, batch: &WriteBatch) -> Result<()> {
        batch.validate()?;
        if batch.is_empty() {
            return Ok(());
        }
        let t0 = self.metrics.registry.now_micros();
        if self.opts.background_jobs > 0 {
            self.wait_for_write_room(None)?;
        }
        let mut core = self.core.write();
        // Assign sequences in batch order, grouped per partition.
        let base = core.last_seq + 1;
        core.last_seq += batch.ops.len() as u64;
        #[allow(clippy::type_complexity)]
        let mut per_partition: Vec<Vec<(u64, ValueType, Vec<u8>, Vec<u8>)>> =
            vec![Vec::new(); core.partitions.len()];
        for (i, (t, k, v)) in batch.ops.iter().enumerate() {
            let pidx = core.route(k);
            per_partition[pidx].push((base + i as u64, *t, k.clone(), v.clone()));
        }
        // Log every slice first (failure before visibility), then apply.
        for (pidx, slice) in per_partition.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let ops: Vec<(ValueType, Vec<u8>, Vec<u8>)> = slice
                .iter()
                .map(|(_, t, k, v)| (*t, k.clone(), v.clone()))
                .collect();
            let p = &mut core.partitions[pidx];
            p.wal.add_record(&encode_batch_record(slice[0].0, &ops))?;
            if self.opts.sync_writes {
                p.wal.sync()?;
            }
        }
        for (pidx, slice) in per_partition.iter().enumerate() {
            for (seq, t, k, v) in slice {
                let slot = SeparatedValue::Inline(v.clone()).encode();
                core.partitions[pidx].mem.add(*seq, *t, k, &slot);
                UniKvStats::add(&self.stats.user_bytes_written, (k.len() + v.len()) as u64);
            }
        }
        for pidx in 0..core.partitions.len() {
            if core.partitions[pidx].mem.approximate_memory_usage() >= self.opts.write_buffer_size {
                if self.opts.background_jobs > 0 {
                    let pid = core.partitions[pidx].meta.id;
                    self.seal_memtable(&mut core, pidx)?;
                    self.schedule(JobKind::Flush, pid);
                } else {
                    let fin = self.flush_partition(&mut core, pidx)?;
                    self.run_triggers(&mut core, pidx, fin)?;
                }
            }
        }
        // One latency sample per batch; the contained ops count into
        // `writes`/`batch_ops` so `put_latency`'s sample count keeps
        // matching the number of put/delete *calls*.
        let t1 = self.metrics.registry.now_micros();
        let n = batch.ops.len() as u64;
        self.metrics.eng.writes.add(n);
        self.metrics.batch_ops.add(n);
        self.metrics.batch_latency.record(t1.saturating_sub(t0));
        self.metrics.registry.trace_event(TraceEvent {
            at_micros: t1,
            dur_micros: t1.saturating_sub(t0),
            op: TraceOp::Put,
            outcome: TraceOutcome::Done,
            partition: 0,
            bytes: n,
        });
        Ok(())
    }

    /// Force all memtables to disk.
    pub fn flush(&self) -> Result<()> {
        let _pause = self.pause_maintenance()?;
        let mut core = self.core.write();
        let mut fins = vec![None; core.partitions.len()];
        for (i, fin) in fins.iter_mut().enumerate() {
            if !core.partitions[i].mem.is_empty() || !core.partitions[i].imms.is_empty() {
                *fin = self.flush_partition(&mut core, i)?;
            }
        }
        for (i, fin) in fins.into_iter().enumerate() {
            self.run_triggers(&mut core, i, fin)?;
        }
        Ok(())
    }

    /// Force a full merge (UnsortedStore → SortedStore) in every partition.
    pub fn compact_all(&self) -> Result<()> {
        let _pause = self.pause_maintenance()?;
        let mut core = self.core.write();
        for i in 0..core.partitions.len() {
            let mut fin = None;
            if !core.partitions[i].mem.is_empty() || !core.partitions[i].imms.is_empty() {
                fin = self.flush_partition(&mut core, i)?;
            }
            if !core.partitions[i].meta.unsorted.is_empty() {
                self.merge_partition(&mut core, i, fin)?;
            }
        }
        Ok(())
    }

    /// Run GC on every partition regardless of the garbage ratio
    /// (test/maintenance hook).
    pub fn force_gc(&self) -> Result<()> {
        let _pause = self.pause_maintenance()?;
        let mut core = self.core.write();
        for i in 0..core.partitions.len() {
            self.gc_partition(&mut core, i, None)?;
        }
        Ok(())
    }

    /// Quiesce background maintenance for the duration of a foreground
    /// structural operation. In inline mode this is free; in background
    /// mode it blocks new jobs from starting and waits for inflight ones,
    /// and surfaces a prior background failure as an error.
    fn pause_maintenance(&self) -> Result<Option<crate::maintenance::PauseGuard<'_>>> {
        if let Some(err) = self.maint.poisoned_error() {
            return Err(err);
        }
        if self.opts.background_jobs == 0 {
            return Ok(None);
        }
        Ok(Some(self.maint.pause()))
    }

    /// Enqueue a background job (no-op in inline mode; duplicates collapse).
    fn schedule(&self, kind: JobKind, partition: u32) {
        if self.opts.background_jobs == 0 {
            return;
        }
        if let Some(depth) = self.maint.schedule(Job { kind, partition }) {
            UniKvStats::add(&self.stats.maint_jobs_scheduled, 1);
            self.stats
                .maint_queue_depth
                .store(depth as u64, Ordering::Relaxed);
            self.metrics.maint_queue_depth.set(depth as u64);
        }
    }

    /// Remember the event seq that caused `kind` to be scheduled on
    /// `partition`; the worker publishing the job's start event consumes
    /// it via [`DbInner::take_job_cause`]. Only bothers when someone is
    /// listening — the map must stay empty on the zero-overhead path.
    fn note_job_cause(&self, kind: JobKind, partition: u32, cause: Option<u64>) {
        let Some(cause) = cause else { return };
        if self.opts.background_jobs == 0 || !self.events.has_listeners() {
            return;
        }
        self.job_causes
            .lock()
            .insert(Job { kind, partition }, cause);
    }

    fn take_job_cause(&self, kind: JobKind, partition: u32) -> Option<u64> {
        if !self.events.has_listeners() {
            return None;
        }
        self.job_causes.lock().remove(&Job { kind, partition })
    }

    /// Backpressure: before a write proceeds, brake against the routed
    /// partition's debt (sealed memtables awaiting flush, UnsortedStore
    /// merge backlog). `key = None` (batches, which may touch any
    /// partition) brakes against the worst partition.
    fn wait_for_write_room(&self, key: Option<&[u8]>) -> Result<()> {
        let mut slowed = false;
        let mut stopped = false;
        let mut stall_seq = None;
        let start = Instant::now();
        let result = loop {
            // Poisoned or ReadOnly health rejects the write with a typed
            // error (reads and scans are unaffected).
            if let Some(err) = self.maint.write_gate_error() {
                break Err(err);
            }
            let health = self.maint.health_state();
            let (level, pid, imms, unsorted) = {
                let core = self.core.read();
                let eval = |p: &Partition| {
                    let (imms, unsorted) = p.stall_debt();
                    (
                        stall_level(imms, unsorted, health, &self.opts),
                        p.meta.id,
                        imms,
                        unsorted,
                    )
                };
                match key {
                    Some(k) => eval(&core.partitions[core.route(k)]),
                    None => core
                        .partitions
                        .iter()
                        .map(eval)
                        .max_by_key(|t| t.0)
                        .unwrap_or((StallLevel::None, 0, 0, 0)),
                }
            };
            match level {
                StallLevel::None => break Ok(()),
                StallLevel::Slowdown => {
                    // Brake once, then let the write through: the goal is
                    // to shave the ingest rate, not to serialize on the
                    // background queue.
                    if !slowed {
                        slowed = true;
                        UniKvStats::add(&self.stats.stall_slowdowns, 1);
                        if stall_seq.is_none() && self.events.has_listeners() {
                            stall_seq = Some(self.events.publish(
                                EventKind::StallBegin,
                                pid,
                                None,
                                vec![],
                                vec![],
                                0,
                                "slowdown",
                            ));
                        }
                        std::thread::sleep(Duration::from_micros(self.opts.stall_sleep_micros));
                    }
                    break Ok(());
                }
                StallLevel::Stop => {
                    if !stopped {
                        stopped = true;
                        UniKvStats::add(&self.stats.stall_stops, 1);
                        if stall_seq.is_none() && self.events.has_listeners() {
                            stall_seq = Some(self.events.publish(
                                EventKind::StallBegin,
                                pid,
                                None,
                                vec![],
                                vec![],
                                0,
                                "stop",
                            ));
                        }
                    }
                    // Defensive re-schedule: the jobs that pay the debt
                    // down are normally already queued, but a dropped
                    // wakeup must not wedge the writer forever.
                    if imms > 0 {
                        self.schedule(JobKind::Flush, pid);
                    }
                    if unsorted >= self.opts.slowdown_unsorted_tables {
                        self.schedule(JobKind::Merge, pid);
                    }
                    // Fail fast when the debt cannot drain: a hard-stopped
                    // writer whose partition's flush is quarantined or
                    // waiting out a retry backoff would otherwise block
                    // for the whole backoff schedule. Raise ReadOnly (the
                    // next job completion settles it back) and reject.
                    if imms > 0 && self.maint.flush_blocked(pid) {
                        self.maint.raise_health(HealthState::ReadOnly);
                        continue; // next iteration returns the typed error
                    }
                    self.maint.wait_for_progress(Duration::from_millis(10));
                }
            }
        };
        if slowed || stopped {
            let waited = start.elapsed().as_micros() as u64;
            UniKvStats::add(&self.stats.stall_time_micros, waited);
            if let Some(begin) = stall_seq {
                self.events.publish(
                    EventKind::StallEnd,
                    0,
                    Some(begin),
                    vec![],
                    vec![],
                    waited,
                    "",
                );
            }
        }
        result
    }

    // ---------------------------------------------------------------
    // Reads
    // ---------------------------------------------------------------

    /// Surface read-path failures to the stats counters: corruption
    /// detected anywhere along a read (block CRC, value CRC, pointer
    /// decode) and I/O errors bubbling out of the environment.
    fn track_read<T>(&self, r: Result<T>) -> Result<T> {
        match &r {
            Err(Error::Corruption(_)) => UniKvStats::add(&self.stats.corruptions_detected, 1),
            Err(Error::Io(_)) => UniKvStats::add(&self.stats.read_io_errors, 1),
            _ => {}
        }
        r
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_observed(key, false).map(|(v, _)| v)
    }

    /// Point lookup returning a per-operation stage profile alongside the
    /// value. The profile's `total_micros` equals the latency recorded in
    /// the `get` histogram for this very call.
    pub fn get_profiled(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, PerfContext)> {
        self.get_observed(key, true)
    }

    fn get_observed(&self, key: &[u8], profile: bool) -> Result<(Option<Vec<u8>>, PerfContext)> {
        let t0 = self.metrics.registry.now_micros();
        if profile {
            perf::begin_at(self.metrics.registry.clone(), t0);
        }
        let r = self.track_read(self.get_impl(key));
        let t1 = self.metrics.registry.now_micros();
        let ctx = if profile {
            perf::finish_at(t1)
        } else {
            PerfContext::default()
        };
        match &r {
            Ok((value, outcome, pid)) => {
                self.metrics.eng.record_read(*outcome);
                self.metrics.eng.get_latency.record(t1.saturating_sub(t0));
                self.metrics.registry.trace_event(TraceEvent {
                    at_micros: t1,
                    dur_micros: t1.saturating_sub(t0),
                    op: TraceOp::Get,
                    outcome: *outcome,
                    partition: *pid,
                    bytes: value.as_ref().map_or(0, |v| v.len()) as u64,
                });
            }
            Err(_) => {
                self.metrics.eng.get_latency.record(t1.saturating_sub(t0));
            }
        }
        r.map(|(value, _, _)| (value, ctx))
    }

    /// Resolve `key` to its value plus the tier that answered (for the
    /// per-tier read counters and the op trace) and the partition id.
    #[allow(clippy::type_complexity)]
    fn get_impl(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, TraceOutcome, u32)> {
        let core = self.core.read();
        let snapshot = core.last_seq;
        let p = &core.partitions[core.route(key)];
        let pid = p.meta.id;
        perf::mark(PerfStage::Router);

        // 1. Memtables: the active one, then sealed ones newest-first
        //    (sealed memtables hold data newer than any flushed table).
        for mem in std::iter::once(&p.mem).chain(p.imms.iter().rev().map(|s| &s.mem)) {
            match mem.get(key, snapshot) {
                LookupResult::Value(slot) => {
                    UniKvStats::add(&self.stats.memtable_hits, 1);
                    perf::mark(PerfStage::Memtable);
                    let (v, _) = self.resolve_slot(&slot)?;
                    return Ok((Some(v), TraceOutcome::Memtable, pid));
                }
                LookupResult::Deleted => {
                    UniKvStats::add(&self.stats.memtable_hits, 1);
                    perf::mark(PerfStage::Memtable);
                    return Ok((None, TraceOutcome::Memtable, pid));
                }
                LookupResult::NotFound => {}
            }
        }
        perf::mark(PerfStage::Memtable);

        let seek_key = make_internal_key(key, snapshot, ValueType::Value);

        // 2. UnsortedStore via the hash index (or a newest-first table scan
        //    when the index is disabled — ablation E7).
        if self.opts.enable_hash_index {
            for table_id in p.index.candidates(key) {
                perf::count_hash_probes(1);
                let Some(tmeta) = p.meta.unsorted.iter().find(|t| t.number == table_id as u64)
                else {
                    continue; // stale entry for an already-merged table
                };
                perf::mark(PerfStage::IndexProbe);
                match self.probe_table(p, tmeta, &seek_key, key)? {
                    Probe::Value(slot) => {
                        let (v, _) = self.resolve_slot(&slot)?;
                        return Ok((Some(v), TraceOutcome::Unsorted, pid));
                    }
                    Probe::Tombstone => return Ok((None, TraceOutcome::Unsorted, pid)),
                    Probe::Miss => {
                        UniKvStats::add(&self.stats.index_false_positives, 1);
                    }
                }
            }
        } else {
            for tmeta in p.unsorted_newest_first() {
                if extract_user_key(&tmeta.smallest) > key || extract_user_key(&tmeta.largest) < key
                {
                    continue;
                }
                match self.probe_table(p, tmeta, &seek_key, key)? {
                    Probe::Value(slot) => {
                        let (v, _) = self.resolve_slot(&slot)?;
                        return Ok((Some(v), TraceOutcome::Unsorted, pid));
                    }
                    Probe::Tombstone => return Ok((None, TraceOutcome::Unsorted, pid)),
                    Probe::Miss => {}
                }
            }
        }

        // 3. SortedStore: binary search over boundary keys — at most one
        //    table, at most one data block. Values here may live in the
        //    value log (partial KV separation); report those as `Vlog`.
        let sorted = p.sorted_table_for(key);
        perf::mark(PerfStage::BoundarySearch);
        if let Some(tmeta) = sorted {
            match self.probe_table(p, tmeta, &seek_key, key)? {
                Probe::Value(slot) => {
                    let (v, from_vlog) = self.resolve_slot(&slot)?;
                    let outcome = if from_vlog {
                        TraceOutcome::Vlog
                    } else {
                        TraceOutcome::Sorted
                    };
                    return Ok((Some(v), outcome, pid));
                }
                Probe::Tombstone => return Ok((None, TraceOutcome::Sorted, pid)),
                Probe::Miss => {}
            }
        }
        Ok((None, TraceOutcome::Miss, pid))
    }

    fn probe_table(
        &self,
        p: &Partition,
        tmeta: &TableMeta,
        seek_key: &[u8],
        user_key: &[u8],
    ) -> Result<Probe> {
        UniKvStats::add(&self.stats.tables_checked, 1);
        let table = self.open_table(p, tmeta.number)?;
        let Some((ikey, value)) = table.get(seek_key, None)? else {
            return Ok(Probe::Miss);
        };
        if extract_user_key(&ikey) != user_key {
            return Ok(Probe::Miss);
        }
        match extract_seq_type(&ikey)?.1 {
            ValueType::Value => Ok(Probe::Value(value)),
            ValueType::Deletion => Ok(Probe::Tombstone),
        }
    }

    fn open_table(&self, p: &Partition, number: u64) -> Result<Arc<Table>> {
        if let Some(t) = p.tables_guard().get(&number) {
            return Ok(t.clone());
        }
        let path = filenames::table_file(&partition_dir(&self.root, p.meta.id), number);
        let size = self.env.file_size(&path)?;
        let table = Table::open(self.env.new_random_access(&path)?, size, self.topts.clone())?;
        p.tables_guard().insert(number, table.clone());
        Ok(table)
    }

    /// Decode a value slot; the flag reports whether the value had to be
    /// fetched from a value log (pointer) rather than stored inline.
    fn resolve_slot(&self, slot: &[u8]) -> Result<(Vec<u8>, bool)> {
        match SeparatedValue::decode(slot)? {
            SeparatedValue::Inline(v) => Ok((v, false)),
            SeparatedValue::Pointer(ptr) => Ok((self.resolver.read(&ptr)?, true)),
        }
    }

    /// Range scan: up to `limit` live entries with `key >= from`.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.scan_range(from, None, limit)
    }

    /// Range scan bounded above: up to `limit` live entries with
    /// `from <= key < end` (`end = None` means unbounded).
    pub fn scan_range(
        &self,
        from: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        let t0 = self.metrics.registry.now_micros();
        let r = self.track_read(self.scan_range_impl(from, end, limit));
        let t1 = self.metrics.registry.now_micros();
        self.metrics.eng.scans.inc();
        self.metrics.eng.scan_latency.record(t1.saturating_sub(t0));
        if let Ok(items) = &r {
            self.metrics.eng.scan_items.add(items.len() as u64);
            self.metrics.registry.trace_event(TraceEvent {
                at_micros: t1,
                dur_micros: t1.saturating_sub(t0),
                op: TraceOp::Scan,
                outcome: TraceOutcome::Done,
                partition: 0,
                bytes: items.len() as u64,
            });
        }
        r
    }

    fn scan_range_impl(
        &self,
        from: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        if let Some(end) = end {
            if end <= from {
                return Ok(Vec::new());
            }
        }
        let core = self.core.read();
        let snapshot = core.last_seq;
        let start_idx = if from.is_empty() { 0 } else { core.route(from) };

        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut slots: Vec<Vec<u8>> = Vec::new();
        'partitions: for p in &core.partitions[start_idx..] {
            if keys.len() >= limit {
                break;
            }
            if let Some(end) = end {
                if p.meta.lo.as_slice() >= end {
                    break;
                }
            }
            let seek_from = if from > p.meta.lo.as_slice() {
                from
            } else {
                p.meta.lo.as_slice()
            };
            let mut iter = self.partition_iter(p)?;
            iter.seek(&make_internal_key(seek_from, snapshot, ValueType::Value))?;
            let mut current_key: Option<Vec<u8>> = None;
            while iter.valid() && keys.len() < limit {
                let ikey = iter.ikey();
                let user_key = extract_user_key(ikey);
                if let Some(end) = end {
                    if user_key >= end {
                        break 'partitions;
                    }
                }
                // Stay within the partition's range (lazy-split tables
                // cannot leak keys, but the memtable could in theory).
                if let Some(hi) = &p.meta.hi {
                    if user_key >= hi.as_slice() {
                        break;
                    }
                }
                let (seq, t) = extract_seq_type(ikey)?;
                if current_key.as_deref() != Some(user_key) && seq <= snapshot {
                    current_key = Some(user_key.to_vec());
                    if t == ValueType::Value {
                        keys.push(user_key.to_vec());
                        slots.push(iter.value().to_vec());
                    }
                }
                iter.next()?;
            }
        }
        // The read lock stays held through value resolution: dropping it
        // here would let a concurrent GC delete the log files the
        // collected pointers reference.

        // Resolve value slots; pointers fetched in parallel with readahead
        // (scan optimization; sequential when disabled).
        let mut out_values: Vec<Option<Vec<u8>>> = vec![None; slots.len()];
        let mut jobs = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            match SeparatedValue::decode(slot)? {
                SeparatedValue::Inline(v) => out_values[i] = Some(v),
                SeparatedValue::Pointer(ptr) => jobs.push((i, ptr)),
            }
        }
        let parallel = self.opts.enable_scan_optimization;
        self.metrics.scan_vlog_fetches.add(jobs.len() as u64);
        self.fetch_pool
            .fetch(&self.resolver, &jobs, &mut out_values, parallel, parallel)?;

        Ok(keys
            .into_iter()
            .zip(out_values)
            .map(|(key, value)| ScanItem {
                key,
                value: value.expect("every slot resolved"),
            })
            .collect())
    }

    /// A streaming iterator over the whole database at the current
    /// sequence number — the paper's seek()/next() scan interface. The
    /// iterator holds table and memtable handles for every partition, so
    /// it keeps reading a consistent snapshot while merges, GC, and
    /// splits proceed.
    pub fn iter(&self) -> Result<crate::iter::UniKvIterator> {
        let core = self.core.read();
        let snapshot = core.last_seq;
        let mut parts = Vec::with_capacity(core.partitions.len());
        let mut pinned = std::collections::HashMap::new();
        for p in &core.partitions {
            parts.push(crate::iter::PartitionCursor {
                iter: self.partition_iter(p)?,
                lo: p.meta.lo.clone(),
                hi: p.meta.hi.clone(),
            });
            // Pin every log the partition's pointers may reference, so GC
            // deleting files cannot invalidate this snapshot.
            let refs = p.meta.own_logs.iter().map(|&n| (p.meta.id, n)).chain(
                p.meta
                    .inherited_logs
                    .iter()
                    .map(|r| (r.partition, r.log_number)),
            );
            for (pid, log) in refs {
                if let std::collections::hash_map::Entry::Vacant(e) = pinned.entry((pid, log)) {
                    let path = partition_dir(&self.root, pid).join(vlog_file_name(log));
                    e.insert(self.env.new_random_access(&path)?);
                }
            }
        }
        Ok(crate::iter::UniKvIterator::new(
            parts,
            snapshot,
            self.resolver.clone(),
            pinned,
        ))
    }

    /// Merging iterator over one partition (memtable + UnsortedStore
    /// tables + the SortedStore run).
    fn partition_iter(&self, p: &Partition) -> Result<MergingIterator> {
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(MemTableSource::new(p.mem.clone())));
        for sealed in &p.imms {
            children.push(Box::new(MemTableSource::new(sealed.mem.clone())));
        }
        for tmeta in &p.meta.unsorted {
            let table = self.open_table(p, tmeta.number)?;
            children.push(Box::new(TableSource::new(&table)));
        }
        let mut run = Vec::with_capacity(p.meta.sorted.len());
        for tmeta in &p.meta.sorted {
            run.push((tmeta.largest.clone(), self.open_table(p, tmeta.number)?));
        }
        children.push(Box::new(ConcatSource::new(run)));
        Ok(MergingIterator::new(children))
    }

    // ---------------------------------------------------------------
    // Structural operations
    // ---------------------------------------------------------------

    fn commit_meta(&self, core: &DbCore) -> Result<()> {
        let r = self
            .env
            .write_atomic(&self.root.join("META"), &core.to_meta().encode());
        if r.is_err() {
            COMMIT_FAILED.with(|c| c.set(true));
        }
        r
    }

    /// Run post-flush triggers on partition `pidx`: size-based merge, full
    /// merge, GC, split. `cause` is the event seq of whatever ran last
    /// (usually the triggering flush's finish); each completed step becomes
    /// the cause of the next, chaining seal→flush→merge→GC causally.
    fn run_triggers(&self, core: &mut DbCore, pidx: usize, cause: Option<u64>) -> Result<()> {
        let (over_unsorted, over_scan_merge) = {
            let p = &core.partitions[pidx];
            (
                p.unsorted_bytes() >= self.opts.unsorted_limit_bytes,
                self.opts.enable_scan_optimization
                    && p.meta.unsorted.len() >= self.opts.scan_merge_limit,
            )
        };
        let mut cause = cause;
        if over_unsorted {
            if let Some(fin) = self.merge_partition(core, pidx, cause)? {
                cause = Some(fin);
            }
        } else if over_scan_merge {
            if let Some(fin) = self.scan_merge_partition(core, pidx, cause)? {
                cause = Some(fin);
            }
        }
        self.maybe_gc(core, pidx, cause)?;
        self.maybe_split(core, pidx, cause)?;
        Ok(())
    }

    /// Background-mode counterpart of [`Self::run_triggers`]: enqueue jobs
    /// for whatever thresholds partition `pidx` currently exceeds. Each
    /// job re-checks its trigger when it runs, so over-scheduling is
    /// harmless (and duplicates collapse in the queue).
    fn schedule_triggers(&self, core: &DbCore, pidx: usize, cause: Option<u64>) {
        let p = &core.partitions[pidx];
        let pid = p.meta.id;
        if !p.imms.is_empty() {
            // A flush's cause travels with the sealed memtable itself.
            self.schedule(JobKind::Flush, pid);
        }
        if p.unsorted_bytes() >= self.opts.unsorted_limit_bytes {
            self.note_job_cause(JobKind::Merge, pid, cause);
            self.schedule(JobKind::Merge, pid);
        } else if self.opts.enable_scan_optimization
            && p.meta.unsorted.len() >= self.opts.scan_merge_limit
        {
            self.note_job_cause(JobKind::ScanMerge, pid, cause);
            self.schedule(JobKind::ScanMerge, pid);
        }
        if self.gc_due(p) {
            self.note_job_cause(JobKind::Gc, pid, cause);
            self.schedule(JobKind::Gc, pid);
        }
        if self.opts.enable_partitioning && p.logical_size() > self.opts.partition_size_limit {
            self.note_job_cause(JobKind::Split, pid, cause);
            self.schedule(JobKind::Split, pid);
        }
    }

    /// Seal the active memtable for background flushing: the frozen
    /// memtable stays visible to reads via `imms`, its WAL is recorded in
    /// `sealed_wals` and committed to META (so recovery replays it until
    /// the flush lands), and writes continue on a fresh memtable + WAL.
    fn seal_memtable(&self, core: &mut DbCore, pidx: usize) -> Result<()> {
        let new_wal = core.alloc_file();
        let p = &mut core.partitions[pidx];
        if p.mem.is_empty() {
            return Ok(());
        }
        let mem_bytes = p.mem.approximate_memory_usage() as u64;
        self.sync.hit("seal:begin")?;
        p.wal.sync()?;
        let dir = partition_dir(&self.root, p.meta.id);
        // Create the replacement WAL before touching any state: if the
        // create fails, the memtable and its WAL are still fully intact.
        let new_writer =
            LogWriter::new(self.env.new_writable(&filenames::wal_file(&dir, new_wal))?)
                .with_metrics(self.metrics.wal.clone());
        let sealed = std::mem::replace(&mut p.mem, Arc::new(MemTable::new()));
        let old_wal = p.meta.wal_number;
        p.wal = new_writer;
        p.meta.wal_number = new_wal;
        p.meta.sealed_wals.push(old_wal);
        p.imms.push(SealedMem {
            wal_number: old_wal,
            mem: sealed,
            cause: None,
        });
        self.sync.hit("seal:commit")?;
        self.commit_meta(core)?;
        let p = &mut core.partitions[pidx];
        let seq = self.events.publish(
            EventKind::Seal,
            p.meta.id,
            None,
            vec![old_wal],
            vec![new_wal],
            mem_bytes,
            "",
        );
        if let Some(s) = p.imms.last_mut() {
            s.cause = Some(seq);
        }
        Ok(())
    }

    /// Write a memtable out as one UnsortedStore table, deduping to the
    /// newest version per user key. Takes no locks: background flushes
    /// call it with the core lock released. Returns the table metadata
    /// and the kept user keys (for hash-index insertion at install time).
    fn build_flush_table(
        &self,
        dir: &Path,
        table_number: u64,
        mem: Arc<MemTable>,
    ) -> Result<(TableMeta, Vec<Vec<u8>>)> {
        self.sync.hit("flush:build")?;
        let mut builder = TableBuilder::new(
            self.env
                .new_writable(&filenames::table_file(dir, table_number))?,
            self.table_builder_opts(),
        );
        let mut keys = Vec::new();
        let mut iter = MemTableSource::new(mem);
        iter.seek_to_first()?;
        let mut last_user_key: Option<Vec<u8>> = None;
        while iter.valid() {
            let user_key = extract_user_key(iter.ikey());
            if last_user_key.as_deref() != Some(user_key) {
                last_user_key = Some(user_key.to_vec());
                builder.add(iter.ikey(), iter.value())?;
                if self.opts.enable_hash_index {
                    keys.push(user_key.to_vec());
                }
            }
            iter.next()?;
        }
        let props = builder.finish()?;
        Ok((
            TableMeta {
                number: table_number,
                size: props.file_size,
                smallest: props.smallest,
                largest: props.largest,
            },
            keys,
        ))
    }

    /// Install a flushed table under the write lock: append it to the
    /// UnsortedStore, feed the hash index, retire the flushed WAL and pop
    /// the matching sealed memtable, checkpoint the index on cadence, and
    /// commit META.
    fn install_flush(
        &self,
        core: &mut DbCore,
        pidx: usize,
        tmeta: TableMeta,
        keys: &[Vec<u8>],
        old_wal: u64,
        flush_start: Option<u64>,
    ) -> Result<()> {
        self.sync.hit("flush:install")?;
        let table_number = tmeta.number;
        UniKvStats::add(&self.stats.bytes_flushed, tmeta.size);
        UniKvStats::add(&self.stats.flushes, 1);
        let p = &mut core.partitions[pidx];
        p.meta.unsorted.push(tmeta);
        if self.opts.enable_hash_index {
            for key in keys {
                p.index.insert(key, table_number as u32);
            }
        }
        p.imms.retain(|s| s.wal_number != old_wal);
        p.meta.sealed_wals.retain(|w| *w != old_wal);

        // Periodic hash-index checkpoint (paper: every unsorted_limit/2
        // flushes).
        let dir = partition_dir(&self.root, p.meta.id);
        p.flushes_since_ckpt += 1;
        if self.opts.enable_hash_index && checkpoint_due(&self.opts, p.flushes_since_ckpt) {
            let covered: Vec<u64> = p.meta.unsorted.iter().map(|t| t.number).collect();
            self.env.write_atomic(
                &dir.join(INDEX_CKPT),
                &encode_index_ckpt(&covered, &p.index),
            )?;
            p.meta.ckpt_tables = covered;
            p.flushes_since_ckpt = 0;
        }

        self.sync.hit("flush:commit")?;
        self.commit_meta(core)?;
        self.sync.hit("flush:cleanup")?;
        // Old WAL is obsolete once META no longer names it.
        let p = &core.partitions[pidx];
        let pid = p.meta.id;
        let dir = partition_dir(&self.root, pid);
        let old = filenames::wal_file(&dir, old_wal);
        if self.env.file_exists(&old) {
            self.env.delete_file(&old)?;
            self.events.publish(
                EventKind::WalRetired,
                pid,
                flush_start,
                vec![old_wal],
                vec![],
                0,
                "",
            );
        }
        self.maint.notify_progress();
        Ok(())
    }

    /// Flush the partition's memtable into a new UnsortedStore table.
    /// Inline flushes go through the same seal-then-drain protocol as
    /// background mode: the active memtable is sealed (its WAL enters
    /// `sealed_wals` and META commits) *before* the fallible table build,
    /// so an aborted build — transient I/O error or injected fault — leaves
    /// both the in-memory and the committed state referencing every acked
    /// byte. Sealed memtables drain oldest first, so newer data keeps
    /// shadowing older data.
    fn flush_partition(&self, core: &mut DbCore, pidx: usize) -> Result<Option<u64>> {
        if !core.partitions[pidx].mem.is_empty() {
            self.seal_memtable(core, pidx)?;
        }
        let mut last_finish = None;
        while !core.partitions[pidx].imms.is_empty() {
            let t0 = self.metrics.registry.now_micros();
            let table_number = core.alloc_file();
            let sealed = core.partitions[pidx].imms[0].clone();
            let pid = core.partitions[pidx].meta.id;
            let dir = partition_dir(&self.root, pid);
            let scope = OpScope::begin(
                &self.events,
                EventKind::FlushStart,
                EventKind::FlushAbort,
                pid,
                sealed.cause,
                vec![sealed.wal_number],
                0,
            );
            let (tmeta, keys) = self.build_flush_table(&dir, table_number, sealed.mem)?;
            let bytes = tmeta.size;
            self.install_flush(
                core,
                pidx,
                tmeta,
                &keys,
                sealed.wal_number,
                Some(scope.start_seq),
            )?;
            last_finish = Some(scope.finish(EventKind::FlushFinish, vec![table_number], bytes, ""));
            self.record_maint(TraceOp::Flush, t0, pid, bytes);
        }
        Ok(last_finish)
    }

    /// Record one completed maintenance operation: a latency sample in the
    /// op's histogram and a `Done` trace event.
    fn record_maint(&self, op: TraceOp, t0: u64, pid: u32, bytes: u64) {
        let t1 = self.metrics.registry.now_micros();
        self.metrics
            .eng
            .maint_histogram(op)
            .record(t1.saturating_sub(t0));
        self.metrics.registry.trace_event(TraceEvent {
            at_micros: t1,
            dur_micros: t1.saturating_sub(t0),
            op,
            outcome: TraceOutcome::Done,
            partition: pid,
            bytes,
        });
    }

    fn table_builder_opts(&self) -> TableBuilderOptions {
        TableBuilderOptions {
            block_size: self.opts.block_size,
            bloom_bits_per_key: None, // UniKV removes Bloom filters
            ..Default::default()
        }
    }

    /// Merge the UnsortedStore into the SortedStore with partial KV
    /// separation: fresh (inline) values move to a new value log; values
    /// already separated keep their pointers and are NOT rewritten.
    fn merge_partition(
        &self,
        core: &mut DbCore,
        pidx: usize,
        cause: Option<u64>,
    ) -> Result<Option<u64>> {
        let start_file = core.next_file;
        let mut used = 0u64;
        let DbCore {
            partitions,
            next_file,
            ..
        } = core;
        let p = &mut partitions[pidx];
        if p.meta.unsorted.is_empty() && p.meta.sorted.is_empty() {
            return Ok(None);
        }
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("merge:begin")?;
        let dir = partition_dir(&self.root, p.meta.id);
        let input_bytes = p.unsorted_bytes() + p.sorted_bytes();
        let input_tables: Vec<u64> = p
            .meta
            .unsorted
            .iter()
            .chain(p.meta.sorted.iter())
            .map(|t| t.number)
            .collect();
        let scope = OpScope::begin(
            &self.events,
            EventKind::MergeStart,
            EventKind::MergeAbort,
            p.meta.id,
            cause,
            input_tables,
            input_bytes,
        );

        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for tmeta in &p.meta.unsorted {
            let table = self.open_table(p, tmeta.number)?;
            children.push(Box::new(TableSource::new(&table)));
        }
        let mut run = Vec::with_capacity(p.meta.sorted.len());
        for tmeta in &p.meta.sorted {
            run.push((tmeta.largest.clone(), self.open_table(p, tmeta.number)?));
        }
        children.push(Box::new(ConcatSource::new(run)));
        let mut iter = MergingIterator::new(children);
        iter.seek_to_first()?;

        if self.opts.enable_kv_separation {
            p.vlog.lock().rotate()?; // new values go to a freshly created log
        }
        let mut new_tables: Vec<TableMeta> = Vec::new();
        let mut builder: Option<TableBuilder> = None;
        let mut written = 0u64;
        let mut live_value_bytes = 0u64;
        let mut last_user_key: Option<Vec<u8>> = None;
        while iter.valid() {
            let ikey = iter.ikey().to_vec();
            let user_key = extract_user_key(&ikey);
            let (_, vt) = extract_seq_type(&ikey)?;
            let is_newest = last_user_key.as_deref() != Some(user_key);
            if is_newest {
                last_user_key = Some(user_key.to_vec());
                // The SortedStore is the bottom tier: tombstones have done
                // their shadowing job and are dropped here.
                if vt == ValueType::Value {
                    let slot = match SeparatedValue::decode(iter.value())? {
                        SeparatedValue::Inline(v) if self.opts.enable_kv_separation => {
                            let ptr = p.vlog.lock().append(&v)?;
                            written += v.len() as u64;
                            live_value_bytes += ptr.length as u64;
                            SeparatedValue::Pointer(ptr)
                        }
                        inline @ SeparatedValue::Inline(_) => inline,
                        SeparatedValue::Pointer(ptr) => {
                            live_value_bytes += ptr.length as u64;
                            SeparatedValue::Pointer(ptr)
                        }
                    };
                    if builder.is_none() {
                        let number = start_file + used;
                        used += 1;
                        builder = Some(TableBuilder::new(
                            self.env
                                .new_writable(&filenames::table_file(&dir, number))?,
                            self.table_builder_opts(),
                        ));
                        new_tables.push(TableMeta {
                            number,
                            size: 0,
                            smallest: Vec::new(),
                            largest: Vec::new(),
                        });
                    }
                    let b = builder.as_mut().expect("created above");
                    b.add(&ikey, &slot.encode())?;
                    if b.estimated_size() >= self.opts.table_size as u64 {
                        let props = builder.take().expect("present").finish()?;
                        written += props.file_size;
                        let t = new_tables.last_mut().expect("pushed");
                        t.size = props.file_size;
                        t.smallest = props.smallest;
                        t.largest = props.largest;
                    }
                }
            }
            iter.next()?;
        }
        if let Some(b) = builder.take() {
            let props = b.finish()?;
            written += props.file_size;
            let t = new_tables.last_mut().expect("pushed");
            t.size = props.file_size;
            t.smallest = props.smallest;
            t.largest = props.largest;
        }
        *next_file = start_file + used;
        p.vlog.lock().sync()?;
        self.sync.hit("merge:build")?;

        UniKvStats::add(&self.stats.merge_bytes_read, input_bytes);
        UniKvStats::add(&self.stats.merge_bytes_written, written);
        UniKvStats::add(&self.stats.merges, 1);

        // Swap the tiers: UnsortedStore empties; the hash index resets.
        let output_tables: Vec<u64> = new_tables.iter().map(|t| t.number).collect();
        let old_tables: Vec<TableMeta> = p
            .meta
            .unsorted
            .drain(..)
            .chain(p.meta.sorted.drain(..))
            .collect();
        p.meta.sorted = new_tables;
        p.meta.own_logs = p.vlog.lock().log_numbers();
        p.meta.live_value_bytes = live_value_bytes;
        p.index.clear();
        p.meta.ckpt_tables.clear();
        p.flushes_since_ckpt = 0;
        if self.opts.enable_hash_index {
            self.env
                .write_atomic(&dir.join(INDEX_CKPT), &encode_index_ckpt(&[], &p.index))?;
        }

        self.sync.hit("merge:commit")?;
        self.commit_meta(core)?;
        // META committed: the merge is durable, so the finish event fires
        // here — a cleanup failure below must not read as an aborted merge.
        let fin = scope.finish(EventKind::MergeFinish, output_tables, written, "");
        self.sync.hit("merge:cleanup")?;
        let p = &mut core.partitions[pidx];
        let dir = partition_dir(&self.root, p.meta.id);
        for t in old_tables {
            p.evict_table(t.number);
            self.env
                .delete_file(&filenames::table_file(&dir, t.number))?;
        }
        self.record_maint(TraceOp::Merge, t0, core.partitions[pidx].meta.id, written);
        Ok(Some(fin))
    }

    /// Size-based merge (scan optimization): collapse all UnsortedStore
    /// tables into one globally sorted UnsortedStore table — values stay
    /// inline, the tier stays hash-indexed, scans stop paying one seek per
    /// overlapping table.
    fn scan_merge_partition(
        &self,
        core: &mut DbCore,
        pidx: usize,
        cause: Option<u64>,
    ) -> Result<Option<u64>> {
        let table_number = core.alloc_file();
        let p = &mut core.partitions[pidx];
        if p.meta.unsorted.len() < 2 {
            return Ok(None);
        }
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("scanmerge:begin")?;
        let dir = partition_dir(&self.root, p.meta.id);
        let input_tables: Vec<u64> = p.meta.unsorted.iter().map(|t| t.number).collect();
        let input_bytes = p.unsorted_bytes();
        let scope = OpScope::begin(
            &self.events,
            EventKind::ScanMergeStart,
            EventKind::ScanMergeAbort,
            p.meta.id,
            cause,
            input_tables,
            input_bytes,
        );

        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for tmeta in &p.meta.unsorted {
            let table = self.open_table(p, tmeta.number)?;
            children.push(Box::new(TableSource::new(&table)));
        }
        let mut iter = MergingIterator::new(children);
        iter.seek_to_first()?;

        let mut builder = TableBuilder::new(
            self.env
                .new_writable(&filenames::table_file(&dir, table_number))?,
            self.table_builder_opts(),
        );
        let mut new_index =
            TwoLevelHashIndex::with_capacity(index_capacity(&self.opts), self.opts.num_hashes);
        let mut last_user_key: Option<Vec<u8>> = None;
        while iter.valid() {
            let user_key = extract_user_key(iter.ikey());
            if last_user_key.as_deref() != Some(user_key) {
                last_user_key = Some(user_key.to_vec());
                // Tombstones stay: the SortedStore below still holds older
                // versions they must shadow.
                builder.add(iter.ikey(), iter.value())?;
                if self.opts.enable_hash_index {
                    new_index.insert(user_key, table_number as u32);
                }
            }
            iter.next()?;
        }
        let props = builder.finish()?;
        self.sync.hit("scanmerge:build")?;
        UniKvStats::add(&self.stats.merge_bytes_written, props.file_size);
        UniKvStats::add(&self.stats.scan_merges, 1);

        let old_tables = std::mem::replace(
            &mut p.meta.unsorted,
            vec![TableMeta {
                number: table_number,
                size: props.file_size,
                smallest: props.smallest,
                largest: props.largest,
            }],
        );
        p.index = new_index;
        if self.opts.enable_hash_index {
            self.env.write_atomic(
                &dir.join(INDEX_CKPT),
                &encode_index_ckpt(&[table_number], &p.index),
            )?;
            p.meta.ckpt_tables = vec![table_number];
            p.flushes_since_ckpt = 0;
        }

        self.sync.hit("scanmerge:commit")?;
        self.commit_meta(core)?;
        let merged_size = core.partitions[pidx].meta.unsorted[0].size;
        let fin = scope.finish(
            EventKind::ScanMergeFinish,
            vec![table_number],
            merged_size,
            "",
        );
        self.sync.hit("scanmerge:cleanup")?;
        let p = &mut core.partitions[pidx];
        let dir = partition_dir(&self.root, p.meta.id);
        for t in old_tables {
            p.evict_table(t.number);
            self.env
                .delete_file(&filenames::table_file(&dir, t.number))?;
        }
        let pid = core.partitions[pidx].meta.id;
        self.record_maint(TraceOp::ScanMerge, t0, pid, merged_size);
        Ok(Some(fin))
    }

    /// The GC trigger condition for one partition.
    fn gc_due(&self, p: &Partition) -> bool {
        let mut total = p.vlog.lock().total_size();
        // Logs shared with a split sibling are charged at 50%: roughly
        // half their bytes belong to this partition, so the garbage
        // ratio stays meaningful and a fresh split does not look like
        // instant garbage. The lazy value split rides on the first GC
        // that real churn triggers, as the paper intends.
        for r in &p.meta.inherited_logs {
            let path = partition_dir(&self.root, r.partition).join(vlog_file_name(r.log_number));
            total += self.env.file_size(&path).unwrap_or(0) / 2;
        }
        if total < self.opts.gc_min_bytes {
            return false;
        }
        let garbage = total.saturating_sub(p.meta.live_value_bytes);
        garbage as f64 / total.max(1) as f64 >= self.opts.gc_garbage_ratio
    }

    fn maybe_gc(&self, core: &mut DbCore, pidx: usize, cause: Option<u64>) -> Result<()> {
        if self.gc_due(&core.partitions[pidx]) {
            self.gc_partition(core, pidx, cause)?;
        }
        Ok(())
    }

    /// Garbage-collect the partition's value logs: rewrite every live
    /// value (identified by scanning the SortedStore keys+pointers — no
    /// index queries, unlike WiscKey) into fresh logs, rewrite the
    /// SortedStore with the new pointers, drop old and inherited logs.
    /// Also performs the lazy value split after a partition split.
    fn gc_partition(&self, core: &mut DbCore, pidx: usize, cause: Option<u64>) -> Result<()> {
        let start_file = core.next_file;
        let mut used = 0u64;
        let DbCore {
            partitions,
            next_file,
            ..
        } = core;
        let p = &mut partitions[pidx];
        if p.meta.sorted.is_empty() && p.meta.inherited_logs.is_empty() {
            // No pointers can exist; every own log is garbage.
            let dead: Vec<u64> = p.vlog.lock().log_numbers();
            if !dead.is_empty() {
                for n in &dead {
                    self.resolver.evict(p.meta.id, *n);
                }
                p.vlog.lock().delete_logs(&dead)?;
                p.meta.own_logs.clear();
                self.commit_meta(core)?;
            }
            return Ok(());
        }
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("gc:begin")?;
        let dir = partition_dir(&self.root, p.meta.id);
        let old_logs: Vec<u64> = p.vlog.lock().log_numbers();
        let scope = OpScope::begin(
            &self.events,
            EventKind::GcStart,
            EventKind::GcAbort,
            p.meta.id,
            cause,
            old_logs.clone(),
            p.vlog.lock().total_size(),
        );

        // Step 1+2 of the paper's protocol: identify valid values by
        // scanning the SortedStore in key order, read them, and append to
        // a newly created log.
        p.vlog.lock().rotate()?;
        let mut run = Vec::with_capacity(p.meta.sorted.len());
        for tmeta in &p.meta.sorted {
            run.push((tmeta.largest.clone(), self.open_table(p, tmeta.number)?));
        }
        let mut iter = ConcatSource::new(run);
        iter.seek_to_first()?;

        let mut builder: Option<TableBuilder> = None;
        let mut new_tables: Vec<TableMeta> = Vec::new();
        let mut written = 0u64;
        let mut live_value_bytes = 0u64;
        while iter.valid() {
            let ikey = iter.ikey().to_vec();
            let slot = match SeparatedValue::decode(iter.value())? {
                SeparatedValue::Pointer(ptr) => {
                    let value = self.resolver.read(&ptr)?;
                    let new_ptr = p.vlog.lock().append(&value)?;
                    written += value.len() as u64;
                    live_value_bytes += new_ptr.length as u64;
                    SeparatedValue::Pointer(new_ptr)
                }
                inline => inline,
            };
            if builder.is_none() {
                let number = start_file + used;
                used += 1;
                builder = Some(TableBuilder::new(
                    self.env
                        .new_writable(&filenames::table_file(&dir, number))?,
                    self.table_builder_opts(),
                ));
                new_tables.push(TableMeta {
                    number,
                    size: 0,
                    smallest: Vec::new(),
                    largest: Vec::new(),
                });
            }
            let b = builder.as_mut().expect("created above");
            // Step 3: write keys with their new pointers back to SSTables.
            b.add(&ikey, &slot.encode())?;
            if b.estimated_size() >= self.opts.table_size as u64 {
                let props = builder.take().expect("present").finish()?;
                written += props.file_size;
                let t = new_tables.last_mut().expect("pushed");
                t.size = props.file_size;
                t.smallest = props.smallest;
                t.largest = props.largest;
            }
            iter.next()?;
        }
        if let Some(b) = builder.take() {
            let props = b.finish()?;
            written += props.file_size;
            let t = new_tables.last_mut().expect("pushed");
            t.size = props.file_size;
            t.smallest = props.smallest;
            t.largest = props.largest;
        }
        *next_file = start_file + used;
        p.vlog.lock().sync()?;
        self.sync.hit("gc:build")?;

        UniKvStats::add(&self.stats.gc_bytes_written, written);
        UniKvStats::add(&self.stats.gcs, 1);

        // All in-memory meta mutations happen together, only after every
        // fallible build step succeeded: an abort above (injected fault or
        // real I/O error) must leave `p.meta` exactly as committed, or a
        // later successful commit would persist a half-applied GC — e.g.
        // dropping `inherited_logs` that rewritten pointers still need,
        // turning those logs into orphans deleted on the next open.
        let old_tables = std::mem::replace(&mut p.meta.sorted, new_tables);
        let old_inherited = std::mem::take(&mut p.meta.inherited_logs);
        let new_logs: Vec<u64> = p
            .vlog
            .lock()
            .log_numbers()
            .into_iter()
            .filter(|n| !old_logs.contains(n))
            .collect();
        p.meta.own_logs = new_logs;
        p.meta.live_value_bytes = live_value_bytes;

        // Step 4: the META commit is the GC_done mark; afterwards old logs
        // and tables may be deleted.
        self.sync.hit("gc:commit")?;
        self.commit_meta(core)?;
        let new_log_numbers = core.partitions[pidx].meta.own_logs.clone();
        scope.finish(EventKind::GcFinish, new_log_numbers, written, "");
        self.sync.hit("gc:cleanup")?;
        let p = &mut core.partitions[pidx];
        let dir = partition_dir(&self.root, p.meta.id);
        for t in old_tables {
            p.evict_table(t.number);
            self.env
                .delete_file(&filenames::table_file(&dir, t.number))?;
        }
        for n in &old_logs {
            self.resolver.evict(p.meta.id, *n);
        }
        let p = &mut core.partitions[pidx];
        p.vlog.lock().delete_logs(&old_logs)?;
        self.sweep_shared_logs(core, &old_inherited)?;
        self.record_maint(TraceOp::Gc, t0, core.partitions[pidx].meta.id, written);
        Ok(())
    }

    /// Delete formerly-inherited log files that no partition references
    /// anymore.
    fn sweep_shared_logs(&self, core: &DbCore, candidates: &[LogRef]) -> Result<()> {
        for r in candidates {
            let still_referenced = core.partitions.iter().any(|p| {
                (p.meta.id == r.partition && p.meta.own_logs.contains(&r.log_number))
                    || p.meta.inherited_logs.contains(r)
            });
            if !still_referenced {
                let path =
                    partition_dir(&self.root, r.partition).join(vlog_file_name(r.log_number));
                if self.env.file_exists(&path) {
                    self.resolver.evict(r.partition, r.log_number);
                    self.env.delete_file(&path)?;
                }
            }
        }
        Ok(())
    }

    fn maybe_split(&self, core: &mut DbCore, pidx: usize, cause: Option<u64>) -> Result<()> {
        if !self.opts.enable_partitioning {
            return Ok(());
        }
        if core.partitions[pidx].logical_size() <= self.opts.partition_size_limit {
            return Ok(());
        }
        self.split_partition(core, pidx, cause).map(|_| ())
    }

    /// Dynamic range partitioning: split partition `pidx` at its median
    /// key into two partitions with disjoint ranges. Keys are split
    /// eagerly (full merge-sort); values already in logs are shared with
    /// the children and split lazily by their future GCs.
    fn split_partition(
        &self,
        core: &mut DbCore,
        pidx: usize,
        cause: Option<u64>,
    ) -> Result<Option<u64>> {
        // The paper locks the partition and flushes its memtable first; our
        // global write lock subsumes the partition lock. Sealed memtables
        // (background mode) drain here too — the split passes below only
        // read tables.
        if !core.partitions[pidx].mem.is_empty() || !core.partitions[pidx].imms.is_empty() {
            self.flush_partition(core, pidx)?;
        }

        // Pass 1: count live entries to find the median split point.
        let total = {
            let p = &core.partitions[pidx];
            let mut iter = self.merged_partition_tables_iter(p)?;
            iter.seek_to_first()?;
            let mut count = 0u64;
            let mut last_user_key: Option<Vec<u8>> = None;
            while iter.valid() {
                let user_key = extract_user_key(iter.ikey());
                let (_, vt) = extract_seq_type(iter.ikey())?;
                if last_user_key.as_deref() != Some(user_key) {
                    last_user_key = Some(user_key.to_vec());
                    if vt == ValueType::Value {
                        count += 1;
                    }
                }
                iter.next()?;
            }
            count
        };
        if total < 2 {
            return Ok(None); // cannot split fewer than two keys
        }
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("split:begin")?;
        let half = total / 2;

        // Allocate children. Table numbers for the split outputs come from
        // a local bump allocator reconciled into `core.next_file` after the
        // pass (the pass holds an immutable borrow of the parent).
        let left_id = core.next_partition;
        let right_id = core.next_partition + 1;
        core.next_partition += 2;
        let left_wal = core.alloc_file();
        let right_wal = core.alloc_file();
        let split_file_start = core.next_file;
        let mut split_files_used = 0u64;

        let parent_lo = core.partitions[pidx].meta.lo.clone();
        let parent_hi = core.partitions[pidx].meta.hi.clone();
        let parent_id = core.partitions[pidx].meta.id;
        let parent_logs: Vec<LogRef> = {
            let p = &core.partitions[pidx];
            p.meta
                .own_logs
                .iter()
                .map(|&n| LogRef {
                    partition: parent_id,
                    log_number: n,
                })
                .chain(p.meta.inherited_logs.iter().copied())
                .collect()
        };
        let parent_tables: Vec<u64> = {
            let p = &core.partitions[pidx];
            p.meta
                .unsorted
                .iter()
                .chain(p.meta.sorted.iter())
                .map(|t| t.number)
                .collect()
        };
        let scope = OpScope::begin(
            &self.events,
            EventKind::SplitStart,
            EventKind::SplitAbort,
            parent_id,
            cause,
            parent_tables,
            0,
        );

        // Pass 2: stream entries into the two children.
        struct ChildBuild {
            id: u32,
            dir: PathBuf,
            vlog: ValueLog,
            tables: Vec<TableMeta>,
            builder: Option<TableBuilder>,
            live_value_bytes: u64,
            inherited: HashSet<LogRef>,
            written: u64,
        }
        let mk_child = |id: u32| -> Result<ChildBuild> {
            let dir = partition_dir(&self.root, id);
            self.env.create_dir_all(&dir)?;
            let mut vlog =
                ValueLog::open(self.env.clone(), dir.clone(), id, self.opts.max_log_size)?;
            vlog.set_metrics(self.metrics.vlog.clone());
            Ok(ChildBuild {
                id,
                dir,
                vlog,
                tables: Vec::new(),
                builder: None,
                live_value_bytes: 0,
                inherited: HashSet::new(),
                written: 0,
            })
        };
        let mut left = mk_child(left_id)?;
        let mut right = mk_child(right_id)?;
        let mut boundary: Option<Vec<u8>> = None;

        {
            let p = &core.partitions[pidx];
            let mut iter = self.merged_partition_tables_iter(p)?;
            iter.seek_to_first()?;
            let mut last_user_key: Option<Vec<u8>> = None;
            let mut kept = 0u64;
            while iter.valid() {
                let ikey = iter.ikey().to_vec();
                let user_key = extract_user_key(&ikey).to_vec();
                let (_, vt) = extract_seq_type(&ikey)?;
                let is_newest = last_user_key.as_deref() != Some(user_key.as_slice());
                if is_newest {
                    last_user_key = Some(user_key.clone());
                    if vt == ValueType::Value {
                        let child = if kept < half {
                            &mut left
                        } else {
                            if boundary.is_none() {
                                boundary = Some(user_key.clone());
                            }
                            &mut right
                        };
                        kept += 1;
                        let slot = match SeparatedValue::decode(iter.value())? {
                            // Paper: UnsortedStore (inline) values are
                            // split eagerly into each child's new log...
                            SeparatedValue::Inline(v) if self.opts.enable_kv_separation => {
                                let ptr = child.vlog.append(&v)?;
                                child.written += v.len() as u64;
                                child.live_value_bytes += ptr.length as u64;
                                SeparatedValue::Pointer(ptr)
                            }
                            inline @ SeparatedValue::Inline(_) => inline,
                            // ...while already-separated values stay in the
                            // parent's logs, shared until lazy GC.
                            SeparatedValue::Pointer(ptr) => {
                                child.inherited.insert(LogRef {
                                    partition: ptr.partition,
                                    log_number: ptr.log_number,
                                });
                                child.live_value_bytes += ptr.length as u64;
                                SeparatedValue::Pointer(ptr)
                            }
                        };
                        if child.builder.is_none() {
                            let number = split_file_start + split_files_used;
                            split_files_used += 1;
                            child.builder = Some(TableBuilder::new(
                                self.env
                                    .new_writable(&filenames::table_file(&child.dir, number))?,
                                self.table_builder_opts(),
                            ));
                            child.tables.push(TableMeta {
                                number,
                                size: 0,
                                smallest: Vec::new(),
                                largest: Vec::new(),
                            });
                        }
                        let b = child.builder.as_mut().expect("created above");
                        b.add(&ikey, &slot.encode())?;
                        if b.estimated_size() >= self.opts.table_size as u64 {
                            let props = child.builder.take().expect("present").finish()?;
                            child.written += props.file_size;
                            let t = child.tables.last_mut().expect("pushed");
                            t.size = props.file_size;
                            t.smallest = props.smallest;
                            t.largest = props.largest;
                        }
                    }
                }
                iter.next()?;
            }
        }
        for child in [&mut left, &mut right] {
            if let Some(b) = child.builder.take() {
                let props = b.finish()?;
                child.written += props.file_size;
                let t = child.tables.last_mut().expect("pushed");
                t.size = props.file_size;
                t.smallest = props.smallest;
                t.largest = props.largest;
            }
            child.vlog.sync()?;
        }
        let boundary = boundary.expect("total >= 2 guarantees a right half");
        self.sync.hit("split:build")?;

        let split_bytes = left.written + right.written;
        UniKvStats::add(&self.stats.split_bytes_written, split_bytes);
        UniKvStats::add(&self.stats.splits, 1);

        // Build the child partitions and swap them in.
        let build_partition = |child: ChildBuild,
                               lo: Vec<u8>,
                               hi: Option<Vec<u8>>,
                               wal_number: u64|
         -> Result<Partition> {
            let own_logs = child.vlog.log_numbers();
            let wal = LogWriter::new(
                self.env
                    .new_writable(&filenames::wal_file(&child.dir, wal_number))?,
            )
            .with_metrics(self.metrics.wal.clone());
            Ok(Partition {
                meta: PartitionMeta {
                    id: child.id,
                    lo,
                    hi,
                    wal_number,
                    unsorted: Vec::new(),
                    sorted: child.tables,
                    own_logs,
                    inherited_logs: child.inherited.into_iter().collect(),
                    ckpt_tables: Vec::new(),
                    live_value_bytes: child.live_value_bytes,
                    sealed_wals: Vec::new(),
                },
                mem: Arc::new(MemTable::new()),
                imms: Vec::new(),
                wal,
                index: TwoLevelHashIndex::with_capacity(
                    index_capacity(&self.opts),
                    self.opts.num_hashes,
                ),
                vlog: Arc::new(parking_lot::Mutex::new(child.vlog)),
                tables: parking_lot::Mutex::new(std::collections::HashMap::new()),
                flushes_since_ckpt: 0,
            })
        };
        let left_p = build_partition(left, parent_lo, Some(boundary.clone()), left_wal)?;
        let right_p = build_partition(right, boundary, parent_hi, right_wal)?;

        let parent = std::mem::replace(&mut core.partitions[pidx], left_p);
        core.partitions.insert(pidx + 1, right_p);
        core.next_file = split_file_start + split_files_used;

        self.sync.hit("split:commit")?;
        self.commit_meta(core)?;
        // Outputs name the two child *partitions* (the interesting unit
        // here), not files; the detail spells out which is which.
        let fin = scope.finish(
            EventKind::SplitFinish,
            vec![left_id as u64, right_id as u64],
            split_bytes,
            &format!("children p{left_id},p{right_id}"),
        );
        self.sync.hit("split:cleanup")?;

        // Delete the parent's table files, WAL, and index checkpoint; keep
        // its value logs (now shared with the children, freed by lazy GC).
        let parent_dir = partition_dir(&self.root, parent.meta.id);
        for t in parent.meta.unsorted.iter().chain(&parent.meta.sorted) {
            let path = filenames::table_file(&parent_dir, t.number);
            if self.env.file_exists(&path) {
                self.env.delete_file(&path)?;
            }
        }
        let wal_path = filenames::wal_file(&parent_dir, parent.meta.wal_number);
        if self.env.file_exists(&wal_path) {
            self.env.delete_file(&wal_path)?;
        }
        let ckpt = parent_dir.join(INDEX_CKPT);
        if self.env.file_exists(&ckpt) {
            self.env.delete_file(&ckpt)?;
        }
        // Parent logs with no surviving references can go immediately.
        self.sweep_shared_logs(core, &parent_logs)?;
        self.record_maint(TraceOp::Split, t0, parent_id, split_bytes);
        Ok(Some(fin))
    }

    // ---------------------------------------------------------------
    // Background job runners (worker threads; `background_jobs >= 1`)
    // ---------------------------------------------------------------

    /// Execute one background job. Called from the worker loop; a job
    /// whose trigger condition no longer holds is a no-op.
    pub(crate) fn run_job(&self, job: &Job) -> Result<()> {
        match job.kind {
            JobKind::Flush => self.run_flush_job(job.partition),
            JobKind::ScanMerge => self.run_scan_merge_job(job.partition),
            JobKind::Merge => self.run_merge_job(job.partition),
            JobKind::Gc => self.run_gc_job(job.partition),
            JobKind::Split => self.run_split_job(job.partition),
        }
    }

    /// Background flush: drain the partition's sealed memtables oldest
    /// first. The table is built with the core lock *released* — reads
    /// and writes proceed against the still-visible sealed memtable —
    /// and installed under a brief write lock.
    fn run_flush_job(&self, pid: u32) -> Result<()> {
        loop {
            let (dir, table_number, sealed) = {
                let mut core = self.core.write();
                let Some(pidx) = core.partition_index(pid) else {
                    return Ok(());
                };
                if core.partitions[pidx].imms.is_empty() {
                    return Ok(());
                }
                let table_number = core.alloc_file();
                (
                    partition_dir(&self.root, pid),
                    table_number,
                    core.partitions[pidx].imms[0].clone(),
                )
            };
            let t0 = self.metrics.registry.now_micros();
            let scope = OpScope::begin(
                &self.events,
                EventKind::FlushStart,
                EventKind::FlushAbort,
                pid,
                sealed.cause,
                vec![sealed.wal_number],
                0,
            );
            let (tmeta, keys) = self.build_flush_table(&dir, table_number, sealed.mem)?;
            let bytes = tmeta.size;
            let mut core = self.core.write();
            let Some(pidx) = core.partition_index(pid) else {
                return Ok(()); // partition vanished (split); scope aborts
            };
            self.install_flush(
                &mut core,
                pidx,
                tmeta,
                &keys,
                sealed.wal_number,
                Some(scope.start_seq),
            )?;
            let fin = scope.finish(EventKind::FlushFinish, vec![table_number], bytes, "");
            self.schedule_triggers(&core, pidx, Some(fin));
            self.record_maint(TraceOp::Flush, t0, pid, bytes);
        }
    }

    /// Background full merge. Phase 1 snapshots the input tables and the
    /// vlog handle under a read lock; phase 2 does the heavy merge with no
    /// core lock held (value appends take the partition's vlog mutex
    /// per-call, table numbers come from brief write locks); phase 3
    /// installs and commits under the write lock. Only one job runs per
    /// partition and foreground structural operations quiesce the
    /// workers, so the snapshotted inputs cannot change underneath.
    fn run_merge_job(&self, pid: u32) -> Result<()> {
        // Phase 1: snapshot.
        let (dir, consumed, sorted_metas, handles, sorted_handles, vlog) = {
            let core = self.core.read();
            let Some(pidx) = core.partition_index(pid) else {
                return Ok(());
            };
            let p = &core.partitions[pidx];
            if p.meta.unsorted.is_empty() && p.meta.sorted.is_empty() {
                return Ok(());
            }
            let consumed = p.meta.unsorted.clone();
            let sorted_metas = p.meta.sorted.clone();
            let mut handles = Vec::with_capacity(consumed.len());
            for t in &consumed {
                handles.push(self.open_table(p, t.number)?);
            }
            let mut sorted_handles = Vec::with_capacity(sorted_metas.len());
            for t in &sorted_metas {
                sorted_handles.push((t.largest.clone(), self.open_table(p, t.number)?));
            }
            (
                partition_dir(&self.root, pid),
                consumed,
                sorted_metas,
                handles,
                sorted_handles,
                p.vlog.clone(),
            )
        };
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("merge:begin")?;
        let input_bytes = consumed.iter().map(|t| t.size).sum::<u64>()
            + sorted_metas.iter().map(|t| t.size).sum::<u64>();
        let input_tables: Vec<u64> = consumed
            .iter()
            .chain(sorted_metas.iter())
            .map(|t| t.number)
            .collect();
        let scope = OpScope::begin(
            &self.events,
            EventKind::MergeStart,
            EventKind::MergeAbort,
            pid,
            self.take_job_cause(JobKind::Merge, pid),
            input_tables,
            input_bytes,
        );

        // Phase 2: heavy merge, core lock released.
        let mut children: Vec<Box<dyn InternalIterator>> = handles
            .iter()
            .map(|t| Box::new(TableSource::new(t)) as Box<dyn InternalIterator>)
            .collect();
        children.push(Box::new(ConcatSource::new(sorted_handles)));
        let mut iter = MergingIterator::new(children);
        iter.seek_to_first()?;

        if self.opts.enable_kv_separation {
            vlog.lock().rotate()?;
        }
        let mut new_tables: Vec<TableMeta> = Vec::new();
        let mut builder: Option<TableBuilder> = None;
        let mut written = 0u64;
        let mut live_value_bytes = 0u64;
        let mut last_user_key: Option<Vec<u8>> = None;
        while iter.valid() {
            let ikey = iter.ikey().to_vec();
            let user_key = extract_user_key(&ikey);
            let (_, vt) = extract_seq_type(&ikey)?;
            let is_newest = last_user_key.as_deref() != Some(user_key);
            if is_newest {
                last_user_key = Some(user_key.to_vec());
                if vt == ValueType::Value {
                    let slot = match SeparatedValue::decode(iter.value())? {
                        SeparatedValue::Inline(v) if self.opts.enable_kv_separation => {
                            let ptr = vlog.lock().append(&v)?;
                            written += v.len() as u64;
                            live_value_bytes += ptr.length as u64;
                            SeparatedValue::Pointer(ptr)
                        }
                        inline @ SeparatedValue::Inline(_) => inline,
                        SeparatedValue::Pointer(ptr) => {
                            live_value_bytes += ptr.length as u64;
                            SeparatedValue::Pointer(ptr)
                        }
                    };
                    if builder.is_none() {
                        let number = self.core.write().alloc_file();
                        builder = Some(TableBuilder::new(
                            self.env
                                .new_writable(&filenames::table_file(&dir, number))?,
                            self.table_builder_opts(),
                        ));
                        new_tables.push(TableMeta {
                            number,
                            size: 0,
                            smallest: Vec::new(),
                            largest: Vec::new(),
                        });
                    }
                    let b = builder.as_mut().expect("created above");
                    b.add(&ikey, &slot.encode())?;
                    if b.estimated_size() >= self.opts.table_size as u64 {
                        let props = builder.take().expect("present").finish()?;
                        written += props.file_size;
                        let t = new_tables.last_mut().expect("pushed");
                        t.size = props.file_size;
                        t.smallest = props.smallest;
                        t.largest = props.largest;
                    }
                }
            }
            iter.next()?;
        }
        if let Some(b) = builder.take() {
            let props = b.finish()?;
            written += props.file_size;
            let t = new_tables.last_mut().expect("pushed");
            t.size = props.file_size;
            t.smallest = props.smallest;
            t.largest = props.largest;
        }
        vlog.lock().sync()?;
        self.sync.hit("merge:build")?;

        // Phase 3: install.
        let mut core = self.core.write();
        let Some(pidx) = core.partition_index(pid) else {
            return Ok(());
        };
        UniKvStats::add(&self.stats.merge_bytes_read, input_bytes);
        UniKvStats::add(&self.stats.merge_bytes_written, written);
        UniKvStats::add(&self.stats.merges, 1);

        let consumed_ids: HashSet<u64> = consumed.iter().map(|t| t.number).collect();
        let p = &mut core.partitions[pidx];
        let mut old_tables: Vec<TableMeta> = Vec::new();
        p.meta.unsorted.retain(|t| {
            if consumed_ids.contains(&t.number) {
                old_tables.push(t.clone());
                false
            } else {
                true
            }
        });
        old_tables.append(&mut p.meta.sorted);
        p.meta.sorted = new_tables;
        p.meta.own_logs = vlog.lock().log_numbers();
        p.meta.live_value_bytes = live_value_bytes;
        if p.meta.unsorted.is_empty() {
            p.index.clear();
        } else {
            // Defensive: tables flushed after the snapshot keep their
            // index entries.
            let stale: HashSet<u32> = consumed_ids.iter().map(|&n| n as u32).collect();
            p.index.remove_tables(&stale);
        }
        p.meta.ckpt_tables.retain(|n| !consumed_ids.contains(n));
        p.flushes_since_ckpt = 0;
        if self.opts.enable_hash_index {
            let covered: Vec<u64> = p.meta.unsorted.iter().map(|t| t.number).collect();
            self.env.write_atomic(
                &dir.join(INDEX_CKPT),
                &encode_index_ckpt(&covered, &p.index),
            )?;
            p.meta.ckpt_tables = covered;
        }

        self.sync.hit("merge:commit")?;
        self.commit_meta(&core)?;
        let output_tables: Vec<u64> = core.partitions[pidx]
            .meta
            .sorted
            .iter()
            .map(|t| t.number)
            .collect();
        let fin = scope.finish(EventKind::MergeFinish, output_tables, written, "");
        self.sync.hit("merge:cleanup")?;
        let p = &mut core.partitions[pidx];
        for t in old_tables {
            p.evict_table(t.number);
            self.env
                .delete_file(&filenames::table_file(&dir, t.number))?;
        }
        self.maint.notify_progress();
        self.schedule_triggers(&core, pidx, Some(fin));
        self.record_maint(TraceOp::Merge, t0, pid, written);
        Ok(())
    }

    /// Background size-based merge (scan optimization): collapse the
    /// snapshotted UnsortedStore tables into one, with the heavy merge
    /// running off-lock like [`Self::run_merge_job`].
    fn run_scan_merge_job(&self, pid: u32) -> Result<()> {
        // Phase 1: snapshot.
        let (dir, table_number, consumed, handles) = {
            let mut core = self.core.write();
            let Some(pidx) = core.partition_index(pid) else {
                return Ok(());
            };
            if core.partitions[pidx].meta.unsorted.len() < 2 {
                return Ok(());
            }
            let table_number = core.alloc_file();
            let p = &core.partitions[pidx];
            let consumed = p.meta.unsorted.clone();
            let mut handles = Vec::with_capacity(consumed.len());
            for t in &consumed {
                handles.push(self.open_table(p, t.number)?);
            }
            (
                partition_dir(&self.root, pid),
                table_number,
                consumed,
                handles,
            )
        };
        let t0 = self.metrics.registry.now_micros();
        self.sync.hit("scanmerge:begin")?;
        let scope = OpScope::begin(
            &self.events,
            EventKind::ScanMergeStart,
            EventKind::ScanMergeAbort,
            pid,
            self.take_job_cause(JobKind::ScanMerge, pid),
            consumed.iter().map(|t| t.number).collect(),
            consumed.iter().map(|t| t.size).sum(),
        );

        // Phase 2: merge into one table, collecting kept keys.
        let children: Vec<Box<dyn InternalIterator>> = handles
            .iter()
            .map(|t| Box::new(TableSource::new(t)) as Box<dyn InternalIterator>)
            .collect();
        let mut iter = MergingIterator::new(children);
        iter.seek_to_first()?;
        let mut builder = TableBuilder::new(
            self.env
                .new_writable(&filenames::table_file(&dir, table_number))?,
            self.table_builder_opts(),
        );
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut last_user_key: Option<Vec<u8>> = None;
        while iter.valid() {
            let user_key = extract_user_key(iter.ikey());
            if last_user_key.as_deref() != Some(user_key) {
                last_user_key = Some(user_key.to_vec());
                // Tombstones stay: the SortedStore below still holds older
                // versions they must shadow.
                builder.add(iter.ikey(), iter.value())?;
                if self.opts.enable_hash_index {
                    keys.push(user_key.to_vec());
                }
            }
            iter.next()?;
        }
        let props = builder.finish()?;
        self.sync.hit("scanmerge:build")?;
        let tmeta = TableMeta {
            number: table_number,
            size: props.file_size,
            smallest: props.smallest,
            largest: props.largest,
        };

        // Phase 3: install.
        let mut core = self.core.write();
        let Some(pidx) = core.partition_index(pid) else {
            return Ok(());
        };
        UniKvStats::add(&self.stats.merge_bytes_written, tmeta.size);
        UniKvStats::add(&self.stats.scan_merges, 1);
        let consumed_ids: HashSet<u64> = consumed.iter().map(|t| t.number).collect();
        let p = &mut core.partitions[pidx];
        let mut old_tables: Vec<TableMeta> = Vec::new();
        p.meta.unsorted.retain(|t| {
            if consumed_ids.contains(&t.number) {
                old_tables.push(t.clone());
                false
            } else {
                true
            }
        });
        // The merged table is older than anything flushed after the
        // snapshot, so it goes to the front of the flush-ordered tier.
        p.meta.unsorted.insert(0, tmeta);
        if self.opts.enable_hash_index {
            let stale: HashSet<u32> = consumed_ids.iter().map(|&n| n as u32).collect();
            p.index.remove_tables(&stale);
            for key in &keys {
                p.index.insert(key, table_number as u32);
            }
            let covered: Vec<u64> = p.meta.unsorted.iter().map(|t| t.number).collect();
            self.env.write_atomic(
                &dir.join(INDEX_CKPT),
                &encode_index_ckpt(&covered, &p.index),
            )?;
            p.meta.ckpt_tables = covered;
            p.flushes_since_ckpt = 0;
        }

        self.sync.hit("scanmerge:commit")?;
        self.commit_meta(&core)?;
        let fin = scope.finish(
            EventKind::ScanMergeFinish,
            vec![table_number],
            props.file_size,
            "",
        );
        self.sync.hit("scanmerge:cleanup")?;
        let p = &mut core.partitions[pidx];
        for t in old_tables {
            p.evict_table(t.number);
            self.env
                .delete_file(&filenames::table_file(&dir, t.number))?;
        }
        self.maint.notify_progress();
        self.schedule_triggers(&core, pidx, Some(fin));
        self.record_maint(TraceOp::ScanMerge, t0, pid, props.file_size);
        Ok(())
    }

    /// Background GC: re-checks the garbage ratio, then runs the inline
    /// GC under the write lock (GC rewrites the SortedStore in place, so
    /// it does not overlap foreground work).
    fn run_gc_job(&self, pid: u32) -> Result<()> {
        let mut core = self.core.write();
        let Some(pidx) = core.partition_index(pid) else {
            return Ok(());
        };
        if self.gc_due(&core.partitions[pidx]) {
            let cause = self.take_job_cause(JobKind::Gc, pid);
            self.gc_partition(&mut core, pidx, cause)?;
        }
        Ok(())
    }

    /// Background split: re-checks the size trigger, then runs the inline
    /// median split under the write lock.
    fn run_split_job(&self, pid: u32) -> Result<()> {
        let mut core = self.core.write();
        let Some(pidx) = core.partition_index(pid) else {
            return Ok(());
        };
        if !self.opts.enable_partitioning
            || core.partitions[pidx].logical_size() <= self.opts.partition_size_limit
        {
            return Ok(());
        }
        let cause = self.take_job_cause(JobKind::Split, pid);
        let fin = self.split_partition(&mut core, pidx, cause)?;
        // Both children may immediately warrant follow-up work.
        self.schedule_triggers(&core, pidx, fin);
        if pidx + 1 < core.partitions.len() {
            self.schedule_triggers(&core, pidx + 1, fin);
        }
        Ok(())
    }

    /// Merging iterator over a partition's tables only (no memtable) —
    /// split passes run after an explicit flush.
    fn merged_partition_tables_iter(&self, p: &Partition) -> Result<MergingIterator> {
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for tmeta in &p.meta.unsorted {
            let table = self.open_table(p, tmeta.number)?;
            children.push(Box::new(TableSource::new(&table)));
        }
        let mut run = Vec::with_capacity(p.meta.sorted.len());
        for tmeta in &p.meta.sorted {
            run.push((tmeta.largest.clone(), self.open_table(p, tmeta.number)?));
        }
        children.push(Box::new(ConcatSource::new(run)));
        Ok(MergingIterator::new(children))
    }
}

/// The UniKV database handle.
///
/// Owns the engine state (shared with maintenance worker threads via
/// `Arc`) and the worker join handles. With `background_jobs = 0` (the
/// default) no threads are spawned and every structural operation runs
/// inline, exactly as in previous versions. Dropping the handle asks the
/// workers to finish their current job and joins them; jobs still queued
/// are abandoned — safe, because sealed WALs are committed in META and
/// recovery replays them.
pub struct UniKv {
    inner: Arc<DbInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl UniKv {
    /// Open (creating or recovering) a database under `root`.
    pub fn open(env: Arc<dyn Env>, root: impl Into<PathBuf>, opts: UniKvOptions) -> Result<UniKv> {
        let inner = Arc::new(DbInner::open_inner(env, root.into(), opts)?);
        let workers = (0..inner.opts.background_jobs)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("unikv-maint-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn maintenance worker")
            })
            .collect();
        Ok(UniKv { inner, workers })
    }

    /// Counters.
    pub fn stats(&self) -> &UniKvStats {
        self.inner.stats()
    }

    /// The named sync-point registry for crash testing: arm a hook to
    /// observe (or abort, by returning `Err`) structural operations at
    /// any of the [`crate::maintenance::SYNC_POINTS`]. An abort models a
    /// crash at that step — drop the database and reopen to exercise
    /// recovery.
    pub fn sync_points(&self) -> &crate::maintenance::SyncPoints {
        &self.inner.sync
    }

    /// Options this database was opened with.
    pub fn options(&self) -> &UniKvOptions {
        self.inner.options()
    }

    /// Number of partitions (grows via dynamic range partitioning).
    pub fn partition_count(&self) -> usize {
        self.inner.partition_count()
    }

    /// The current partition boundary keys (`lo` of each partition).
    pub fn partition_boundaries(&self) -> Vec<Vec<u8>> {
        self.inner.partition_boundaries()
    }

    /// Total bytes of in-memory hash-index entries across partitions
    /// (experiment E12).
    pub fn index_memory_bytes(&self) -> usize {
        self.inner.index_memory_bytes()
    }

    /// Total logical bytes stored (tables + live values).
    pub fn logical_bytes(&self) -> u64 {
        self.inner.logical_bytes()
    }

    /// Last committed sequence number.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.inner.last_sequence()
    }

    /// Insert or update `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.put(key, value)
    }

    /// Delete `key`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.inner.delete(key)
    }

    /// Apply `batch` atomically (see [`WriteBatch`]).
    pub fn write_batch(&self, batch: &WriteBatch) -> Result<()> {
        self.inner.write_batch(batch)
    }

    /// Force all memtables (active and sealed) to disk. In background
    /// mode this quiesces the workers first, so it is a true barrier.
    pub fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    /// Force a full merge (UnsortedStore → SortedStore) in every partition.
    pub fn compact_all(&self) -> Result<()> {
        self.inner.compact_all()
    }

    /// Run GC on every partition regardless of the garbage ratio
    /// (test/maintenance hook).
    pub fn force_gc(&self) -> Result<()> {
        self.inner.force_gc()
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    /// Point lookup with a per-operation stage profile (router, memtable,
    /// index probes, boundary search, block reads, vlog fetch…). The
    /// profile's `total_micros` equals the sum of its stages and the
    /// latency recorded in the `get` histogram for this call.
    pub fn get_profiled(&self, key: &[u8]) -> Result<(Option<Vec<u8>>, PerfContext)> {
        self.inner.get_profiled(key)
    }

    /// Insert or update `key`, returning a per-operation stage profile
    /// (stall wait, router, WAL append/sync, memtable).
    pub fn put_profiled(&self, key: &[u8], value: &[u8]) -> Result<PerfContext> {
        self.inner.put_profiled(key, value)
    }

    /// Delete `key`, returning a per-operation stage profile.
    pub fn delete_profiled(&self, key: &[u8]) -> Result<PerfContext> {
        self.inner.delete_profiled(key)
    }

    /// Range scan: up to `limit` live entries with `key >= from`.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.inner.scan(from, limit)
    }

    /// Range scan bounded above: up to `limit` live entries with
    /// `from <= key < end` (`end = None` means unbounded).
    pub fn scan_range(
        &self,
        from: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        self.inner.scan_range(from, end, limit)
    }

    /// A streaming iterator over the whole database at the current
    /// sequence number — the paper's seek()/next() scan interface.
    pub fn iter(&self) -> Result<crate::iter::UniKvIterator> {
        self.inner.iter()
    }

    /// Block until the maintenance queue is empty and no job is running.
    /// Returns immediately in inline mode or after a background failure.
    pub fn wait_for_background(&self) {
        self.inner.maint.wait_idle();
    }

    /// The fatal background-maintenance error that poisoned this
    /// database, if any. Once set, writes and structural operations fail
    /// with this error; reads keep working.
    pub fn background_error(&self) -> Option<String> {
        self.inner.maint.poison_message()
    }

    /// Current health state (see [`HealthState`] for the transitions).
    /// Lock-free; always `Healthy` in inline mode.
    pub fn health(&self) -> HealthState {
        self.inner.maint.health_state()
    }

    /// Detailed health snapshot: state, jobs retrying, quarantined jobs
    /// with their reasons, and the poison message if any.
    pub fn health_report(&self) -> HealthReport {
        self.inner.maint.health_report()
    }

    /// Replace the maintenance scheduler's clock (milliseconds, arbitrary
    /// monotonic origin), or restore the real clock with `None`. Backoff
    /// deadlines and quarantine probes are evaluated against it — a test
    /// or simulation hook so retry schedules elapse without sleeping.
    pub fn set_maintenance_clock(&self, clock: Option<MaintClock>) {
        self.inner.maint.set_clock(clock);
    }

    /// The database's metric bundle: registry plus every typed handle.
    pub fn metrics(&self) -> &DbMetrics {
        &self.inner.metrics
    }

    /// The lifecycle event bus this database publishes on. Exposed for
    /// tests and tooling that want the next seq or panic counters; new
    /// listeners must be registered via [`UniKvOptions::listeners`]
    /// *before* open so no event is missed.
    pub fn event_bus(&self) -> &Arc<EventBus> {
        &self.inner.events
    }

    /// Listener panics caught (and swallowed) so far.
    pub fn listener_panics(&self) -> u64 {
        self.inner.events.listener_panics()
    }

    /// Event-journal health: `(events_written, write_errors)` since open,
    /// or `None` when the journal is disabled or failed to open.
    pub fn event_journal_stats(&self) -> Option<(u64, u64)> {
        self.inner
            .journal
            .as_ref()
            .map(|j| (j.events_written(), j.write_errors()))
    }

    /// Replace the event bus clock (microseconds, arbitrary monotonic
    /// origin) used to stamp `at_micros` on published events, or restore
    /// the real clock with `None`. Deliberately separate from the metrics
    /// clock: publishing an event must never advance a manual metrics
    /// clock mid-operation.
    pub fn set_event_clock(&self, clock: Option<EventClock>) {
        self.inner.events.set_clock(clock);
    }

    /// Human-readable metrics report: every counter, gauge, and latency
    /// histogram (count/p50/p95/p99/max) plus the tail of the op trace.
    pub fn metrics_report(&self) -> String {
        self.inner.metrics.report_text()
    }

    /// Machine-readable metrics report (tab-separated, one family per
    /// line; histograms include their full bucket vector).
    pub fn metrics_report_machine(&self) -> String {
        self.inner.metrics.report_machine()
    }

    /// Snapshot every metric family (mergeable across databases/engines).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Replace the metrics clock (microseconds, arbitrary monotonic
    /// origin), or restore the real clock with `None`. Tests install
    /// [`unikv_common::metrics::manual_step_clock`] to make latency
    /// histograms exactly reproducible.
    pub fn set_metrics_clock(&self, clock: Option<MetricsClock>) {
        self.inner.metrics.registry.set_clock(clock);
    }

    /// Zero every metric and clear the op trace; registered families
    /// remain enumerable.
    pub fn reset_metrics(&self) {
        self.inner.metrics.registry.reset();
    }
}

impl Drop for UniKv {
    fn drop(&mut self) {
        self.inner.maint.begin_shutdown();
        // Workers park in timed waits while jobs sit in backoff, so they
        // notice shutdown within one tick — but a worker wedged inside a
        // job (e.g. an env stuck in a syscall) must not hang the drop
        // forever. Join with a deadline and detach stragglers; a detached
        // worker exits on its own when its current job ends.
        let deadline =
            Instant::now() + Duration::from_millis(self.inner.opts.shutdown_join_timeout_ms);
        for handle in self.workers.drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                // Re-notify: a worker that raced into a wait just before
                // the shutdown flag was set could otherwise miss a wakeup.
                self.inner.maint.begin_shutdown();
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

enum Probe {
    Value(Vec<u8>),
    Tombstone,
    Miss,
}

/// Expected hash-index key capacity derived from the UnsortedStore budget
/// (assume ≥ 64 B per KV; overflow chains absorb denser data gracefully).
fn index_capacity(opts: &UniKvOptions) -> usize {
    (opts.unsorted_limit_bytes as usize / 64).max(256)
}

fn sweep_partition_dir(
    env: &dyn Env,
    dir: &Path,
    id: u32,
    pmeta: Option<&PartitionMeta>,
    inherited_refs: &HashSet<(u32, u64)>,
) -> Result<()> {
    let live_tables: HashSet<u64> = pmeta
        .map(|m| {
            m.unsorted
                .iter()
                .chain(&m.sorted)
                .map(|t| t.number)
                .collect()
        })
        .unwrap_or_default();
    let live_logs: HashSet<u64> = pmeta
        .map(|m| m.own_logs.iter().copied().collect())
        .unwrap_or_default();
    // Sealed WALs protect sealed-but-unflushed memtables; they are as
    // live as the active WAL until their flush commits.
    let live_wals: HashSet<u64> = pmeta
        .map(|m| {
            m.sealed_wals
                .iter()
                .copied()
                .chain([m.wal_number])
                .collect()
        })
        .unwrap_or_default();
    for name in env.list_dir(dir)? {
        let Some(s) = name.to_str() else { continue };
        if s == INDEX_CKPT {
            if pmeta.is_none() {
                env.delete_file(&dir.join(name))?;
            }
            continue;
        }
        if let Some(log) = parse_vlog_file_name(s) {
            let keep = live_logs.contains(&log) || inherited_refs.contains(&(id, log));
            if !keep {
                env.delete_file(&dir.join(name))?;
            }
            continue;
        }
        match filenames::parse_file_name(s) {
            Some(filenames::FileKind::Table(n)) if !live_tables.contains(&n) => {
                env.delete_file(&dir.join(name))?;
            }
            Some(filenames::FileKind::Wal(n)) if !live_wals.contains(&n) => {
                env.delete_file(&dir.join(name))?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn open_partition(
    env: &Arc<dyn Env>,
    root: &Path,
    opts: &UniKvOptions,
    topts: &TableOptions,
    pmeta: &PartitionMeta,
    last_seq: &mut SequenceNumber,
    next_file: &mut u64,
    stats: &UniKvStats,
    metrics: &DbMetrics,
) -> Result<(Partition, Vec<PathBuf>)> {
    let dir = partition_dir(root, pmeta.id);
    env.create_dir_all(&dir)?;

    if opts.paranoid_checks {
        // Verify every file META commits to before trusting the partition:
        // tables must exist at their recorded size with a parseable
        // footer + index, and every owned value log must exist. Data-block
        // and value checksums are verified on every read regardless.
        for tmeta in pmeta.unsorted.iter().chain(&pmeta.sorted) {
            let path = filenames::table_file(&dir, tmeta.number);
            if !env.file_exists(&path) {
                return Err(Error::corruption(format!(
                    "table missing: {}",
                    path.display()
                )));
            }
            let size = env.file_size(&path)?;
            if size != tmeta.size {
                return Err(Error::corruption(format!(
                    "table {} size {} != recorded {}",
                    path.display(),
                    size,
                    tmeta.size
                )));
            }
            Table::open(env.new_random_access(&path)?, size, topts.clone()).map_err(|e| {
                Error::corruption(format!("table {} unreadable: {e}", path.display()))
            })?;
        }
        for &n in &pmeta.own_logs {
            let path = dir.join(vlog_file_name(n));
            if !env.file_exists(&path) {
                return Err(Error::corruption(format!(
                    "value log missing: {}",
                    path.display()
                )));
            }
        }
    }

    let mut vlog = ValueLog::open(env.clone(), dir.clone(), pmeta.id, opts.max_log_size)?;
    vlog.set_metrics(metrics.vlog.clone());

    // Rebuild the hash index: restore the checkpoint if present and valid,
    // drop entries for tables that no longer exist, then replay the keys
    // of tables flushed after the checkpoint. The covered-table list comes
    // from the checkpoint file itself, never from META: the two files are
    // written at different instants, and after a crash between them the
    // META list can describe a checkpoint that was never written (or
    // vice versa) — trusting it would skip re-indexing live tables.
    let mut index = TwoLevelHashIndex::with_capacity(index_capacity(opts), opts.num_hashes);
    let mut covered: HashSet<u64> = HashSet::new();
    if opts.enable_hash_index {
        let ckpt_path = dir.join(INDEX_CKPT);
        if env.file_exists(&ckpt_path) {
            if let Ok((file_tables, restored)) = env
                .read_to_vec(&ckpt_path)
                .and_then(|data| decode_index_ckpt(&data))
            {
                index = restored;
                // Remove entries for checkpointed tables that are not in
                // this META snapshot (merged away, or never committed).
                let live: HashSet<u32> = pmeta.unsorted.iter().map(|t| t.number as u32).collect();
                let stale: HashSet<u32> = file_tables
                    .iter()
                    .map(|&n| n as u32)
                    .filter(|n| !live.contains(n))
                    .collect();
                if !stale.is_empty() {
                    index.remove_tables(&stale);
                }
                covered = file_tables
                    .into_iter()
                    .filter(|&n| live.contains(&(n as u32)))
                    .collect();
            }
        }
        for tmeta in &pmeta.unsorted {
            if covered.contains(&tmeta.number) {
                continue;
            }
            let path = filenames::table_file(&dir, tmeta.number);
            let size = env.file_size(&path)?;
            let table = Table::open(env.new_random_access(&path)?, size, topts.clone())?;
            let mut it = table.iter();
            it.seek_to_first()?;
            while it.valid() {
                index.insert(extract_user_key(it.key()), tmeta.number as u32);
                it.next()?;
            }
        }
    }

    // Replay sealed WALs (oldest first), then the active WAL, into one
    // fresh memtable (a missing file = clean shutdown or crash before any
    // write reached it). Sealed WALs exist when a crash interrupted
    // background flushing; replay restores their memtables' contents and
    // the flush-on-open below re-persists everything, so the sealed list
    // is cleared afterwards.
    let mem = Arc::new(MemTable::new());
    let wal_path = filenames::wal_file(&dir, pmeta.wal_number);
    let mut stale_wals = Vec::new();
    let mut replayed = false;
    for (number, is_sealed) in pmeta
        .sealed_wals
        .iter()
        .map(|&n| (n, true))
        .chain([(pmeta.wal_number, false)])
    {
        let path = filenames::wal_file(&dir, number);
        if is_sealed {
            // Superseded regardless of content once this open commits.
            stale_wals.push(path.clone());
        }
        if !env.file_exists(&path) {
            continue;
        }
        // Paranoid replay distinguishes a torn tail (truncated, normal)
        // from mid-log damage (an error: acked records would be lost).
        let mut reader = if opts.paranoid_checks {
            LogReader::new_strict(env.new_sequential(&path)?)
        } else {
            LogReader::new(env.new_sequential(&path)?)
        };
        let mut buf = Vec::new();
        while reader.read_record(&mut buf).map_err(|e| match e {
            Error::Corruption(msg) => Error::corruption(format!("WAL {}: {msg}", path.display())),
            other => other,
        })? == ReadOutcome::Record
        {
            for (seq, t, key, value) in decode_batch_record(&buf)? {
                let slot = SeparatedValue::Inline(value).encode();
                mem.add(seq, t, &key, &slot);
                *last_seq = (*last_seq).max(seq);
                replayed = true;
            }
        }
        UniKvStats::add(&stats.wal_dropped_bytes, reader.dropped_bytes());
    }

    let mut meta = pmeta.clone();
    meta.sealed_wals.clear();
    let wal = if replayed {
        // The replayed WALs must survive on disk until the memtable is
        // flushed (UniKv::open flushes non-empty memtables immediately
        // after loading). Route new appends to a fresh WAL file; the old
        // ones are returned for deletion after the flush commits.
        stale_wals.push(wal_path.clone());
        let new_number = {
            *next_file += 1;
            *next_file - 1
        };
        meta.wal_number = new_number;
        LogWriter::new(env.new_writable(&filenames::wal_file(&dir, new_number))?)
            .with_metrics(metrics.wal.clone())
    } else {
        // Nothing buffered: recreating the (empty or absent) file is safe.
        LogWriter::new(env.new_writable(&wal_path)?).with_metrics(metrics.wal.clone())
    };

    Ok((
        Partition {
            meta,
            mem,
            imms: Vec::new(),
            wal,
            index,
            vlog: Arc::new(parking_lot::Mutex::new(vlog)),
            tables: parking_lot::Mutex::new(std::collections::HashMap::new()),
            flushes_since_ckpt: 0,
        },
        stale_wals,
    ))
}
