//! Persistent event journal: the `EVENTS` file under the database root.
//!
//! The journal is an [`EventListener`] like any other — the database
//! registers it on the event bus when `enable_event_journal` is set —
//! that appends each event as one JSON line via the [`Env`] abstraction
//! (so fault injection exercises it like every other file). Properties:
//!
//! * **Advisory, never load-bearing.** A journal that cannot be opened
//!   or written never fails `Db::open` or any operation; failures are
//!   counted ([`EventJournal::write_errors`]) and swallowed.
//! * **Torn tails truncate.** Appends are flushed but only synced when
//!   `paranoid_checks` is set, so a crash may leave a half-written last
//!   line. On open the valid prefix is kept and rewritten — exactly the
//!   WAL's tail policy — and sequence numbering continues from the last
//!   surviving event.
//! * **Size-capped with rotation.** When the live file exceeds the cap it
//!   rotates to `EVENTS.old` (replacing any previous one); seq numbers
//!   stay monotonic across the rotation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unikv_common::events::{Event, EventListener};
use unikv_env::{Env, WritableFile};

/// File name of the live event journal under the database root.
pub const EVENTS_FILE: &str = "EVENTS";
/// File name the journal rotates into.
pub const EVENTS_OLD_FILE: &str = "EVENTS.old";

struct JournalFile {
    file: Box<dyn WritableFile>,
    bytes: u64,
}

/// Append-only JSON-lines journal of lifecycle events.
pub struct EventJournal {
    env: Arc<dyn Env>,
    path: PathBuf,
    old_path: PathBuf,
    max_bytes: u64,
    /// Sync after every append (`paranoid_checks`).
    sync_each: bool,
    state: parking_lot::Mutex<JournalFile>,
    events_written: AtomicU64,
    write_errors: AtomicU64,
}

/// Parse journal bytes into the longest valid prefix of events. Returns
/// the events and the byte length of that prefix; anything after the
/// first malformed or incomplete line is a torn tail to discard.
pub fn parse_valid_prefix(data: &[u8]) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut consumed = 0usize;
    let mut pos = 0usize;
    while pos < data.len() {
        let Some(nl) = data[pos..].iter().position(|b| *b == b'\n') else {
            break; // incomplete last line
        };
        let line = &data[pos..pos + nl];
        let Some(ev) = std::str::from_utf8(line).ok().and_then(Event::parse_json) else {
            break;
        };
        events.push(ev);
        pos += nl + 1;
        consumed = pos;
    }
    (events, consumed)
}

/// Read and parse every surviving event under `root`, oldest first:
/// the rotated `EVENTS.old` (if any) followed by the live `EVENTS`.
/// Torn tails are dropped; missing files are simply empty.
pub fn read_events(env: &dyn Env, root: &Path) -> Vec<Event> {
    let mut all = Vec::new();
    for name in [EVENTS_OLD_FILE, EVENTS_FILE] {
        let path = root.join(name);
        if !env.file_exists(&path) {
            continue;
        }
        if let Ok(data) = env.read_to_vec(&path) {
            all.extend(parse_valid_prefix(&data).0);
        }
    }
    all
}

impl EventJournal {
    /// Open (or create) the journal under `root`. Recovers from a torn
    /// tail by rewriting the valid prefix; returns the journal and the
    /// seq the event bus should continue from. Errors here mean the
    /// journal itself is unusable — callers treat that as "no journal",
    /// never as a failed database open.
    pub fn open(
        env: Arc<dyn Env>,
        root: &Path,
        max_bytes: u64,
        sync_each: bool,
    ) -> unikv_common::Result<(Arc<EventJournal>, u64)> {
        let path = root.join(EVENTS_FILE);
        let old_path = root.join(EVENTS_OLD_FILE);
        let mut next_seq = 1u64;
        if env.file_exists(&old_path) {
            if let Ok(data) = env.read_to_vec(&old_path) {
                if let Some(last) = parse_valid_prefix(&data).0.last() {
                    next_seq = next_seq.max(last.seq + 1);
                }
            }
        }
        // `Env` has no append-open, so the valid prefix is rewritten
        // through a fresh writable file; this is also what truncates a
        // torn tail. The size cap bounds the rewrite.
        let mut valid = Vec::new();
        if env.file_exists(&path) {
            if let Ok(data) = env.read_to_vec(&path) {
                let (events, consumed) = parse_valid_prefix(&data);
                if let Some(last) = events.last() {
                    next_seq = next_seq.max(last.seq + 1);
                }
                valid = data[..consumed].to_vec();
            }
        }
        let mut file = env.new_writable(&path)?;
        if !valid.is_empty() {
            file.append(&valid)?;
        }
        file.flush()?;
        if sync_each {
            file.sync()?;
        }
        let journal = Arc::new(EventJournal {
            env,
            path,
            old_path,
            max_bytes: max_bytes.max(1024),
            sync_each,
            state: parking_lot::Mutex::new(JournalFile {
                file,
                bytes: valid.len() as u64,
            }),
            events_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        });
        Ok((journal, next_seq))
    }

    /// Events appended since open.
    pub fn events_written(&self) -> u64 {
        self.events_written.load(Ordering::Relaxed)
    }

    /// Append or rotation failures since open (journal kept best-effort).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Path of the live journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_line(&self, line: &[u8]) -> unikv_common::Result<()> {
        let mut st = self.state.lock();
        if st.bytes > 0 && st.bytes + line.len() as u64 > self.max_bytes {
            // Rotate: the live file becomes EVENTS.old (replacing any
            // previous generation) and a fresh live file starts. If the
            // fresh file cannot be created, keep appending to the old
            // handle — its data was preserved by the rename.
            let _ = self.env.delete_file(&self.old_path);
            if self.env.rename(&self.path, &self.old_path).is_ok() {
                match self.env.new_writable(&self.path) {
                    Ok(f) => {
                        st.file = f;
                        st.bytes = 0;
                    }
                    Err(e) => {
                        self.write_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = self.env.rename(&self.old_path, &self.path);
                        return Err(e);
                    }
                }
            }
        }
        st.file.append(line)?;
        st.file.flush()?;
        if self.sync_each {
            st.file.sync()?;
        }
        st.bytes += line.len() as u64;
        Ok(())
    }
}

impl EventListener for EventJournal {
    fn on_event(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        match self.append_line(line.as_bytes()) {
            Ok(()) => {
                self.events_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_common::events::{EventBus, EventKind};
    use unikv_env::mem::MemEnv;

    fn publish_n(bus: &EventBus, n: usize) {
        for i in 0..n {
            bus.publish(EventKind::Seal, 0, None, vec![i as u64], vec![], 64, "unit");
        }
    }

    #[test]
    fn journal_persists_and_resumes_seq() {
        let env = MemEnv::shared();
        let root = Path::new("/db");
        env.create_dir_all(root).unwrap();
        let (j, first) = EventJournal::open(env.clone(), root, 1 << 20, false).unwrap();
        assert_eq!(first, 1);
        let bus = EventBus::new(vec![j.clone()], first);
        publish_n(&bus, 3);
        assert_eq!(j.events_written(), 3);
        assert_eq!(j.write_errors(), 0);
        let events = read_events(env.as_ref(), root);
        assert_eq!(events.len(), 3);
        assert_eq!(events.last().unwrap().seq, 3);
        // Reopen: numbering continues after the surviving events.
        let (_j2, next) = EventJournal::open(env.clone(), root, 1 << 20, false).unwrap();
        assert_eq!(next, 4);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let env = MemEnv::shared();
        let root = Path::new("/db");
        env.create_dir_all(root).unwrap();
        {
            let (j, first) = EventJournal::open(env.clone(), root, 1 << 20, false).unwrap();
            let bus = EventBus::new(vec![j], first);
            publish_n(&bus, 2);
        }
        // Tear the tail: a half-written third line.
        let path = root.join(EVENTS_FILE);
        let mut data = env.read_to_vec(&path).unwrap();
        data.extend_from_slice(b"{\"seq\":3,\"at_us\":9,\"ki");
        let mut f = env.new_writable(&path).unwrap();
        f.append(&data).unwrap();
        f.flush().unwrap();
        drop(f);
        let (j, next) = EventJournal::open(env.clone(), root, 1 << 20, true).unwrap();
        assert_eq!(next, 3, "torn tail must not advance the seq");
        let bus = EventBus::new(vec![j], next);
        publish_n(&bus, 1);
        let events = read_events(env.as_ref(), root);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn rotation_keeps_seq_monotonic() {
        let env = MemEnv::shared();
        let root = Path::new("/db");
        env.create_dir_all(root).unwrap();
        let (j, first) = EventJournal::open(env.clone(), root, 1024, false).unwrap();
        let bus = EventBus::new(vec![j.clone()], first);
        publish_n(&bus, 100);
        assert!(env.file_exists(&root.join(EVENTS_OLD_FILE)), "no rotation");
        assert!(env.file_size(&root.join(EVENTS_FILE)).unwrap() <= 1024);
        let events = read_events(env.as_ref(), root);
        assert!(events.len() < 100, "old generations beyond one are dropped");
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq not monotonic across rotation");
        }
        assert_eq!(events.last().unwrap().seq, 100);
        assert_eq!(j.write_errors(), 0);
    }
}
