//! Streaming iteration over a UniKV database.
//!
//! The paper describes scans exactly this way (§Scan Optimization): a
//! `seek()` positions at the start key, `next()` returns successive
//! smallest keys, without any global in-memory sort-merge. The iterator
//! owns `Arc` handles to every table it may touch, so it remains valid (a
//! consistent snapshot) while merges, GC, and splits replace files
//! underneath it.

use crate::resolver::ValueResolver;
use std::collections::HashMap;
use std::sync::Arc;
use unikv_common::ikey::{
    extract_seq_type, extract_user_key, make_internal_key, SequenceNumber, ValueType,
};
use unikv_common::pointer::SeparatedValue;
use unikv_common::Result;
use unikv_env::RandomAccessFile;
use unikv_lsm::iter::{InternalIterator, MergingIterator};
use unikv_vlog::read_value_record;

/// One partition's slice of the snapshot.
pub(crate) struct PartitionCursor {
    /// Merging iterator over the partition's memtable + tiers.
    pub iter: MergingIterator,
    /// Inclusive lower boundary of the partition.
    pub lo: Vec<u8>,
    /// Exclusive upper boundary (`None` = +∞).
    pub hi: Option<Vec<u8>>,
}

/// Streaming cursor over live entries of the whole database.
pub struct UniKvIterator {
    pub(crate) parts: Vec<PartitionCursor>,
    pub(crate) idx: usize,
    pub(crate) snapshot: SequenceNumber,
    pub(crate) resolver: Arc<ValueResolver>,
    /// Log readers pinned at creation: GC may delete log files while the
    /// iterator lives, but pinned handles keep the snapshot readable.
    pub(crate) pinned_logs: HashMap<(u32, u64), Arc<dyn RandomAccessFile>>,
    /// `(user_key, resolved_value)` under the cursor.
    current: Option<(Vec<u8>, Vec<u8>)>,
}

impl UniKvIterator {
    pub(crate) fn new(
        parts: Vec<PartitionCursor>,
        snapshot: SequenceNumber,
        resolver: Arc<ValueResolver>,
        pinned_logs: HashMap<(u32, u64), Arc<dyn RandomAccessFile>>,
    ) -> Self {
        UniKvIterator {
            parts,
            idx: 0,
            snapshot,
            resolver,
            pinned_logs,
            current: None,
        }
    }

    /// Position at the first live entry with `key >= from`.
    pub fn seek(&mut self, from: &[u8]) -> Result<()> {
        self.current = None;
        if self.parts.is_empty() {
            return Ok(());
        }
        // Last partition with lo <= from (the first partition's lo is the
        // empty key, so the count is always >= 1).
        self.idx = self
            .parts
            .partition_point(|p| p.lo.as_slice() <= from)
            .saturating_sub(1);
        let seek_from = if from > self.parts[self.idx].lo.as_slice() {
            from.to_vec()
        } else {
            self.parts[self.idx].lo.clone()
        };
        let snapshot = self.snapshot;
        self.parts[self.idx].iter.seek(&make_internal_key(
            &seek_from,
            snapshot,
            ValueType::Value,
        ))?;
        self.advance_to_visible(None)
    }

    fn advance_to_visible(&mut self, mut last_key: Option<Vec<u8>>) -> Result<()> {
        self.current = None;
        while self.idx < self.parts.len() {
            let snapshot = self.snapshot;
            let part = &mut self.parts[self.idx];
            while part.iter.valid() {
                let ikey = part.iter.ikey();
                let user_key = extract_user_key(ikey);
                if let Some(hi) = &part.hi {
                    if user_key >= hi.as_slice() {
                        break; // beyond this partition's range
                    }
                }
                let (seq, t) = extract_seq_type(ikey)?;
                if last_key.as_deref() != Some(user_key) && seq <= snapshot {
                    last_key = Some(user_key.to_vec());
                    if t == ValueType::Value {
                        let key = user_key.to_vec();
                        let slot = SeparatedValue::decode(part.iter.value())?;
                        let value = match slot {
                            SeparatedValue::Inline(v) => v,
                            SeparatedValue::Pointer(ptr) => {
                                if let Some(r) =
                                    self.pinned_logs.get(&(ptr.partition, ptr.log_number))
                                {
                                    read_value_record(r.as_ref(), ptr.offset, ptr.length)?
                                } else {
                                    self.resolver.read(&ptr)?
                                }
                            }
                        };
                        self.current = Some((key, value));
                        return Ok(());
                    }
                }
                part.iter.next()?;
            }
            // Partition exhausted: move to the next one from its start.
            self.idx += 1;
            if self.idx < self.parts.len() {
                let lo = self.parts[self.idx].lo.clone();
                self.parts[self.idx].iter.seek(&make_internal_key(
                    &lo,
                    snapshot,
                    ValueType::Value,
                ))?;
            }
        }
        Ok(())
    }

    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Current user key. Panics if not [`valid`](Self::valid).
    pub fn key(&self) -> &[u8] {
        &self.current.as_ref().expect("valid iterator").0
    }

    /// Current value (pointers already resolved). Panics if not valid.
    pub fn value(&self) -> &[u8] {
        &self.current.as_ref().expect("valid iterator").1
    }

    /// Advance to the next live key (possibly crossing partitions).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<()> {
        let last = self.current.take().expect("valid iterator").0;
        if self.idx < self.parts.len() {
            self.parts[self.idx].iter.next()?;
        }
        self.advance_to_visible(Some(last))
    }
}
