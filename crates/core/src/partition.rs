//! Runtime state of one range partition: memtable + WAL, UnsortedStore
//! tables with their hash index, the SortedStore run, and the value log.

use crate::meta::{PartitionMeta, TableMeta};
use crate::options::UniKvOptions;
use crate::resolver::partition_dir;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::coding::{get_varint64, put_varint64};
use unikv_common::ikey::{compare_internal_keys, extract_user_key};
use unikv_common::Result;
use unikv_hashindex::TwoLevelHashIndex;
use unikv_memtable::MemTable;
use unikv_sstable::{BlockCache, Table, TableOptions};
use unikv_vlog::ValueLog;
use unikv_wal::LogWriter;

/// Name of the hash-index checkpoint file within a partition directory.
pub const INDEX_CKPT: &str = "INDEX.ckpt";

/// Encode a *self-describing* hash-index checkpoint: the numbers of the
/// unsorted tables the snapshot covers travel inside the file, followed
/// by the index snapshot itself (which carries its own CRC).
///
/// The covered list must live in this file, not in `META`: the two are
/// written at different instants, so a crash between them would otherwise
/// pair a checkpoint with the other side's table list — recovery would
/// then skip re-indexing tables the checkpoint never contained, silently
/// losing keys from the hash index.
pub(crate) fn encode_index_ckpt(tables: &[u64], index: &TwoLevelHashIndex) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint64(&mut out, tables.len() as u64);
    for t in tables {
        put_varint64(&mut out, *t);
    }
    out.extend_from_slice(&index.checkpoint());
    out
}

/// Decode a checkpoint written by [`encode_index_ckpt`]. Any framing or
/// CRC problem is an error; callers fall back to rebuilding the index
/// from the tables themselves.
pub(crate) fn decode_index_ckpt(data: &[u8]) -> Result<(Vec<u64>, TwoLevelHashIndex)> {
    let (count, mut pos) = get_varint64(data)?;
    let mut tables = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        let (t, n) = get_varint64(&data[pos..])?;
        pos += n;
        tables.push(t);
    }
    Ok((tables, TwoLevelHashIndex::restore(&data[pos..])?))
}

/// A sealed (immutable) memtable handed off to background maintenance,
/// together with the WAL file that protects it until its flush commits.
#[derive(Clone)]
pub struct SealedMem {
    /// WAL number recorded in `PartitionMeta::sealed_wals`.
    pub wal_number: u64,
    /// The frozen memtable; reads keep consulting it until the flushed
    /// table is installed.
    pub mem: Arc<MemTable>,
    /// Seq of the `Seal` lifecycle event that froze this memtable; the
    /// eventual flush's `FlushStart` event uses it as its `cause` so the
    /// seal→flush causal link survives the handoff to a worker thread.
    pub cause: Option<u64>,
}

/// Live state of one partition.
pub struct Partition {
    /// Persistent metadata (mirrors the last committed META snapshot plus
    /// in-flight changes about to be committed).
    pub meta: PartitionMeta,
    /// Active memtable.
    pub mem: Arc<MemTable>,
    /// Sealed memtables awaiting flush, oldest first. Always empty in
    /// deterministic inline mode (`background_jobs = 0`).
    pub imms: Vec<SealedMem>,
    /// WAL protecting `mem`.
    pub wal: LogWriter,
    /// The two-level hash index over the UnsortedStore.
    pub index: TwoLevelHashIndex,
    /// Value logs owned by this partition. Behind its own mutex so merge
    /// and GC can append values without holding the database core lock;
    /// never take the core lock while holding a vlog lock.
    pub vlog: Arc<parking_lot::Mutex<ValueLog>>,
    /// Open table handles (both tiers), keyed by file number. Behind a
    /// mutex so readers holding only the database read lock can populate
    /// the cache.
    pub tables: parking_lot::Mutex<HashMap<u64, Arc<Table>>>,
    /// Flushes since the last index checkpoint.
    pub flushes_since_ckpt: u32,
}

impl Partition {
    /// Directory of this partition under `root`.
    pub fn dir(root: &Path, id: u32) -> PathBuf {
        partition_dir(root, id)
    }

    /// Lock the table-handle cache.
    pub fn tables_guard(&self) -> parking_lot::MutexGuard<'_, HashMap<u64, Arc<Table>>> {
        self.tables.lock()
    }

    /// Drop a table handle (file about to be deleted).
    pub fn evict_table(&self, number: u64) {
        if let Some(t) = self.tables.lock().remove(&number) {
            t.evict_from_cache();
        }
    }

    /// UnsortedStore tables newest-first (reverse flush order).
    pub fn unsorted_newest_first(&self) -> impl Iterator<Item = &TableMeta> {
        self.meta.unsorted.iter().rev()
    }

    /// The SortedStore table that may contain `user_key`, found by binary
    /// search over the in-memory boundary keys (paper: a lookup touches at
    /// most one SSTable because the run is fully sorted).
    pub fn sorted_table_for(&self, user_key: &[u8]) -> Option<&TableMeta> {
        let idx = self
            .meta
            .sorted
            .partition_point(|t| extract_user_key(&t.largest) < user_key);
        let t = self.meta.sorted.get(idx)?;
        (extract_user_key(&t.smallest) <= user_key).then_some(t)
    }

    /// Bytes in the UnsortedStore.
    pub fn unsorted_bytes(&self) -> u64 {
        self.meta.unsorted.iter().map(|t| t.size).sum()
    }

    /// Bytes in the SortedStore (keys + pointers/inline values).
    pub fn sorted_bytes(&self) -> u64 {
        self.meta.sorted.iter().map(|t| t.size).sum()
    }

    /// Approximate logical partition size used for the split trigger:
    /// tiers plus live separated values.
    pub fn logical_size(&self) -> u64 {
        self.unsorted_bytes() + self.sorted_bytes() + self.meta.live_value_bytes
    }

    /// Backpressure inputs for this partition: `(sealed memtables
    /// awaiting flush, UnsortedStore table count)` — the two debt
    /// dimensions [`crate::maintenance::stall_level`] brakes against.
    pub fn stall_debt(&self) -> (usize, usize) {
        (self.imms.len(), self.meta.unsorted.len())
    }

    /// True if `user_key` belongs to this partition's range.
    pub fn contains(&self, user_key: &[u8]) -> bool {
        self.meta.lo.as_slice() <= user_key
            && match &self.meta.hi {
                Some(hi) => user_key < hi.as_slice(),
                None => true,
            }
    }
}

/// Build the standard table options for UniKV tables (internal-key order,
/// optional shared block cache; **no Bloom filters** — the paper removes
/// them, the hash index and sorted-run boundary search replace them).
pub fn table_options(cache: Option<Arc<BlockCache>>) -> TableOptions {
    table_options_with_io(cache, None)
}

/// [`table_options`] plus registry-backed table I/O counters (block
/// reads, cache hit/miss) — the database passes its metrics bundle here.
pub fn table_options_with_io(
    cache: Option<Arc<BlockCache>>,
    io: Option<unikv_sstable::TableIoMetrics>,
) -> TableOptions {
    TableOptions {
        cmp: compare_internal_keys,
        cache,
        io,
    }
}

/// Compute the index-checkpoint cadence from options (`unsorted_limit/2`
/// flushes in the paper; explicit knob here).
pub fn checkpoint_due(opts: &UniKvOptions, flushes_since: u32) -> bool {
    flushes_since >= opts.index_checkpoint_interval
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_common::ikey::{make_internal_key, ValueType};
    use unikv_env::mem::MemEnv;
    use unikv_env::Env;
    use unikv_sstable::{TableBuilder, TableBuilderOptions};

    fn ik(k: &[u8], seq: u64) -> Vec<u8> {
        make_internal_key(k, seq, ValueType::Value)
    }

    fn build_meta(env: &Arc<MemEnv>, path: &Path, lo: &[u8], hi: &[u8], number: u64) -> TableMeta {
        let mut b = TableBuilder::new(
            env.new_writable(path).unwrap(),
            TableBuilderOptions::default(),
        );
        b.add(&ik(lo, 1), b"x").unwrap();
        if hi != lo {
            b.add(&ik(hi, 1), b"y").unwrap();
        }
        let props = b.finish().unwrap();
        // Sanity: table reopens with the shared UniKV options.
        Table::open(
            env.new_random_access(path).unwrap(),
            props.file_size,
            table_options(None),
        )
        .unwrap();
        TableMeta {
            number,
            size: props.file_size,
            smallest: props.smallest,
            largest: props.largest,
        }
    }

    fn partition_with_sorted(metas: Vec<TableMeta>) -> crate::meta::PartitionMeta {
        crate::meta::PartitionMeta {
            id: 0,
            sorted: metas,
            ..Default::default()
        }
    }

    #[test]
    fn sorted_table_for_routes_by_boundary_keys() {
        let env = MemEnv::shared();
        let t1 = build_meta(&env, Path::new("/1.sst"), b"b", b"f", 1);
        let t2 = build_meta(&env, Path::new("/2.sst"), b"k", b"p", 2);
        let meta = partition_with_sorted(vec![t1, t2]);
        let p = test_partition(meta);
        assert_eq!(p.sorted_table_for(b"b").map(|t| t.number), Some(1));
        assert_eq!(p.sorted_table_for(b"d").map(|t| t.number), Some(1));
        assert_eq!(p.sorted_table_for(b"f").map(|t| t.number), Some(1));
        // Gap between runs: no table can contain "h".
        assert_eq!(p.sorted_table_for(b"h").map(|t| t.number), None);
        assert_eq!(p.sorted_table_for(b"m").map(|t| t.number), Some(2));
        assert_eq!(p.sorted_table_for(b"a"), None);
        assert_eq!(p.sorted_table_for(b"z"), None);
    }

    #[test]
    fn contains_respects_half_open_range() {
        let mut meta = partition_with_sorted(vec![]);
        meta.lo = b"g".to_vec();
        meta.hi = Some(b"p".to_vec());
        let p = test_partition(meta);
        assert!(!p.contains(b"f"));
        assert!(p.contains(b"g"));
        assert!(p.contains(b"o"));
        assert!(!p.contains(b"p"));
        assert!(!p.contains(b"z"));
    }

    #[test]
    fn size_accounting_sums_tiers() {
        let env = MemEnv::shared();
        let t = build_meta(&env, Path::new("/t.sst"), b"a", b"b", 1);
        let size = t.size;
        let mut meta = partition_with_sorted(vec![t]);
        meta.unsorted.push(TableMeta {
            number: 2,
            size: 100,
            smallest: ik(b"a", 1),
            largest: ik(b"z", 1),
        });
        meta.live_value_bytes = 555;
        let p = test_partition(meta);
        assert_eq!(p.unsorted_bytes(), 100);
        assert_eq!(p.sorted_bytes(), size);
        assert_eq!(p.logical_size(), 100 + size + 555);
        assert_eq!(p.unsorted_newest_first().next().map(|t| t.number), Some(2));
    }

    fn test_partition(meta: crate::meta::PartitionMeta) -> Partition {
        let env = MemEnv::shared();
        Partition {
            meta,
            mem: Arc::new(unikv_memtable::MemTable::new()),
            imms: Vec::new(),
            wal: unikv_wal::LogWriter::new(env.new_writable(Path::new("/wal")).unwrap()),
            index: unikv_hashindex::TwoLevelHashIndex::new(16, 2),
            vlog: Arc::new(parking_lot::Mutex::new(
                unikv_vlog::ValueLog::open(env, "/vlog", 0, 1 << 20).unwrap(),
            )),
            tables: parking_lot::Mutex::new(HashMap::new()),
            flushes_since_ckpt: 0,
        }
    }
}
