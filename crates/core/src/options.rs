//! UniKV tuning knobs, including the ablation switches for experiment E7–E10.

/// Configuration for a [`crate::UniKv`] instance.
///
/// Defaults are scaled from the paper's server configuration to laptop
/// scale (see DESIGN.md §6); every threshold keeps the same *ratio* to the
/// write buffer, so flush/merge/GC/split frequency per operation matches.
#[derive(Debug, Clone)]
pub struct UniKvOptions {
    /// Memtable size that triggers a flush into the UnsortedStore.
    pub write_buffer_size: usize,
    /// Target SSTable size for SortedStore output.
    pub table_size: usize,
    /// SSTable data-block size (paper: 4 KiB).
    pub block_size: usize,
    /// UnsortedStore byte budget; reaching it triggers a merge into the
    /// SortedStore (`UnsortedLimit`).
    pub unsorted_limit_bytes: u64,
    /// Number of UnsortedStore tables that triggers the size-based merge
    /// keeping scans cheap (`scanMergeLimit`).
    pub scan_merge_limit: usize,
    /// Partition size (SortedStore keys + live values) that triggers a
    /// range split (`partitionSizeLimit`).
    pub partition_size_limit: u64,
    /// Value-log file rotation size (GC granularity).
    pub max_log_size: u64,
    /// Run GC after a merge when dead log bytes exceed this fraction of
    /// total log bytes.
    pub gc_garbage_ratio: f64,
    /// Minimum log bytes before GC is considered at all.
    pub gc_min_bytes: u64,
    /// Candidate hash functions in the two-level index (`n`).
    pub num_hashes: usize,
    /// Checkpoint the hash index every this many flushes (paper:
    /// `unsorted_limit / 2` flushes).
    pub index_checkpoint_interval: u32,
    /// Threads used to fetch values in parallel during scans (paper: 32).
    pub value_fetch_threads: usize,
    /// Block-cache capacity in bytes (0 disables).
    pub block_cache_bytes: usize,
    /// fsync the WAL on every write.
    pub sync_writes: bool,

    // ---- Ablation switches (experiments E7–E10) ----
    /// E7: disable the hash index; UnsortedStore lookups scan tables
    /// newest-first instead.
    pub enable_hash_index: bool,
    /// E8: disable partial KV separation; merges rewrite values into the
    /// SortedStore tables.
    pub enable_kv_separation: bool,
    /// E9: disable dynamic range partitioning; the single partition's
    /// SortedStore grows without bound.
    pub enable_partitioning: bool,
    /// E10: disable scan optimizations (size-based merge, parallel value
    /// fetch, readahead).
    pub enable_scan_optimization: bool,
}

impl Default for UniKvOptions {
    fn default() -> Self {
        let write_buffer_size = 1 << 20;
        UniKvOptions {
            write_buffer_size,
            table_size: 1 << 20,
            block_size: 4096,
            unsorted_limit_bytes: 8 * write_buffer_size as u64,
            scan_merge_limit: 4,
            partition_size_limit: 64 << 20,
            max_log_size: 4 << 20,
            gc_garbage_ratio: 0.5,
            gc_min_bytes: 4 << 20,
            num_hashes: 2,
            index_checkpoint_interval: 4,
            value_fetch_threads: 32,
            block_cache_bytes: 8 << 20,
            sync_writes: false,
            enable_hash_index: true,
            enable_kv_separation: true,
            enable_partitioning: true,
            enable_scan_optimization: true,
        }
    }
}

impl UniKvOptions {
    /// A configuration for small hermetic tests: tiny buffers so flushes,
    /// merges, GC, and splits all fire within a few hundred operations.
    pub fn small_for_tests() -> Self {
        let write_buffer_size = 4 << 10;
        UniKvOptions {
            write_buffer_size,
            table_size: 8 << 10,
            unsorted_limit_bytes: 4 * write_buffer_size as u64,
            scan_merge_limit: 3,
            partition_size_limit: 96 << 10,
            max_log_size: 16 << 10,
            gc_min_bytes: 16 << 10,
            index_checkpoint_interval: 2,
            value_fetch_threads: 4,
            block_cache_bytes: 256 << 10,
            ..Default::default()
        }
    }

    /// Validate invariants between knobs.
    pub fn validate(&self) -> unikv_common::Result<()> {
        if self.write_buffer_size == 0 || self.table_size == 0 {
            return Err(unikv_common::Error::invalid_argument(
                "buffer and table sizes must be positive",
            ));
        }
        if self.unsorted_limit_bytes < self.write_buffer_size as u64 {
            return Err(unikv_common::Error::invalid_argument(
                "unsorted_limit_bytes must cover at least one flush",
            ));
        }
        if self.num_hashes == 0 || self.num_hashes > unikv_common::hash::FAMILY.len() {
            return Err(unikv_common::Error::invalid_argument(
                "num_hashes out of range",
            ));
        }
        if self.value_fetch_threads == 0 {
            return Err(unikv_common::Error::invalid_argument(
                "value_fetch_threads must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.gc_garbage_ratio) {
            return Err(unikv_common::Error::invalid_argument(
                "gc_garbage_ratio must be within [0, 1]",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        UniKvOptions::default().validate().unwrap();
        UniKvOptions::small_for_tests().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut o = UniKvOptions::default();
        o.unsorted_limit_bytes = 1;
        assert!(o.validate().is_err());
        let mut o = UniKvOptions::default();
        o.num_hashes = 9;
        assert!(o.validate().is_err());
        let mut o = UniKvOptions::default();
        o.value_fetch_threads = 0;
        assert!(o.validate().is_err());
        let mut o = UniKvOptions::default();
        o.gc_garbage_ratio = 1.5;
        assert!(o.validate().is_err());
    }
}
