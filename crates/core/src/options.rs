//! UniKV tuning knobs, including the ablation switches for experiment E7–E10.

/// Configuration for a [`crate::UniKv`] instance.
///
/// Defaults are scaled from the paper's server configuration to laptop
/// scale (see DESIGN.md §6); every threshold keeps the same *ratio* to the
/// write buffer, so flush/merge/GC/split frequency per operation matches.
#[derive(Debug, Clone)]
pub struct UniKvOptions {
    /// Memtable size that triggers a flush into the UnsortedStore.
    pub write_buffer_size: usize,
    /// Target SSTable size for SortedStore output.
    pub table_size: usize,
    /// SSTable data-block size (paper: 4 KiB).
    pub block_size: usize,
    /// UnsortedStore byte budget; reaching it triggers a merge into the
    /// SortedStore (`UnsortedLimit`).
    pub unsorted_limit_bytes: u64,
    /// Number of UnsortedStore tables that triggers the size-based merge
    /// keeping scans cheap (`scanMergeLimit`).
    pub scan_merge_limit: usize,
    /// Partition size (SortedStore keys + live values) that triggers a
    /// range split (`partitionSizeLimit`).
    pub partition_size_limit: u64,
    /// Value-log file rotation size (GC granularity).
    pub max_log_size: u64,
    /// Run GC after a merge when dead log bytes exceed this fraction of
    /// total log bytes.
    pub gc_garbage_ratio: f64,
    /// Minimum log bytes before GC is considered at all.
    pub gc_min_bytes: u64,
    /// Candidate hash functions in the two-level index (`n`).
    pub num_hashes: usize,
    /// Checkpoint the hash index every this many flushes (paper:
    /// `unsorted_limit / 2` flushes).
    pub index_checkpoint_interval: u32,
    /// Threads used to fetch values in parallel during scans (paper: 32).
    pub value_fetch_threads: usize,
    /// Block-cache capacity in bytes (0 disables).
    pub block_cache_bytes: usize,
    /// fsync the WAL on every write.
    pub sync_writes: bool,
    /// Verify the database aggressively: at open, every META-committed
    /// table must exist at its recorded size with a readable footer and
    /// index, every owned/inherited value log must exist, and WAL replay
    /// fails with `Error::Corruption` on mid-log damage (a torn *tail* is
    /// still truncated — that is what a crash legitimately leaves behind).
    /// Block, value, and META checksums are verified on every read
    /// regardless of this flag; corruption found anywhere is surfaced as
    /// a typed `Error::Corruption`, never served.
    pub paranoid_checks: bool,

    // ---- Background maintenance & backpressure ----
    /// Worker threads for background flush/merge/GC/split. `0` (the
    /// default) keeps the paper-faithful deterministic mode: every
    /// structural operation runs inline under the write that triggered
    /// it, and the on-disk layout is byte-identical to previous versions.
    pub background_jobs: usize,
    /// Sealed-memtable count at which writes are briefly slowed
    /// (backpressure lets flushes catch up).
    pub slowdown_sealed_memtables: usize,
    /// Sealed-memtable count at which writes hard-stop until a flush
    /// completes.
    pub stop_sealed_memtables: usize,
    /// UnsortedStore table count at which writes are briefly slowed
    /// (merge backlog building up).
    pub slowdown_unsorted_tables: usize,
    /// UnsortedStore table count at which writes hard-stop until a merge
    /// completes.
    pub stop_unsorted_tables: usize,
    /// Duration of one slowdown pause, in microseconds.
    pub stall_sleep_micros: u64,

    // ---- Graceful degradation (retry/backoff/quarantine) ----
    /// Base backoff before the first retry of a transiently-failed
    /// maintenance job, in milliseconds. Subsequent retries double it
    /// (with deterministic jitter) up to `maint_retry_max_ms`.
    pub maint_retry_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub maint_retry_max_ms: u64,
    /// Transient failures tolerated per job before it is quarantined.
    pub maint_retry_budget: u32,
    /// Interval between probes of a quarantined job, in milliseconds
    /// (each probe re-runs the job once in case the condition cleared).
    pub maint_quarantine_probe_ms: u64,
    /// Seed for the deterministic backoff jitter; pin it to reproduce an
    /// exact retry schedule.
    pub maint_retry_jitter_seed: u64,
    /// Upper bound on waiting for worker threads to exit when the
    /// database handle drops, in milliseconds. Workers past the deadline
    /// are detached (they exit on their own once their current job ends).
    pub shutdown_join_timeout_ms: u64,

    // ---- Observability ----
    /// Record metrics (latency histograms, tier-resolution counters,
    /// subsystem I/O counters) and trace events. When `false`, every
    /// record path is one relaxed atomic load and nothing is allocated.
    pub enable_metrics: bool,
    /// Capacity of the in-memory op-trace ring (`0` disables tracing;
    /// oldest events are dropped once full).
    pub metrics_trace_events: usize,
    /// Persist lifecycle events (seal/flush/merge/GC/split, stalls,
    /// health transitions, WAL retirement — each with a causal `cause`
    /// link) to a JSON-lines `EVENTS` journal under the database root.
    /// Off by default: with no journal and no listeners the event path
    /// is a single atomic increment per structural op.
    pub enable_event_journal: bool,
    /// Rotate the `EVENTS` journal to `EVENTS.old` once the live file
    /// exceeds this many bytes (sequence numbers stay monotonic).
    pub event_journal_max_bytes: u64,
    /// Listeners invoked synchronously for every lifecycle event (the
    /// journal is one). Contract: fast, no re-entrant database calls;
    /// panics are caught and counted, never propagated.
    pub listeners: unikv_common::events::Listeners,

    // ---- Ablation switches (experiments E7–E10) ----
    /// E7: disable the hash index; UnsortedStore lookups scan tables
    /// newest-first instead.
    pub enable_hash_index: bool,
    /// E8: disable partial KV separation; merges rewrite values into the
    /// SortedStore tables.
    pub enable_kv_separation: bool,
    /// E9: disable dynamic range partitioning; the single partition's
    /// SortedStore grows without bound.
    pub enable_partitioning: bool,
    /// E10: disable scan optimizations (size-based merge, parallel value
    /// fetch, readahead).
    pub enable_scan_optimization: bool,
}

impl Default for UniKvOptions {
    fn default() -> Self {
        let write_buffer_size = 1 << 20;
        UniKvOptions {
            write_buffer_size,
            table_size: 1 << 20,
            block_size: 4096,
            unsorted_limit_bytes: 8 * write_buffer_size as u64,
            scan_merge_limit: 4,
            partition_size_limit: 64 << 20,
            max_log_size: 4 << 20,
            gc_garbage_ratio: 0.5,
            gc_min_bytes: 4 << 20,
            num_hashes: 2,
            index_checkpoint_interval: 4,
            value_fetch_threads: 32,
            block_cache_bytes: 8 << 20,
            sync_writes: false,
            paranoid_checks: false,
            background_jobs: 0,
            slowdown_sealed_memtables: 2,
            stop_sealed_memtables: 4,
            slowdown_unsorted_tables: 8,
            stop_unsorted_tables: 12,
            stall_sleep_micros: 1000,
            maint_retry_base_ms: 25,
            maint_retry_max_ms: 2000,
            maint_retry_budget: 5,
            maint_quarantine_probe_ms: 10_000,
            maint_retry_jitter_seed: 0x5eed_u64,
            shutdown_join_timeout_ms: 5000,
            enable_metrics: true,
            metrics_trace_events: 1024,
            enable_event_journal: false,
            event_journal_max_bytes: 4 << 20,
            listeners: unikv_common::events::Listeners::default(),
            enable_hash_index: true,
            enable_kv_separation: true,
            enable_partitioning: true,
            enable_scan_optimization: true,
        }
    }
}

impl UniKvOptions {
    /// A configuration for small hermetic tests: tiny buffers so flushes,
    /// merges, GC, and splits all fire within a few hundred operations.
    pub fn small_for_tests() -> Self {
        let write_buffer_size = 4 << 10;
        UniKvOptions {
            write_buffer_size,
            table_size: 8 << 10,
            unsorted_limit_bytes: 4 * write_buffer_size as u64,
            scan_merge_limit: 3,
            partition_size_limit: 96 << 10,
            max_log_size: 16 << 10,
            gc_min_bytes: 16 << 10,
            index_checkpoint_interval: 2,
            value_fetch_threads: 4,
            block_cache_bytes: 256 << 10,
            maint_retry_base_ms: 2,
            maint_retry_max_ms: 40,
            maint_quarantine_probe_ms: 100,
            ..Default::default()
        }
    }

    /// Validate invariants between knobs.
    pub fn validate(&self) -> unikv_common::Result<()> {
        if self.write_buffer_size == 0 || self.table_size == 0 {
            return Err(unikv_common::Error::invalid_argument(
                "buffer and table sizes must be positive",
            ));
        }
        if self.unsorted_limit_bytes < self.write_buffer_size as u64 {
            return Err(unikv_common::Error::invalid_argument(
                "unsorted_limit_bytes must cover at least one flush",
            ));
        }
        if self.num_hashes == 0 || self.num_hashes > unikv_common::hash::FAMILY.len() {
            return Err(unikv_common::Error::invalid_argument(
                "num_hashes out of range",
            ));
        }
        if self.value_fetch_threads == 0 {
            return Err(unikv_common::Error::invalid_argument(
                "value_fetch_threads must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.gc_garbage_ratio) {
            return Err(unikv_common::Error::invalid_argument(
                "gc_garbage_ratio must be within [0, 1]",
            ));
        }
        if self.slowdown_sealed_memtables == 0
            || self.slowdown_unsorted_tables == 0
            || self.stop_sealed_memtables < self.slowdown_sealed_memtables
            || self.stop_unsorted_tables < self.slowdown_unsorted_tables
        {
            return Err(unikv_common::Error::invalid_argument(
                "stall thresholds must satisfy stop >= slowdown >= 1",
            ));
        }
        if self.maint_retry_base_ms == 0 || self.maint_retry_max_ms < self.maint_retry_base_ms {
            return Err(unikv_common::Error::invalid_argument(
                "maintenance backoff must satisfy max >= base >= 1ms",
            ));
        }
        if self.maint_quarantine_probe_ms == 0 {
            return Err(unikv_common::Error::invalid_argument(
                "maint_quarantine_probe_ms must be positive",
            ));
        }
        if self.enable_event_journal && self.event_journal_max_bytes < 1024 {
            return Err(unikv_common::Error::invalid_argument(
                "event_journal_max_bytes must be at least 1 KiB",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        UniKvOptions::default().validate().unwrap();
        UniKvOptions::small_for_tests().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            UniKvOptions {
                unsorted_limit_bytes: 1,
                ..Default::default()
            },
            UniKvOptions {
                num_hashes: 9,
                ..Default::default()
            },
            UniKvOptions {
                value_fetch_threads: 0,
                ..Default::default()
            },
            UniKvOptions {
                gc_garbage_ratio: 1.5,
                ..Default::default()
            },
            UniKvOptions {
                stop_sealed_memtables: 1,
                slowdown_sealed_memtables: 3,
                ..Default::default()
            },
            UniKvOptions {
                slowdown_unsorted_tables: 0,
                ..Default::default()
            },
            UniKvOptions {
                maint_retry_base_ms: 0,
                ..Default::default()
            },
            UniKvOptions {
                maint_retry_base_ms: 100,
                maint_retry_max_ms: 50,
                ..Default::default()
            },
            UniKvOptions {
                maint_quarantine_probe_ms: 0,
                ..Default::default()
            },
            UniKvOptions {
                enable_event_journal: true,
                event_journal_max_bytes: 100,
                ..Default::default()
            },
        ];
        for o in bad {
            assert!(o.validate().is_err(), "accepted invalid config: {o:?}");
        }
    }
}
