//! Database-level observability bundle: one [`MetricsRegistry`] per
//! database holding the standard engine families plus WAL, value-log,
//! and SSTable I/O counters from the subsystem crates. Every partition
//! records into the same registry, so snapshots are already "merged
//! across partitions"; [`MetricsSnapshot::merge`] remains available for
//! folding multiple databases (or engines) into one report.

use crate::fetch::FetchMetrics;
use crate::options::UniKvOptions;
use std::sync::Arc;
use unikv_common::metrics::{
    Counter, EngineMetrics, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
};
use unikv_sstable::TableIoMetrics;
use unikv_vlog::VlogMetrics;
use unikv_wal::WalMetrics;

/// All metric handles a UniKV database records through.
#[derive(Clone)]
pub struct DbMetrics {
    /// The registry every handle below records into.
    pub registry: Arc<MetricsRegistry>,
    /// Standard cross-engine families (latencies, tier counters).
    pub eng: EngineMetrics,
    /// WAL record/sync counters (shared by every partition's log).
    pub wal: WalMetrics,
    /// Value-log append/rotation counters.
    pub vlog: VlogMetrics,
    /// SSTable block-read and cache hit/miss counters.
    pub table_io: TableIoMetrics,
    /// Values fetched from value logs during scans (pointer jobs).
    pub scan_vlog_fetches: Counter,
    /// Scan fetch-pool dispatch counters (parallel vs inline batches).
    pub fetch: FetchMetrics,
    /// Batch-write latency (one sample per `write_batch` call; the ops
    /// inside a batch count into `writes`/`batch_ops`, not `put_latency`).
    pub batch_latency: Histogram,
    /// Operations applied through `write_batch`.
    pub batch_ops: Counter,
    /// Depth of the background maintenance queue.
    pub maint_queue_depth: Gauge,
}

impl DbMetrics {
    /// Build the registry and register every family. Disabled databases
    /// still register the families (names stay enumerable) but record
    /// nothing and keep the trace ring off.
    pub fn new(opts: &UniKvOptions) -> DbMetrics {
        let trace_cap = if opts.enable_metrics {
            opts.metrics_trace_events
        } else {
            0
        };
        let registry = MetricsRegistry::new(opts.enable_metrics, trace_cap);
        DbMetrics {
            eng: EngineMetrics::new(&registry),
            wal: WalMetrics::new(&registry),
            vlog: VlogMetrics::new(&registry),
            table_io: TableIoMetrics::new(&registry),
            scan_vlog_fetches: registry.counter("scan_vlog_fetches"),
            fetch: FetchMetrics::new(&registry),
            batch_latency: registry.histogram("batch_latency_us"),
            batch_ops: registry.counter("batch_ops"),
            maint_queue_depth: registry.gauge("maint_queue_depth"),
            registry,
        }
    }

    /// Current snapshot of every family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Human-readable report: every family plus the tail of the op trace.
    pub fn report_text(&self) -> String {
        let mut out = self.registry.snapshot().render_text();
        let trace = self.registry.trace();
        let events = trace.events();
        out.push_str(&format!(
            "== trace ({} events retained, cap {}, {} dropped) ==\n",
            events.len(),
            trace.capacity(),
            trace.dropped()
        ));
        const TAIL: usize = 16;
        for ev in events.iter().rev().take(TAIL).rev() {
            out.push_str(&format!("  {ev}\n"));
        }
        out
    }

    /// Stable machine-readable report (tab-separated families).
    pub fn report_machine(&self) -> String {
        self.registry.snapshot().render_machine()
    }
}
