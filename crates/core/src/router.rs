//! Size-differentiated store routing — the mitigation the paper sketches
//! for very small KV pairs (§Memory overhead: "one solution is to manage
//! the indexing of KV pairs of different sizes differently, e.g., the
//! classic LSM-tree for small KV pairs and UniKV for large ones").
//!
//! [`SizeRouter`] composes a classic LSM store (small values: hash-index
//! entries would cost a large fraction of such pairs) with a UniKV store
//! (medium/large values, which benefit from KV separation and hash
//! indexing). Writes route by the value's size; the *other* store receives
//! a tombstone so a key whose value crosses the threshold never resurrects
//! an old version. Reads check the LSM first, then UniKV; scans merge the
//! two sorted streams.

use crate::{UniKv, UniKvOptions};
use std::path::PathBuf;
use std::sync::Arc;
use unikv_common::Result;
use unikv_env::Env;
use unikv_lsm::db::ScanItem;
use unikv_lsm::{LsmDb, LsmOptions};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct SizeRouterOptions {
    /// Values strictly smaller than this go to the LSM store.
    pub small_value_threshold: usize,
    /// Options for the small-value LSM store.
    pub lsm: LsmOptions,
    /// Options for the large-value UniKV store.
    pub unikv: UniKvOptions,
}

impl Default for SizeRouterOptions {
    fn default() -> Self {
        SizeRouterOptions {
            small_value_threshold: 128,
            lsm: LsmOptions::default(),
            unikv: UniKvOptions::default(),
        }
    }
}

/// A KV store that routes by value size across two engines.
///
/// ```
/// use unikv::{SizeRouter, SizeRouterOptions};
/// use unikv_env::mem::MemEnv;
///
/// let router = SizeRouter::open(MemEnv::shared(), "/db", SizeRouterOptions::default()).unwrap();
/// router.put(b"small", b"x").unwrap();            // goes to the LSM side
/// router.put(b"large", &[0u8; 4096]).unwrap();    // goes to the UniKV side
/// assert_eq!(router.get(b"small").unwrap(), Some(b"x".to_vec()));
/// assert_eq!(router.get(b"large").unwrap().unwrap().len(), 4096);
/// ```
pub struct SizeRouter {
    small: LsmDb,
    large: UniKv,
    threshold: usize,
}

impl SizeRouter {
    /// Open both stores under `root` (`root/small`, `root/large`).
    pub fn open(
        env: Arc<dyn Env>,
        root: impl Into<PathBuf>,
        opts: SizeRouterOptions,
    ) -> Result<SizeRouter> {
        let root = root.into();
        Ok(SizeRouter {
            small: LsmDb::open(env.clone(), root.join("small"), opts.lsm)?,
            large: UniKv::open(env, root.join("large"), opts.unikv)?,
            threshold: opts.small_value_threshold,
        })
    }

    /// The size boundary between the two stores.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Insert or update `key`. If the key currently lives in the other
    /// store (its value size crossed the threshold), that store receives a
    /// tombstone so the old version never resurrects. The existence probe
    /// is cheap: a miss in an empty or cold store touches no data blocks.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        if value.len() < self.threshold {
            self.small.put(key, value)?;
            if self.large.get(key)?.is_some() {
                self.large.delete(key)?;
            }
            Ok(())
        } else {
            self.large.put(key, value)?;
            if self.small.get(key)?.is_some() {
                self.small.delete(key)?;
            }
            Ok(())
        }
    }

    /// Delete `key` from both stores.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.small.delete(key)?;
        self.large.delete(key)
    }

    /// Point lookup: at most one store holds a live version.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(v) = self.small.get(key)? {
            return Ok(Some(v));
        }
        self.large.get(key)
    }

    /// Range scan: merge the two stores' sorted streams. Keys are unique
    /// across stores (puts tombstone the other side), so the merge is a
    /// plain two-way interleave.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        let a = self.small.scan(from, limit)?;
        let b = self.large.scan(from, limit)?;
        let mut out = Vec::with_capacity(limit.min(a.len() + b.len()));
        let (mut i, mut j) = (0, 0);
        while out.len() < limit && (i < a.len() || j < b.len()) {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.key <= y.key,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_a {
                out.push(a[i].clone());
                i += 1;
            } else {
                out.push(b[j].clone());
                j += 1;
            }
        }
        Ok(out)
    }

    /// Force both stores' buffers to disk.
    pub fn flush(&self) -> Result<()> {
        self.small.flush()?;
        self.large.flush()
    }

    /// Access the small-value store (diagnostics).
    pub fn small_store(&self) -> &LsmDb {
        &self.small
    }

    /// Access the large-value store (diagnostics).
    pub fn large_store(&self) -> &UniKv {
        &self.large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;

    fn open_router(threshold: usize) -> SizeRouter {
        let opts = SizeRouterOptions {
            small_value_threshold: threshold,
            lsm: LsmOptions {
                write_buffer_size: 8 << 10,
                table_size: 8 << 10,
                base_level_bytes: 32 << 10,
                ..Default::default()
            },
            unikv: UniKvOptions::small_for_tests(),
        };
        SizeRouter::open(MemEnv::shared(), "/router", opts).unwrap()
    }

    #[test]
    fn routes_by_size() {
        let r = open_router(64);
        r.put(b"small", b"tiny").unwrap();
        r.put(b"large", &[7u8; 500]).unwrap();
        assert_eq!(r.get(b"small").unwrap(), Some(b"tiny".to_vec()));
        assert_eq!(r.get(b"large").unwrap(), Some(vec![7u8; 500]));
        // Verify placement.
        assert_eq!(
            r.small_store().get(b"small").unwrap(),
            Some(b"tiny".to_vec())
        );
        assert_eq!(r.small_store().get(b"large").unwrap(), None);
        assert_eq!(r.large_store().get(b"large").unwrap(), Some(vec![7u8; 500]));
    }

    #[test]
    fn size_crossing_updates_never_resurrect() {
        let r = open_router(64);
        r.put(b"k", &[1u8; 500]).unwrap(); // large
        r.put(b"k", b"now-small").unwrap(); // crosses down
        assert_eq!(r.get(b"k").unwrap(), Some(b"now-small".to_vec()));
        r.put(b"k", &[2u8; 500]).unwrap(); // crosses back up
        assert_eq!(r.get(b"k").unwrap(), Some(vec![2u8; 500]));
        r.delete(b"k").unwrap();
        assert_eq!(r.get(b"k").unwrap(), None);
    }

    #[test]
    fn scan_merges_both_stores_sorted() {
        let r = open_router(64);
        for i in 0..200u32 {
            let key = format!("key{i:04}");
            if i % 2 == 0 {
                r.put(key.as_bytes(), b"s").unwrap();
            } else {
                r.put(key.as_bytes(), &[i as u8; 300]).unwrap();
            }
        }
        let items = r.scan(b"key0000", 50).unwrap();
        assert_eq!(items.len(), 50);
        for (n, item) in items.iter().enumerate() {
            assert_eq!(item.key, format!("key{n:04}").into_bytes());
            if n % 2 == 0 {
                assert_eq!(item.value, b"s".to_vec());
            } else {
                assert_eq!(item.value.len(), 300);
            }
        }
        // Limit respected when one side dominates.
        assert_eq!(r.scan(b"key0190", 100).unwrap().len(), 10);
    }

    #[test]
    fn mixed_sizes_with_model() {
        use std::collections::BTreeMap;
        let r = open_router(100);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut s = 0x77u64;
        for step in 0..2_000u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = format!("k{:03}", s % 300).into_bytes();
            match s % 7 {
                0 => {
                    r.delete(&k).unwrap();
                    model.remove(&k);
                }
                _ => {
                    let len = (s % 400) as usize;
                    let v = vec![(step % 251) as u8; len];
                    r.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
            }
        }
        for i in 0..300u64 {
            let k = format!("k{i:03}").into_bytes();
            assert_eq!(r.get(&k).unwrap(), model.get(&k).cloned());
        }
        let got = r.scan(b"", 1000).unwrap();
        assert_eq!(got.len(), model.len());
    }

    #[test]
    fn index_memory_savings_for_small_values() {
        // With all-small values, the router's UniKV side holds only the
        // routing tombstones (no values), so hash-index memory is bounded
        // by 8 B per key of *tombstones* — and merges drop those, keeping
        // the overhead transient. This is the point of the paper's
        // suggestion: small pairs never pay per-value index entries.
        let r = open_router(128);
        for i in 0..2_000u32 {
            r.put(format!("k{i:05}").as_bytes(), b"tiny-value").unwrap();
        }
        let idx = r.large_store().index_memory_bytes();
        assert!(idx <= 2_000 * 8, "index too large: {idx}");
        // After a full merge the tombstones (and their index entries) die.
        r.large_store().compact_all().unwrap();
        assert_eq!(r.large_store().index_memory_bytes(), 0);
        assert_eq!(r.large_store().logical_bytes(), 0);
        assert_eq!(r.get(b"k00000").unwrap(), Some(b"tiny-value".to_vec()));
    }
}
