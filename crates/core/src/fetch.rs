//! Parallel value fetching for scans (paper §Scan Optimization and
//! §Implementation: "UniKV maintains a pool of 32 threads and assigns
//! threads from the pool to fetch values in parallel").
//!
//! [`FetchPool`] is that pool: long-lived workers fed through a channel,
//! so a scan pays no thread-spawn cost. Small batches are fetched inline —
//! parallelism only wins once per-value read latency dominates dispatch.

use crate::resolver::ValueResolver;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::Arc;
use unikv_common::metrics::{Counter, MetricsRegistry};
use unikv_common::{Result, ValuePointer};

/// Batches below this size are fetched inline by the calling thread.
const MIN_PARALLEL_JOBS: usize = 64;
/// Minimum values handed to one worker per dispatch.
const MIN_JOBS_PER_WORKER: usize = 256;

struct Task {
    resolver: Arc<ValueResolver>,
    jobs: Vec<(usize, ValuePointer)>,
    #[allow(clippy::type_complexity)]
    reply: Sender<Result<Vec<(usize, Vec<u8>)>>>,
}

/// Dispatch counters recorded by [`FetchPool::fetch`] — how often the
/// scan optimization actually engaged the pool versus fetching inline.
#[derive(Clone)]
pub struct FetchMetrics {
    /// Batches large enough to be fanned out across pool workers.
    pub parallel_batches: Counter,
    /// Batches fetched inline on the calling thread (small or `parallel
    /// = false`).
    pub inline_batches: Counter,
}

impl FetchMetrics {
    /// Register the fetch-dispatch families in `registry`.
    pub fn new(registry: &MetricsRegistry) -> FetchMetrics {
        FetchMetrics {
            parallel_batches: registry.counter("fetch_parallel_batches"),
            inline_batches: registry.counter("fetch_inline_batches"),
        }
    }
}

/// A persistent pool of value-fetch workers.
pub struct FetchPool {
    tx: Option<Sender<Task>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
    metrics: Option<FetchMetrics>,
}

impl FetchPool {
    /// Spawn a pool of `size` workers (the paper uses 32).
    pub fn new(size: usize) -> FetchPool {
        let size = size.max(1);
        let (tx, rx): (Sender<Task>, Receiver<Task>) = unbounded();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("unikv-fetch-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            let mut out = Vec::with_capacity(task.jobs.len());
                            let result = (|| {
                                for (idx, ptr) in &task.jobs {
                                    out.push((*idx, task.resolver.read(ptr)?));
                                }
                                Ok(std::mem::take(&mut out))
                            })();
                            // A closed reply channel means the scan already
                            // failed; nothing to do.
                            let _ = task.reply.send(result);
                        }
                    })
                    .expect("spawn fetch worker")
            })
            .collect();
        FetchPool {
            tx: Some(tx),
            workers,
            size,
            metrics: None,
        }
    }

    /// Attach dispatch counters (builder style).
    pub fn with_metrics(mut self, metrics: FetchMetrics) -> FetchPool {
        self.metrics = Some(metrics);
        self
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Fetch every pointer in `jobs`, writing results into `out[idx]`.
    ///
    /// `parallel = false` (ablation E10) fetches inline on the caller.
    /// `readahead` issues prefetch hints before reading.
    pub fn fetch(
        &self,
        resolver: &Arc<ValueResolver>,
        jobs: &[(usize, ValuePointer)],
        out: &mut [Option<Vec<u8>>],
        parallel: bool,
        readahead: bool,
    ) -> Result<()> {
        if readahead {
            for (_, ptr) in jobs {
                resolver.readahead(ptr);
            }
        }
        if !parallel || jobs.len() < MIN_PARALLEL_JOBS {
            if let Some(m) = &self.metrics {
                if !jobs.is_empty() {
                    m.inline_batches.inc();
                }
            }
            for (idx, ptr) in jobs {
                out[*idx] = Some(resolver.read(ptr)?);
            }
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.parallel_batches.inc();
        }

        let workers = self
            .size
            .min(jobs.len() / MIN_JOBS_PER_WORKER)
            .max(2)
            .min(jobs.len());
        let chunk = jobs.len().div_ceil(workers);
        let (reply_tx, reply_rx) = bounded(workers);
        let tx = self.tx.as_ref().expect("pool alive");
        let mut dispatched = 0;
        for part in jobs.chunks(chunk) {
            tx.send(Task {
                resolver: resolver.clone(),
                jobs: part.to_vec(),
                reply: reply_tx.clone(),
            })
            .expect("fetch workers alive");
            dispatched += 1;
        }
        drop(reply_tx);
        let mut first_err = None;
        for _ in 0..dispatched {
            match reply_rx.recv().expect("worker replies") {
                Ok(values) => {
                    for (idx, v) in values {
                        out[idx] = Some(v);
                    }
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for FetchPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers exit their recv loop
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::partition_dir;
    use std::path::PathBuf;
    use unikv_env::mem::MemEnv;
    use unikv_vlog::ValueLog;

    #[allow(clippy::type_complexity)]
    fn setup(n: usize) -> (Arc<ValueResolver>, Vec<(usize, ValuePointer)>, Vec<Vec<u8>>) {
        let env = MemEnv::shared();
        let root = PathBuf::from("/db");
        let mut vl = ValueLog::open(env.clone(), partition_dir(&root, 0), 0, 8 << 10).unwrap();
        let mut jobs = Vec::new();
        let mut expect = Vec::new();
        for i in 0..n {
            let v = format!("value-{i}").repeat(i % 5 + 1).into_bytes();
            let ptr = vl.append(&v).unwrap();
            jobs.push((i, ptr));
            expect.push(v);
        }
        vl.sync().unwrap();
        (Arc::new(ValueResolver::new(env, root)), jobs, expect)
    }

    #[test]
    fn inline_and_pooled_agree() {
        let (resolver, jobs, expect) = setup(500);
        for threads in [1usize, 2, 8, 32] {
            let pool = FetchPool::new(threads);
            for parallel in [false, true] {
                let mut out = vec![None; jobs.len()];
                pool.fetch(&resolver, &jobs, &mut out, parallel, parallel)
                    .unwrap();
                for (i, e) in expect.iter().enumerate() {
                    assert_eq!(
                        out[i].as_ref().unwrap(),
                        e,
                        "threads={threads} parallel={parallel} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let (resolver, jobs, _) = setup(200);
        let pool = FetchPool::new(4);
        for _ in 0..50 {
            let mut out = vec![None; jobs.len()];
            pool.fetch(&resolver, &jobs, &mut out, true, false).unwrap();
            assert!(out.iter().all(|o| o.is_some()));
        }
    }

    #[test]
    fn empty_jobs_ok() {
        let (resolver, _, _) = setup(1);
        let pool = FetchPool::new(2);
        let mut out: Vec<Option<Vec<u8>>> = Vec::new();
        pool.fetch(&resolver, &[], &mut out, true, true).unwrap();
    }

    #[test]
    fn bad_pointer_propagates_error() {
        let (resolver, mut jobs, _) = setup(300);
        jobs[150].1.offset = 1 << 40;
        let pool = FetchPool::new(4);
        let mut out = vec![None; jobs.len()];
        assert!(pool.fetch(&resolver, &jobs, &mut out, true, false).is_err());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = FetchPool::new(8);
        assert_eq!(pool.size(), 8);
        drop(pool); // must not hang
    }
}
