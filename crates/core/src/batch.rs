//! Atomic write batches.
//!
//! A batch's operations reach the WAL as one record and become visible
//! together: a crash either preserves the whole batch or none of it
//! (per-partition: each partition's slice of the batch is one WAL record,
//! all synced before the write returns when `sync_writes` is set).

use unikv_common::coding::{get_length_prefixed_slice, put_length_prefixed_slice};
use unikv_common::{Error, Result, ValueType};

/// An ordered set of writes applied atomically.
///
/// ```
/// use unikv::{UniKv, UniKvOptions, WriteBatch};
/// use unikv_env::mem::MemEnv;
///
/// let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
/// let mut batch = WriteBatch::new();
/// batch.put(b"a".to_vec(), b"1".to_vec()).delete(b"b".to_vec());
/// db.write_batch(&batch).unwrap();
/// assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
/// ```
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    pub(crate) ops: Vec<(ValueType, Vec<u8>, Vec<u8>)>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queue an insert/overwrite.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((ValueType::Value, key.into(), value.into()));
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((ValueType::Deletion, key.into(), Vec::new()));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total bytes of keys+values queued.
    pub fn byte_size(&self) -> usize {
        self.ops.iter().map(|(_, k, v)| k.len() + v.len()).sum()
    }

    /// Validate the batch (no empty keys).
    pub fn validate(&self) -> Result<()> {
        if self.ops.iter().any(|(_, k, _)| k.is_empty()) {
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        Ok(())
    }
}

/// Encode a slice of batch ops (already assigned a base sequence) as one
/// WAL record: `count | (type, key, value)*`. The base sequence travels in
/// the surrounding record framing via the first op's sequence.
pub(crate) fn encode_batch_record(base_seq: u64, ops: &[(ValueType, Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        16 + ops
            .iter()
            .map(|(_, k, v)| k.len() + v.len() + 8)
            .sum::<usize>(),
    );
    unikv_common::coding::put_varint64(&mut out, base_seq);
    unikv_common::coding::put_varint32(&mut out, ops.len() as u32);
    for (t, k, v) in ops {
        out.push(*t as u8);
        put_length_prefixed_slice(&mut out, k);
        put_length_prefixed_slice(&mut out, v);
    }
    out
}

/// Decode a record produced by [`encode_batch_record`]. Yields
/// `(seq, type, key, value)` tuples with consecutive sequences.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_batch_record(rec: &[u8]) -> Result<Vec<(u64, ValueType, Vec<u8>, Vec<u8>)>> {
    let (base_seq, mut pos) = unikv_common::coding::get_varint64(rec)?;
    let (count, n) = unikv_common::coding::get_varint32(&rec[pos..])?;
    pos += n;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count as u64 {
        let t = ValueType::from_u8(
            *rec.get(pos)
                .ok_or_else(|| Error::corruption("batch record truncated"))?,
        )?;
        pos += 1;
        let (k, n) = get_length_prefixed_slice(&rec[pos..])?;
        let k = k.to_vec();
        pos += n;
        let (v, n) = get_length_prefixed_slice(&rec[pos..])?;
        out.push((base_seq + i, t, k, v.to_vec()));
        pos += n;
    }
    if pos != rec.len() {
        return Err(Error::corruption("batch record trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_api() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"a".to_vec(), b"1".to_vec()).delete(b"b".to_vec());
        assert_eq!(b.len(), 2);
        assert_eq!(b.byte_size(), 3);
        b.validate().unwrap();
        let mut bad = WriteBatch::new();
        bad.put(Vec::new(), b"x".to_vec());
        assert!(bad.validate().is_err());
    }

    #[test]
    fn record_roundtrip() {
        let ops = vec![
            (ValueType::Value, b"k1".to_vec(), b"v1".to_vec()),
            (ValueType::Deletion, b"k2".to_vec(), Vec::new()),
            (ValueType::Value, b"k3".to_vec(), vec![0u8; 300]),
        ];
        let rec = encode_batch_record(41, &ops);
        let decoded = decode_batch_record(&rec).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(
            decoded[0],
            (41, ValueType::Value, b"k1".to_vec(), b"v1".to_vec())
        );
        assert_eq!(decoded[1].0, 42);
        assert_eq!(decoded[1].1, ValueType::Deletion);
        assert_eq!(decoded[2].0, 43);
        assert_eq!(decoded[2].3.len(), 300);
    }

    #[test]
    fn record_truncation_detected() {
        let ops = vec![(ValueType::Value, b"k".to_vec(), b"v".to_vec())];
        let rec = encode_batch_record(1, &ops);
        for cut in 1..rec.len() {
            assert!(decode_batch_record(&rec[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = rec.clone();
        extra.push(0);
        assert!(decode_batch_record(&extra).is_err());
    }
}
