//! Offline database scrub: walk every file the `META` snapshot commits to
//! and verify it end to end, without opening (and thus mutating) the
//! database. Backs `dbtool verify` and the corruption-recovery tests.
//!
//! The scrub is read-only and keeps going after the first problem so one
//! pass reports *all* damaged files:
//!
//! * `META` — decoded (embedded CRC).
//! * SSTables (both tiers) — existence, recorded size, and a full
//!   iteration so every data block's checksum is verified.
//! * WALs (active + sealed) — strict replay: a torn tail is normal crash
//!   residue, mid-log damage is corruption; every record must also decode
//!   as a write batch. A missing WAL file is *not* damage (a crash before
//!   the first synced append legitimately leaves none).
//! * Value logs (owned + inherited) — every record's framing and CRC.
//! * `INDEX.ckpt` — restore attempt (embedded CRC). Damage here is
//!   reported but recoverable: recovery rebuilds the index from tables.

use crate::batch::decode_batch_record;
use crate::meta::DbMeta;
use crate::partition::{decode_index_ckpt, table_options, INDEX_CKPT};
use crate::resolver::partition_dir;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::{Error, Result};
use unikv_env::Env;
use unikv_lsm::filenames;
use unikv_sstable::Table;
use unikv_vlog::{verify_vlog_file, vlog_file_name};
use unikv_wal::{LogReader, ReadOutcome};

/// One damaged file found by [`verify_db`].
#[derive(Debug, Clone)]
pub struct FileDamage {
    /// Path of the damaged file.
    pub path: PathBuf,
    /// File kind: `"META"`, `"sstable"`, `"wal"`, `"vlog"`, or
    /// `"index-ckpt"`.
    pub kind: &'static str,
    /// Human-readable description of the damage.
    pub detail: String,
}

/// Result of a full offline scrub.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Files examined (including the ones found damaged).
    pub files_checked: usize,
    /// Every damaged file, in scrub order.
    pub damage: Vec<FileDamage>,
}

impl VerifyReport {
    /// True when no file shows damage.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }

    fn flag(&mut self, path: &Path, kind: &'static str, detail: impl Into<String>) {
        self.damage.push(FileDamage {
            path: path.to_path_buf(),
            kind,
            detail: detail.into(),
        });
    }
}

/// Read every entry of the table at `path`, which verifies the footer,
/// the index block, and each data block's checksum. Also checks the file
/// size against the size `META` recorded at commit time.
fn verify_table(env: &Arc<dyn Env>, path: &Path, recorded_size: u64) -> Result<u64> {
    if !env.file_exists(path) {
        return Err(Error::corruption("file missing"));
    }
    let size = env.file_size(path)?;
    if size != recorded_size {
        return Err(Error::corruption(format!(
            "size {size} != recorded {recorded_size}"
        )));
    }
    let table = Table::open(env.new_random_access(path)?, size, table_options(None))?;
    let mut it = table.iter();
    it.seek_to_first()?;
    let mut entries = 0u64;
    while it.valid() {
        entries += 1;
        it.next()?;
    }
    Ok(entries)
}

/// Strict-replay the WAL at `path`: torn tails truncate (normal), mid-log
/// damage errors, and every surviving record must decode as a batch.
fn verify_wal(env: &Arc<dyn Env>, path: &Path) -> Result<u64> {
    let mut reader = LogReader::new_strict(env.new_sequential(path)?);
    let mut buf = Vec::new();
    let mut records = 0u64;
    while reader.read_record(&mut buf)? == ReadOutcome::Record {
        decode_batch_record(&buf)
            .map_err(|e| Error::corruption(format!("record {records} undecodable: {e}")))?;
        records += 1;
    }
    Ok(records)
}

/// Scrub the database under `root` offline and report per-file damage.
///
/// Requires exclusive access to a *closed* database: unlike
/// [`crate::UniKv::open`], nothing is flushed, committed, or deleted.
/// Returns `Err` only for environment-level failures (e.g. the root or
/// `META` cannot be read at all); verification findings land in the
/// report.
pub fn verify_db(env: Arc<dyn Env>, root: impl AsRef<Path>) -> Result<VerifyReport> {
    let root = root.as_ref();
    let mut report = VerifyReport::default();

    let meta_path = root.join("META");
    report.files_checked += 1;
    if !env.file_exists(&meta_path) {
        report.flag(&meta_path, "META", "missing (database never created?)");
        return Ok(report);
    }
    let meta = match DbMeta::decode(&env.read_to_vec(&meta_path)?) {
        Ok(m) => m,
        Err(e) => {
            report.flag(&meta_path, "META", e.to_string());
            // Without META there is no file inventory to scrub against.
            return Ok(report);
        }
    };

    // Shared logs may be referenced by several partitions; scrub each once.
    let mut seen_vlogs: BTreeSet<(u32, u64)> = BTreeSet::new();
    for p in &meta.partitions {
        let dir = partition_dir(root, p.id);
        for tmeta in p.unsorted.iter().chain(&p.sorted) {
            let path = filenames::table_file(&dir, tmeta.number);
            report.files_checked += 1;
            if let Err(e) = verify_table(&env, &path, tmeta.size) {
                report.flag(&path, "sstable", e.to_string());
            }
        }
        for &n in p.sealed_wals.iter().chain([p.wal_number].iter()) {
            let path = filenames::wal_file(&dir, n);
            if !env.file_exists(&path) {
                continue; // crash before the first synced append
            }
            report.files_checked += 1;
            if let Err(e) = verify_wal(&env, &path) {
                report.flag(&path, "wal", e.to_string());
            }
        }
        for r in p
            .own_logs
            .iter()
            .map(|&n| (p.id, n))
            .chain(p.inherited_logs.iter().map(|l| (l.partition, l.log_number)))
        {
            if !seen_vlogs.insert(r) {
                continue;
            }
            let path = partition_dir(root, r.0).join(vlog_file_name(r.1));
            report.files_checked += 1;
            if !env.file_exists(&path) {
                report.flag(&path, "vlog", "file missing");
                continue;
            }
            if let Err(e) = verify_vlog_file(env.as_ref(), &path) {
                report.flag(&path, "vlog", e.to_string());
            }
        }
        let ckpt = dir.join(INDEX_CKPT);
        if env.file_exists(&ckpt) {
            report.files_checked += 1;
            if let Err(e) = env
                .read_to_vec(&ckpt)
                .and_then(|data| decode_index_ckpt(&data).map(|_| ()))
            {
                report.flag(&ckpt, "index-ckpt", e.to_string());
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::UniKv;
    use crate::options::UniKvOptions;
    use unikv_env::mem::MemEnv;

    fn build_db(env: &Arc<MemEnv>) -> usize {
        let db = UniKv::open(
            env.clone() as Arc<dyn Env>,
            "/db",
            UniKvOptions::small_for_tests(),
        )
        .unwrap();
        for i in 0..400u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 64])
                .unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        400
    }

    #[test]
    fn clean_database_verifies_clean() {
        let env = MemEnv::shared();
        build_db(&env);
        let report = verify_db(env.clone() as Arc<dyn Env>, "/db").unwrap();
        assert!(report.is_clean(), "unexpected damage: {:?}", report.damage);
        assert!(report.files_checked > 3, "scrub saw {report:?}");
    }

    #[test]
    fn missing_meta_is_reported_not_fatal() {
        let env = MemEnv::shared();
        let report = verify_db(env.clone() as Arc<dyn Env>, "/nowhere").unwrap();
        assert_eq!(report.damage.len(), 1);
        assert_eq!(report.damage[0].kind, "META");
    }

    #[test]
    fn flipped_sstable_byte_is_localized() {
        let env = MemEnv::shared();
        build_db(&env);
        // Find any committed table and damage the middle of it.
        let meta = DbMeta::decode(&env.read_to_vec(Path::new("/db/META")).unwrap()).unwrap();
        let p = &meta.partitions[0];
        let t = p.sorted.first().or(p.unsorted.first()).unwrap();
        let path = filenames::table_file(&partition_dir(Path::new("/db"), p.id), t.number);
        let mut data = env.read_to_vec(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        let mut w = env.new_writable(&path).unwrap();
        w.append(&data).unwrap();
        drop(w);

        let report = verify_db(env.clone() as Arc<dyn Env>, "/db").unwrap();
        assert_eq!(report.damage.len(), 1, "damage: {:?}", report.damage);
        assert_eq!(report.damage[0].kind, "sstable");
        assert_eq!(report.damage[0].path, path);
    }
}
