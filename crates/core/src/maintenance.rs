//! Background maintenance: a prioritized job scheduler, worker threads,
//! the write-stall (backpressure) controller, and the health state
//! machine that lets the database degrade and self-heal instead of dying
//! on the first background failure.
//!
//! With `background_jobs = 0` (the default) none of this runs: every
//! structural operation executes inline under the write that triggered it
//! and the on-disk layout is byte-identical to previous versions. With
//! `background_jobs >= 1`, a write that fills the memtable *seals* it
//! (records its WAL in `PartitionMeta::sealed_wals` and continues on a
//! fresh memtable + WAL) and enqueues a flush; merges, scan-merges, GC,
//! and splits are likewise enqueued when their thresholds trip. Worker
//! threads drain the queue highest-priority-first, at most one job per
//! partition at a time.
//!
//! ## Backpressure
//!
//! Foreground writes consult [`stall_level`] before appending: past the
//! `slowdown_*` thresholds they sleep once for
//! [`crate::UniKvOptions::stall_sleep_micros`]; past the `stop_*`
//! thresholds they block until a background job completes. While the
//! database is [`HealthState::Degraded`] or worse the slowdown thresholds
//! are halved, shaving the ingest rate early to give retrying maintenance
//! headroom. Stall time and counts are reported in
//! [`crate::UniKvStats::snapshot`].
//!
//! ## Failure model
//!
//! A failed job is classified by [`unikv_common::Error::is_transient`]:
//!
//! * **Transient** (ENOSPC, EAGAIN/EINTR, timeouts, …) and within the
//!   per-job retry budget: the job is re-queued with exponential backoff
//!   and deterministic jitter ([`backoff_delay_ms`]), seeded from
//!   [`crate::UniKvOptions::maint_retry_jitter_seed`]. Whole-job retry is
//!   safe because every structural operation is commit-safe at every
//!   abort point (the crash matrix proves aborted attempts leave only
//!   orphan files, swept at reopen).
//! * **Permanent** (corruption, invalid argument, internal) or budget
//!   exhausted: the job is *quarantined* per `(kind, partition)` — parked
//!   out of the queue and re-probed every
//!   [`crate::UniKvOptions::maint_quarantine_probe_ms`] in case the
//!   condition cleared. The database keeps running.
//! * **Permanent failure of the META commit step** (or a worker panic):
//!   the database is *poisoned* — queued jobs are dropped and writes and
//!   structural operations return the original error. This is the only
//!   fail-stop path; everything else degrades.
//!
//! ## Health state machine
//!
//! `Healthy → Degraded → ReadOnly → Poisoned`, surfaced via
//! [`crate::UniKv::health`] and recomputed from the queue on every job
//! completion, so recovery is automatic:
//!
//! * **Degraded** — at least one job is retrying or quarantined. Writes
//!   continue; stall thresholds tighten.
//! * **ReadOnly** — a flush is quarantined (sealed memtables are backed
//!   up with no way to drain), a job is retrying out of disk space
//!   (ENOSPC watchdog), or a stalled writer found its partition's flush
//!   stuck in retry. Writes return [`unikv_common::Error::ReadOnly`];
//!   reads and scans keep serving.
//! * **Poisoned** — unrecoverable commit failure; sticky.
//!
//! The moment the offending job succeeds (a retry lands, a quarantine
//! probe finds the disk freed) the state recomputes back toward
//! `Healthy`.

use crate::db::DbInner;
use crate::options::UniKvOptions;
use crate::UniKvStats;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unikv_common::events::{EventBus, EventKind};
use unikv_common::rng::splitmix64_mix;
use unikv_common::{Error, Result};

/// Every named sync point in the flush/merge/GC/split commit sequences,
/// in rough execution order. Each structural operation calls
/// [`SyncPoints::hit`] between its commit steps; a hook that returns an
/// error there aborts the operation exactly as an I/O failure at that
/// step would, so a crash test can stop the world between any two steps
/// and exercise recovery. `*:begin` fires before any file is written,
/// `*:build` after new files are written and synced but before the
/// in-memory tier swap, `*:commit` immediately before the atomic META
/// commit, and `*:cleanup` after the commit but before obsolete files are
/// deleted. The same names fire in inline and background modes.
pub const SYNC_POINTS: &[&str] = &[
    "seal:begin",
    "seal:commit",
    "flush:build",
    "flush:install",
    "flush:commit",
    "flush:cleanup",
    "merge:begin",
    "merge:build",
    "merge:commit",
    "merge:cleanup",
    "scanmerge:begin",
    "scanmerge:build",
    "scanmerge:commit",
    "scanmerge:cleanup",
    "gc:begin",
    "gc:build",
    "gc:commit",
    "gc:cleanup",
    "split:begin",
    "split:build",
    "split:commit",
    "split:cleanup",
];

/// A test hook invoked at every named sync point; returning an error
/// aborts the surrounding structural operation at that step.
pub type SyncPointHook = Arc<dyn Fn(&str) -> Result<()> + Send + Sync>;

/// Registry of named sync points (see [`SYNC_POINTS`]). One per database;
/// no hook armed (the default) makes every hit a no-op.
#[derive(Default)]
pub struct SyncPoints {
    hook: RwLock<Option<SyncPointHook>>,
}

impl SyncPoints {
    /// Install `hook`, replacing any previous one.
    pub fn arm(&self, hook: SyncPointHook) {
        *self.hook.write() = Some(hook);
    }

    /// Remove the hook; subsequent hits are no-ops.
    pub fn disarm(&self) {
        *self.hook.write() = None;
    }

    /// Invoke the hook (if armed) for the sync point `name`.
    pub(crate) fn hit(&self, name: &str) -> Result<()> {
        debug_assert!(
            SYNC_POINTS.contains(&name),
            "unregistered sync point {name}"
        );
        let guard = self.hook.read();
        match guard.as_ref() {
            Some(hook) => hook(name),
            None => Ok(()),
        }
    }
}

/// The kind of structural operation a background job performs.
///
/// Declaration order is priority order: flushes run before merges (they
/// release sealed memtables and their WALs), merges before GC, GC before
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobKind {
    /// Flush sealed memtables into UnsortedStore tables.
    Flush,
    /// Size-based merge of UnsortedStore tables (scan optimization).
    ScanMerge,
    /// Full UnsortedStore → SortedStore merge.
    Merge,
    /// Value-log garbage collection (and lazy value split).
    Gc,
    /// Median-key partition split.
    Split,
}

/// One queued unit of background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// What to do.
    pub kind: JobKind,
    /// Partition **id** (not index — indexes shift under splits).
    pub partition: u32,
}

/// Overall database health (see the module docs for the transitions).
/// Ordered from best to worst so `>=` comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HealthState {
    /// No maintenance job is retrying or quarantined.
    Healthy = 0,
    /// At least one job is retrying or quarantined; writes continue with
    /// tightened stall thresholds.
    Degraded = 1,
    /// Writes are rejected with [`unikv_common::Error::ReadOnly`] (flush
    /// stuck or disk full); reads and scans keep serving. Clears on its
    /// own once the blocking job succeeds.
    ReadOnly = 2,
    /// Unrecoverable commit failure; sticky until reopen.
    Poisoned = 3,
}

impl HealthState {
    fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            2 => HealthState::ReadOnly,
            _ => HealthState::Poisoned,
        }
    }
}

/// A maintenance job parked after exhausting its retry budget or failing
/// permanently (introspection view, see [`crate::UniKv::health_report`]).
#[derive(Debug, Clone)]
pub struct QuarantinedJob {
    /// The job's kind.
    pub kind: JobKind,
    /// Partition id the job targets.
    pub partition: u32,
    /// The error that sent it to quarantine.
    pub reason: String,
}

/// Snapshot of the health machinery (see [`crate::UniKv::health_report`]).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Current health state.
    pub state: HealthState,
    /// Jobs currently waiting out a backoff delay or re-running a retry.
    pub retrying: usize,
    /// Jobs parked in quarantine (probed periodically).
    pub quarantined: Vec<QuarantinedJob>,
    /// The fatal error message, when [`HealthState::Poisoned`].
    pub background_error: Option<String>,
}

/// Injectable time source for the retry scheduler: returns milliseconds
/// on an arbitrary monotonic scale. Tests install one so backoff and
/// quarantine probes elapse without real sleeping.
pub type MaintClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Retry/backoff policy knobs, derived from [`UniKvOptions`].
#[derive(Debug, Clone)]
pub(crate) struct RetryConfig {
    pub base_ms: u64,
    pub max_ms: u64,
    pub budget: u32,
    pub quarantine_probe_ms: u64,
    pub jitter_seed: u64,
}

impl RetryConfig {
    pub(crate) fn from_options(opts: &UniKvOptions) -> RetryConfig {
        RetryConfig {
            base_ms: opts.maint_retry_base_ms,
            max_ms: opts.maint_retry_max_ms,
            budget: opts.maint_retry_budget,
            quarantine_probe_ms: opts.maint_quarantine_probe_ms,
            jitter_seed: opts.maint_retry_jitter_seed,
        }
    }
}

/// Backoff delay before retry number `attempt` (1-based) of `job`:
/// exponential in the attempt (`base_ms << (attempt-1)`, capped at
/// `max_ms`) with deterministic "equal jitter" — the final delay is
/// uniform in `[exp/2, exp]`, where the jitter is a pure function of
/// `(seed, job, attempt)` so a pinned seed reproduces the exact schedule.
pub fn backoff_delay_ms(base_ms: u64, max_ms: u64, attempt: u32, seed: u64, job: &Job) -> u64 {
    let base = base_ms.max(1);
    let shift = attempt.saturating_sub(1).min(20);
    let exp = base.saturating_mul(1u64 << shift).min(max_ms.max(base));
    let salt = splitmix64_mix(
        seed ^ ((job.partition as u64) << 40) ^ ((job.kind as u64) << 32) ^ attempt as u64,
    );
    exp / 2 + salt % (exp / 2 + 1)
}

/// Backpressure level for a foreground write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallLevel {
    /// Proceed at full speed.
    None,
    /// Sleep once for `stall_sleep_micros`, then proceed.
    Slowdown,
    /// Block until a background job completes.
    Stop,
}

/// Pure stall policy: how hard to brake given a partition's debt.
///
/// `sealed_memtables` is the number of sealed memtables awaiting flush;
/// `unsorted_tables` is the UnsortedStore table count (merge backlog).
/// When `health` is Degraded or worse the slowdown thresholds are halved
/// (minimum 1): maintenance is already struggling, so ingest brakes
/// earlier. Stop thresholds are unchanged — a transient blip should slow
/// writes, not block them.
pub fn stall_level(
    sealed_memtables: usize,
    unsorted_tables: usize,
    health: HealthState,
    opts: &UniKvOptions,
) -> StallLevel {
    let (slow_sealed, slow_unsorted) = if health >= HealthState::Degraded {
        (
            (opts.slowdown_sealed_memtables / 2).max(1),
            (opts.slowdown_unsorted_tables / 2).max(1),
        )
    } else {
        (
            opts.slowdown_sealed_memtables,
            opts.slowdown_unsorted_tables,
        )
    };
    if sealed_memtables >= opts.stop_sealed_memtables
        || unsorted_tables >= opts.stop_unsorted_tables
    {
        StallLevel::Stop
    } else if sealed_memtables >= slow_sealed || unsorted_tables >= slow_unsorted {
        StallLevel::Slowdown
    } else {
        StallLevel::None
    }
}

/// A queued job plus its retry provenance.
struct PendingJob {
    job: Job,
    /// Failed attempts so far (0 = first run).
    attempts: u32,
    /// Not runnable before this scheduler time (backoff deadline).
    ready_at_ms: u64,
    /// Last failure was ENOSPC/EDQUOT — holds the ReadOnly watchdog.
    storage_full: bool,
}

/// Retry provenance of an executing job (mirrors [`PendingJob`]).
#[derive(Clone, Copy)]
struct InflightInfo {
    attempts: u32,
    storage_full: bool,
}

/// Why a job is quarantined and when to probe it next.
struct Quarantined {
    reason: String,
    probe_at_ms: u64,
}

struct QueueState {
    /// Pending jobs in arrival order; selection is priority-first and
    /// arrival-order within a priority, skipping jobs still in backoff.
    jobs: Vec<PendingJob>,
    /// Partition ids with a job currently executing (at most one each),
    /// with the running job's retry provenance.
    inflight: HashMap<u32, InflightInfo>,
    /// Number of active pause guards; workers do not start jobs while > 0.
    paused: usize,
    /// Jobs parked after budget exhaustion or a permanent (non-commit)
    /// failure; re-probed periodically, removed on success.
    quarantined: HashMap<Job, Quarantined>,
}

/// Worst health the queue state justifies on its own. The actual state
/// may be raised above this (ENOSPC watchdog, stalled writer escape) and
/// settles back to the computed target on the next job completion.
fn health_target(q: &QueueState) -> HealthState {
    let storage_full =
        q.jobs.iter().any(|p| p.storage_full) || q.inflight.values().any(|r| r.storage_full);
    if storage_full || q.quarantined.keys().any(|j| j.kind == JobKind::Flush) {
        HealthState::ReadOnly
    } else if !q.quarantined.is_empty()
        || q.jobs.iter().any(|p| p.attempts > 0)
        || q.inflight.values().any(|r| r.attempts > 0)
    {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

struct HealthMeta {
    state: HealthState,
    /// Scheduler time of the last Healthy→unhealthy transition, for
    /// `time_degraded_ms` accounting.
    unhealthy_since_ms: u64,
}

/// Shared scheduler state between the database and its worker threads.
pub(crate) struct MaintState {
    cfg: RetryConfig,
    stats: Arc<UniKvStats>,
    /// Lifecycle event bus: health transitions, retries, and quarantines
    /// publish here so causal chains include degradation episodes.
    events: Arc<EventBus>,
    queue: Mutex<QueueState>,
    /// Signaled when work may be available (enqueue, job completion,
    /// unpause, shutdown, clock change).
    work_cv: Condvar,
    /// Signaled when `inflight` drains (pause guards and idle waiters).
    idle_cv: Condvar,
    /// Paired with `progress_cv` only; held briefly.
    progress: Mutex<()>,
    /// Signaled whenever a structural change commits or health changes —
    /// stalled writers re-evaluate on it.
    progress_cv: Condvar,
    shutdown: AtomicBool,
    poison_flag: AtomicBool,
    poison_msg: Mutex<Option<String>>,
    /// Lock-free mirror of `health_meta.state` for the hot write path.
    health: AtomicU8,
    health_meta: Mutex<HealthMeta>,
    /// Origin of the default scheduler clock.
    epoch: Instant,
    /// Test override for the scheduler clock (see [`MaintClock`]).
    clock: RwLock<Option<MaintClock>>,
}

impl MaintState {
    pub(crate) fn new(
        cfg: RetryConfig,
        stats: Arc<UniKvStats>,
        events: Arc<EventBus>,
    ) -> MaintState {
        MaintState {
            cfg,
            stats,
            events,
            queue: Mutex::new(QueueState {
                jobs: Vec::new(),
                inflight: HashMap::new(),
                paused: 0,
                quarantined: HashMap::new(),
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            progress: Mutex::new(()),
            progress_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            poison_flag: AtomicBool::new(false),
            poison_msg: Mutex::new(None),
            health: AtomicU8::new(HealthState::Healthy as u8),
            health_meta: Mutex::new(HealthMeta {
                state: HealthState::Healthy,
                unhealthy_since_ms: 0,
            }),
            epoch: Instant::now(),
            clock: RwLock::new(None),
        }
    }

    /// Scheduler time in milliseconds (monotonic, arbitrary origin).
    fn now_ms(&self) -> u64 {
        if let Some(clock) = self.clock.read().as_ref() {
            return clock();
        }
        self.epoch.elapsed().as_millis() as u64
    }

    /// Install (or clear) a test clock; backoff deadlines and quarantine
    /// probes are evaluated against it.
    pub(crate) fn set_clock(&self, clock: Option<MaintClock>) {
        *self.clock.write() = clock;
        self.work_cv.notify_all();
    }

    /// Enqueue `job` unless an identical one is already pending,
    /// quarantined (its probe owns the retry), or the database is shut
    /// down / poisoned. Returns the new queue depth when enqueued.
    pub(crate) fn schedule(&self, job: Job) -> Option<usize> {
        if self.shutdown.load(Ordering::Acquire) || self.poison_flag.load(Ordering::Acquire) {
            return None;
        }
        let mut q = self.queue.lock();
        if q.jobs.iter().any(|p| p.job == job) || q.quarantined.contains_key(&job) {
            return None;
        }
        let now = self.now_ms();
        q.jobs.push(PendingJob {
            job,
            attempts: 0,
            ready_at_ms: now,
            storage_full: false,
        });
        let depth = q.jobs.len();
        drop(q);
        self.work_cv.notify_one();
        Some(depth)
    }

    /// Block until a runnable job is available — returned with its failed
    /// attempt count and the queue depth after removal — or shutdown is
    /// requested (`None`). Shutdown interrupts backoff waits immediately:
    /// jobs still in backoff are abandoned like any other queued job.
    pub(crate) fn next_job(&self) -> Option<(Job, u32, usize)> {
        let mut q = self.queue.lock();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if q.paused == 0 {
                let now = self.now_ms();
                // Resurrect quarantined jobs whose probe deadline passed:
                // re-queue one attempt at the budget edge, so a transient
                // failure sends it straight back to quarantine while a
                // success clears it.
                let due: Vec<Job> = q
                    .quarantined
                    .iter()
                    .filter(|(_, meta)| meta.probe_at_ms <= now)
                    .map(|(job, _)| *job)
                    .collect();
                for job in due {
                    if let Some(meta) = q.quarantined.get_mut(&job) {
                        meta.probe_at_ms = now + self.cfg.quarantine_probe_ms.max(1);
                    }
                    if q.inflight.contains_key(&job.partition)
                        || q.jobs.iter().any(|p| p.job == job)
                    {
                        continue;
                    }
                    q.jobs.push(PendingJob {
                        job,
                        attempts: self.cfg.budget,
                        ready_at_ms: now,
                        storage_full: false,
                    });
                }
                // Highest priority first; FIFO within a priority. A job
                // whose partition already has one running is skipped so a
                // long merge cannot be overtaken by a conflicting split;
                // jobs still in backoff are skipped until their deadline.
                let runnable = q
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        !q.inflight.contains_key(&p.job.partition) && p.ready_at_ms <= now
                    })
                    .min_by_key(|(i, p)| (p.job.kind, *i))
                    .map(|(i, _)| i);
                if let Some(i) = runnable {
                    let p = q.jobs.remove(i);
                    q.inflight.insert(
                        p.job.partition,
                        InflightInfo {
                            attempts: p.attempts,
                            storage_full: p.storage_full,
                        },
                    );
                    return Some((p.job, p.attempts, q.jobs.len()));
                }
            }
            if q.jobs.is_empty() && q.quarantined.is_empty() {
                self.work_cv.wait(&mut q);
            } else {
                // Something could become due (backoff deadline, quarantine
                // probe, manual clock advance): tick instead of parking
                // indefinitely. Shutdown still interrupts via notify_all.
                let _ = self.work_cv.wait_for(&mut q, Duration::from_millis(10));
            }
        }
    }

    /// Mark the inflight job for `partition` done, settle health from the
    /// new queue state, and wake waiters.
    pub(crate) fn finish_job(&self, partition: u32) {
        let mut q = self.queue.lock();
        q.inflight.remove(&partition);
        let target = health_target(&q);
        drop(q);
        self.settle_health(target);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }

    /// Apply the failure policy to a job that returned `err` after
    /// `attempts` prior failures. `commit_step` marks errors raised by the
    /// atomic META commit — the only step whose permanent failure poisons.
    pub(crate) fn handle_job_failure(
        &self,
        job: Job,
        attempts: u32,
        err: &Error,
        commit_step: bool,
    ) {
        if self.poison_flag.load(Ordering::Acquire) {
            return;
        }
        if commit_step && !err.is_transient() {
            UniKvStats::add(&self.stats.maint_jobs_failed, 1);
            self.poison(format!(
                "{:?} job on partition {} failed committing META: {err}",
                job.kind, job.partition
            ));
            return;
        }
        if err.is_transient() && attempts < self.cfg.budget {
            let next_attempt = attempts + 1;
            let delay = backoff_delay_ms(
                self.cfg.base_ms,
                self.cfg.max_ms,
                next_attempt,
                self.cfg.jitter_seed,
                &job,
            );
            UniKvStats::add(&self.stats.maint_job_retries, 1);
            let detail = if self.events.has_listeners() {
                format!("{:?} attempt {next_attempt}: {err}", job.kind)
            } else {
                String::new()
            };
            self.events.publish(
                EventKind::JobRetry,
                job.partition,
                None,
                vec![],
                vec![],
                delay,
                detail,
            );
            let mut q = self.queue.lock();
            if !q.jobs.iter().any(|p| p.job == job) {
                q.jobs.push(PendingJob {
                    job,
                    attempts: next_attempt,
                    ready_at_ms: self.now_ms() + delay,
                    storage_full: err.is_storage_full(),
                });
            }
            let target = health_target(&q);
            drop(q);
            self.settle_health(target);
            self.work_cv.notify_all();
        } else {
            let mut q = self.queue.lock();
            let newly = !q.quarantined.contains_key(&job);
            q.quarantined.insert(
                job,
                Quarantined {
                    reason: err.to_string(),
                    probe_at_ms: self.now_ms() + self.cfg.quarantine_probe_ms.max(1),
                },
            );
            let target = health_target(&q);
            drop(q);
            if newly {
                UniKvStats::add(&self.stats.maint_jobs_quarantined, 1);
                let detail = if self.events.has_listeners() {
                    format!("{:?}: {err}", job.kind)
                } else {
                    String::new()
                };
                self.events.publish(
                    EventKind::JobQuarantine,
                    job.partition,
                    None,
                    vec![],
                    vec![],
                    0,
                    detail,
                );
            }
            self.settle_health(target);
            self.idle_cv.notify_all();
        }
    }

    /// Record that `job` completed successfully: clears its quarantine
    /// entry, if any. Health settles in the subsequent [`Self::finish_job`].
    pub(crate) fn job_succeeded(&self, job: &Job) {
        let mut q = self.queue.lock();
        q.quarantined.remove(job);
    }

    /// Current health (lock-free; hot-path safe).
    pub(crate) fn health_state(&self) -> HealthState {
        HealthState::from_u8(self.health.load(Ordering::Acquire))
    }

    /// The error a write must return given current health, if any.
    pub(crate) fn write_gate_error(&self) -> Option<Error> {
        match self.health_state() {
            HealthState::Poisoned => self.poisoned_error(),
            HealthState::ReadOnly => Some(Error::read_only(self.read_only_reason())),
            _ => None,
        }
    }

    /// Human-readable cause for the current ReadOnly state.
    fn read_only_reason(&self) -> String {
        let q = self.queue.lock();
        if let Some((job, meta)) = q
            .quarantined
            .iter()
            .find(|(job, _)| job.kind == JobKind::Flush)
        {
            return format!(
                "flush quarantined on partition {}: {}",
                job.partition, meta.reason
            );
        }
        if q.jobs.iter().any(|p| p.storage_full) || q.inflight.values().any(|r| r.storage_full) {
            return "storage full: maintenance retrying until space frees".to_string();
        }
        "maintenance backlog: flush stuck in retry".to_string()
    }

    /// True if partition `partition` cannot drain sealed memtables right
    /// now: its flush is quarantined or waiting out a retry backoff. A
    /// hard-stopped writer uses this to fail fast with a typed ReadOnly
    /// error instead of blocking for the whole backoff schedule.
    pub(crate) fn flush_blocked(&self, partition: u32) -> bool {
        let q = self.queue.lock();
        q.quarantined
            .keys()
            .any(|j| j.partition == partition && j.kind == JobKind::Flush)
            || q.jobs.iter().any(|p| {
                p.job.partition == partition && p.job.kind == JobKind::Flush && p.attempts > 0
            })
            || q.inflight.get(&partition).is_some_and(|r| r.attempts > 0)
    }

    /// Snapshot for [`crate::UniKv::health_report`].
    pub(crate) fn health_report(&self) -> HealthReport {
        let q = self.queue.lock();
        let retrying = q.jobs.iter().filter(|p| p.attempts > 0).count()
            + q.inflight.values().filter(|r| r.attempts > 0).count();
        let quarantined = q
            .quarantined
            .iter()
            .map(|(job, meta)| QuarantinedJob {
                kind: job.kind,
                partition: job.partition,
                reason: meta.reason.clone(),
            })
            .collect();
        drop(q);
        HealthReport {
            state: self.health_state(),
            retrying,
            quarantined,
            background_error: self.poison_message(),
        }
    }

    /// Raise health to `target` if it is worse than the current state
    /// (never downgrades; Poisoned is sticky). Used by the write path's
    /// flush-blocked escape — the next job completion settles it back.
    pub(crate) fn raise_health(&self, target: HealthState) {
        let mut meta = self.health_meta.lock();
        if meta.state >= target {
            return;
        }
        self.transition_locked(&mut meta, target);
    }

    /// Move health to `target` unless poisoned or already there.
    fn settle_health(&self, target: HealthState) {
        let mut meta = self.health_meta.lock();
        if meta.state == HealthState::Poisoned || meta.state == target {
            return;
        }
        self.transition_locked(&mut meta, target);
    }

    fn transition_locked(&self, meta: &mut HealthMeta, target: HealthState) {
        let now = self.now_ms();
        let from = meta.state;
        if meta.state == HealthState::Healthy {
            meta.unhealthy_since_ms = now;
        } else if target == HealthState::Healthy {
            UniKvStats::add(
                &self.stats.time_degraded_ms,
                now.saturating_sub(meta.unhealthy_since_ms),
            );
        }
        meta.state = target;
        self.health.store(target as u8, Ordering::Release);
        UniKvStats::add(&self.stats.health_transitions, 1);
        let detail = if self.events.has_listeners() {
            format!("{from:?}->{target:?}")
        } else {
            String::new()
        };
        self.events
            .publish(EventKind::HealthChange, 0, None, vec![], vec![], 0, detail);
        self.notify_progress();
    }

    /// Wake stalled writers (and anyone else watching for progress).
    pub(crate) fn notify_progress(&self) {
        let _g = self.progress.lock();
        drop(_g);
        self.progress_cv.notify_all();
    }

    /// Block until progress is signaled or `timeout` elapses. The caller
    /// re-checks its condition either way (timeouts bound lost wakeups).
    pub(crate) fn wait_for_progress(&self, timeout: Duration) {
        let mut g = self.progress.lock();
        let _ = self.progress_cv.wait_for(&mut g, timeout);
    }

    /// Stop workers from *starting* jobs and wait for inflight ones to
    /// finish. Used by foreground structural operations (explicit flush /
    /// compaction / GC) so they never race a worker's unlocked phase.
    pub(crate) fn pause(&self) -> PauseGuard<'_> {
        let mut q = self.queue.lock();
        q.paused += 1;
        while !q.inflight.is_empty() {
            self.idle_cv.wait(&mut q);
        }
        PauseGuard { state: self }
    }

    /// Block until the queue and inflight set are both empty (or the
    /// database is shut down / poisoned, which drops queued jobs). Jobs
    /// waiting out a backoff count as pending; quarantined jobs do not —
    /// they are parked indefinitely between probes.
    pub(crate) fn wait_idle(&self) {
        let mut q = self.queue.lock();
        while !(q.jobs.is_empty() && q.inflight.is_empty()) {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.idle_cv.wait(&mut q);
        }
    }

    /// Record a fatal background error; queued jobs are dropped and all
    /// waiters are woken. The first error wins.
    pub(crate) fn poison(&self, msg: String) {
        {
            let mut m = self.poison_msg.lock();
            if m.is_none() {
                *m = Some(msg);
            }
        }
        self.poison_flag.store(true, Ordering::Release);
        {
            let mut meta = self.health_meta.lock();
            if meta.state != HealthState::Poisoned {
                self.transition_locked(&mut meta, HealthState::Poisoned);
            }
        }
        let mut q = self.queue.lock();
        q.jobs.clear();
        drop(q);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }

    /// The fatal background error, if any, as a returnable `Error`.
    pub(crate) fn poisoned_error(&self) -> Option<Error> {
        if !self.poison_flag.load(Ordering::Acquire) {
            return None;
        }
        let msg = self
            .poison_msg
            .lock()
            .clone()
            .unwrap_or_else(|| "unknown background error".to_string());
        Some(Error::internal(format!(
            "database poisoned by background maintenance failure: {msg}"
        )))
    }

    /// The raw poison message, if any (introspection hook).
    pub(crate) fn poison_message(&self) -> Option<String> {
        self.poison_flag
            .load(Ordering::Acquire)
            .then(|| self.poison_msg.lock().clone())
            .flatten()
    }

    /// Ask workers to exit after their current job; wakes everything,
    /// including workers ticking through a backoff wait.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }
}

/// RAII token from [`MaintState::pause`]; dropping it lets workers resume.
pub(crate) struct PauseGuard<'a> {
    state: &'a MaintState,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        let mut q = self.state.queue.lock();
        q.paused -= 1;
        drop(q);
        self.state.work_cv.notify_all();
    }
}

/// Body of one maintenance worker thread.
pub(crate) fn worker_loop(inner: Arc<DbInner>) {
    while let Some((job, attempts, depth)) = inner.maint.next_job() {
        inner
            .stats
            .maint_queue_depth
            .store(depth as u64, Ordering::Relaxed);
        inner.metrics.maint_queue_depth.set(depth as u64);
        // Reset the commit-step marker so a stale flag from a previous
        // job on this thread cannot misclassify this one's failure.
        let _ = crate::db::take_commit_failure();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.run_job(&job)));
        match result {
            Ok(Ok(())) => {
                UniKvStats::add(&inner.stats.maint_jobs_completed, 1);
                inner.maint.job_succeeded(&job);
            }
            Ok(Err(e)) => {
                let commit_step = crate::db::take_commit_failure();
                inner
                    .maint
                    .handle_job_failure(job, attempts, &e, commit_step);
            }
            Err(_) => {
                UniKvStats::add(&inner.stats.maint_jobs_failed, 1);
                inner.maint.poison(format!(
                    "{:?} job on partition {} panicked",
                    job.kind, job.partition
                ));
            }
        }
        inner.maint.finish_job(job.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    fn opts() -> UniKvOptions {
        UniKvOptions {
            slowdown_sealed_memtables: 2,
            stop_sealed_memtables: 4,
            slowdown_unsorted_tables: 8,
            stop_unsorted_tables: 12,
            ..Default::default()
        }
    }

    fn cfg() -> RetryConfig {
        RetryConfig {
            base_ms: 2,
            max_ms: 40,
            budget: 3,
            quarantine_probe_ms: 50,
            jitter_seed: 7,
        }
    }

    fn mstate() -> MaintState {
        MaintState::new(
            cfg(),
            Arc::new(UniKvStats::default()),
            EventBus::new(vec![], 1),
        )
    }

    /// A state driven by a manually advanced clock (no real sleeping).
    fn mstate_with_clock() -> (MaintState, Arc<AtomicU64>) {
        let m = mstate();
        let clock = Arc::new(AtomicU64::new(0));
        let c = clock.clone();
        m.set_clock(Some(Arc::new(move || c.load(Ordering::SeqCst))));
        (m, clock)
    }

    fn job(kind: JobKind, partition: u32) -> Job {
        Job { kind, partition }
    }

    fn transient() -> Error {
        Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected",
        ))
    }

    #[test]
    fn stall_level_thresholds_engage_and_release() {
        let o = opts();
        let h = HealthState::Healthy;
        assert_eq!(stall_level(0, 0, h, &o), StallLevel::None);
        assert_eq!(stall_level(1, 7, h, &o), StallLevel::None);
        // Either dimension can trip the slowdown...
        assert_eq!(stall_level(2, 0, h, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(0, 8, h, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(3, 11, h, &o), StallLevel::Slowdown);
        // ...and the hard stop.
        assert_eq!(stall_level(4, 0, h, &o), StallLevel::Stop);
        assert_eq!(stall_level(0, 12, h, &o), StallLevel::Stop);
        assert_eq!(stall_level(9, 99, h, &o), StallLevel::Stop);
        // Debt paid down → level releases.
        assert_eq!(stall_level(3, 0, h, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(1, 0, h, &o), StallLevel::None);
    }

    #[test]
    fn stall_level_tightens_when_degraded() {
        let o = opts();
        // Healthy: sealed=1, unsorted=4 is full speed.
        assert_eq!(
            stall_level(1, 4, HealthState::Healthy, &o),
            StallLevel::None
        );
        // Degraded halves the slowdown thresholds (2→1, 8→4).
        assert_eq!(
            stall_level(1, 0, HealthState::Degraded, &o),
            StallLevel::Slowdown
        );
        assert_eq!(
            stall_level(0, 4, HealthState::Degraded, &o),
            StallLevel::Slowdown
        );
        // Stop thresholds are unchanged.
        assert_eq!(
            stall_level(3, 0, HealthState::Degraded, &o),
            StallLevel::Slowdown
        );
        assert_eq!(
            stall_level(4, 0, HealthState::Degraded, &o),
            StallLevel::Stop
        );
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let j = job(JobKind::Merge, 3);
        for attempt in 1..=8u32 {
            let exp = 2u64.saturating_mul(1 << (attempt - 1)).min(40);
            let d = backoff_delay_ms(2, 40, attempt, 1234, &j);
            // Equal jitter: uniform in [exp/2, exp].
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d} vs exp {exp}"
            );
            // Deterministic under a pinned seed.
            assert_eq!(d, backoff_delay_ms(2, 40, attempt, 1234, &j));
        }
        // The jitter actually varies across jobs and seeds.
        let delays: HashSet<u64> = (0..16)
            .map(|p| backoff_delay_ms(1000, 64_000, 5, 42, &job(JobKind::Gc, p)))
            .collect();
        assert!(delays.len() > 1, "jitter collapsed: {delays:?}");
        assert_ne!(
            backoff_delay_ms(1000, 64_000, 5, 1, &j),
            backoff_delay_ms(1000, 64_000, 5, 2, &j),
        );
    }

    #[test]
    fn queue_prioritizes_and_dedups() {
        let m = mstate();
        assert!(m.schedule(job(JobKind::Gc, 1)).is_some());
        assert!(m.schedule(job(JobKind::Flush, 2)).is_some());
        // Duplicate (kind, partition) pairs collapse.
        assert!(m.schedule(job(JobKind::Gc, 1)).is_none());
        assert!(m.schedule(job(JobKind::Merge, 3)).is_some());

        let (j1, _, _) = m.next_job().unwrap();
        assert_eq!(j1.kind, JobKind::Flush);
        let (j2, _, _) = m.next_job().unwrap();
        assert_eq!(j2.kind, JobKind::Merge);
        let (j3, _, depth) = m.next_job().unwrap();
        assert_eq!(j3.kind, JobKind::Gc);
        assert_eq!(depth, 0);
        m.finish_job(j1.partition);
        m.finish_job(j2.partition);
        m.finish_job(j3.partition);
        m.wait_idle();
    }

    #[test]
    fn one_inflight_job_per_partition() {
        let m = mstate();
        m.schedule(job(JobKind::Flush, 7));
        m.schedule(job(JobKind::Merge, 7));
        m.schedule(job(JobKind::Gc, 8));
        let (a, _, _) = m.next_job().unwrap();
        assert_eq!(a.partition, 7);
        // Partition 7 is busy; the next runnable job is partition 8's.
        let (b, _, _) = m.next_job().unwrap();
        assert_eq!(b.partition, 8);
        m.finish_job(a.partition);
        let (c, _, _) = m.next_job().unwrap();
        assert_eq!((c.kind, c.partition), (JobKind::Merge, 7));
        m.finish_job(b.partition);
        m.finish_job(c.partition);
    }

    #[test]
    fn transient_failure_requeues_with_backoff_and_heals() {
        let (m, clock) = mstate_with_clock();
        m.schedule(job(JobKind::Gc, 4));
        let (j, attempts, _) = m.next_job().unwrap();
        assert_eq!(attempts, 0);
        m.handle_job_failure(j, attempts, &transient(), false);
        m.finish_job(j.partition);
        assert_eq!(m.health_state(), HealthState::Degraded);
        assert_eq!(m.stats.maint_job_retries.load(Ordering::Relaxed), 1);
        // The retry is not runnable until its backoff deadline passes.
        assert!(m.health_report().retrying == 1);
        clock.fetch_add(1000, Ordering::SeqCst);
        let (j2, attempts2, _) = m.next_job().unwrap();
        assert_eq!((j2, attempts2), (j, 1));
        // Success settles health back to Healthy and accrues degraded time.
        m.job_succeeded(&j2);
        m.finish_job(j2.partition);
        assert_eq!(m.health_state(), HealthState::Healthy);
        assert!(m.stats.health_transitions.load(Ordering::Relaxed) >= 2);
        assert!(m.stats.time_degraded_ms.load(Ordering::Relaxed) >= 1000);
        m.wait_idle();
    }

    #[test]
    fn budget_exhaustion_quarantines_and_probe_resurrects() {
        let (m, clock) = mstate_with_clock();
        let j = job(JobKind::Gc, 2);
        m.schedule(j);
        // Burn the whole retry budget on transient failures.
        for expect in 0..=3u32 {
            clock.fetch_add(1000, Ordering::SeqCst);
            let (got, attempts, _) = m.next_job().unwrap();
            assert_eq!((got, attempts), (j, expect));
            m.handle_job_failure(got, attempts, &transient(), false);
            m.finish_job(got.partition);
        }
        assert_eq!(m.stats.maint_job_retries.load(Ordering::Relaxed), 3);
        assert_eq!(m.stats.maint_jobs_quarantined.load(Ordering::Relaxed), 1);
        assert_eq!(m.health_state(), HealthState::Degraded);
        let report = m.health_report();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].partition, 2);
        // Re-scheduling a quarantined job is refused: the probe owns it.
        assert!(m.schedule(j).is_none());
        m.wait_idle(); // quarantined jobs do not block idle

        // After the probe interval the job is offered again; success
        // clears the quarantine and health recovers.
        clock.fetch_add(51, Ordering::SeqCst);
        let (got, attempts, _) = m.next_job().unwrap();
        assert_eq!((got, attempts), (j, 3));
        m.job_succeeded(&got);
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::Healthy);
        assert!(m.health_report().quarantined.is_empty());
    }

    #[test]
    fn permanent_noncommit_failure_quarantines_not_poisons() {
        let m = mstate();
        let j = job(JobKind::Merge, 1);
        m.schedule(j);
        let (got, attempts, _) = m.next_job().unwrap();
        m.handle_job_failure(got, attempts, &Error::corruption("bad block"), false);
        m.finish_job(got.partition);
        assert_eq!(m.stats.maint_job_retries.load(Ordering::Relaxed), 0);
        assert_eq!(m.stats.maint_jobs_quarantined.load(Ordering::Relaxed), 1);
        assert_eq!(m.health_state(), HealthState::Degraded);
        assert!(m.poisoned_error().is_none());
        let report = m.health_report();
        assert!(report.quarantined[0].reason.contains("bad block"));
    }

    #[test]
    fn quarantined_flush_forces_read_only() {
        let m = mstate();
        let j = job(JobKind::Flush, 5);
        m.schedule(j);
        let (got, attempts, _) = m.next_job().unwrap();
        m.handle_job_failure(got, attempts, &Error::corruption("sst build"), false);
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::ReadOnly);
        let gate = m.write_gate_error().unwrap();
        assert!(gate.is_read_only(), "unexpected gate error: {gate}");
        assert!(gate.to_string().contains("partition 5"));
        assert!(m.flush_blocked(5));
        assert!(!m.flush_blocked(6));
    }

    #[test]
    fn storage_full_retry_holds_read_only_until_success() {
        let (m, clock) = mstate_with_clock();
        let j = job(JobKind::Merge, 0);
        m.schedule(j);
        let (got, attempts, _) = m.next_job().unwrap();
        let enospc = Error::Io(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "disk full",
        ));
        m.handle_job_failure(got, attempts, &enospc, false);
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::ReadOnly);
        assert!(m
            .write_gate_error()
            .unwrap()
            .to_string()
            .contains("storage full"));
        // Space frees, the retry succeeds, writes reopen.
        clock.fetch_add(1000, Ordering::SeqCst);
        let (got, _, _) = m.next_job().unwrap();
        m.job_succeeded(&got);
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::Healthy);
        assert!(m.write_gate_error().is_none());
    }

    #[test]
    fn permanent_commit_failure_poisons() {
        let m = mstate();
        let j = job(JobKind::Flush, 1);
        m.schedule(j);
        let (got, attempts, _) = m.next_job().unwrap();
        m.handle_job_failure(got, attempts, &Error::internal("meta write lost"), true);
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::Poisoned);
        assert_eq!(m.stats.maint_jobs_failed.load(Ordering::Relaxed), 1);
        let gate = m.write_gate_error().unwrap();
        assert!(gate.to_string().contains("poisoned"));
        // Poisoned is sticky: later successes cannot downgrade it.
        m.finish_job(got.partition);
        assert_eq!(m.health_state(), HealthState::Poisoned);
    }

    #[test]
    fn transient_commit_failure_retries_instead_of_poisoning() {
        let m = mstate();
        let j = job(JobKind::Flush, 1);
        m.schedule(j);
        let (got, attempts, _) = m.next_job().unwrap();
        m.handle_job_failure(got, attempts, &transient(), true);
        m.finish_job(got.partition);
        assert!(m.poisoned_error().is_none());
        assert_eq!(m.stats.maint_job_retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn poison_drops_queue_and_reports() {
        let m = mstate();
        m.schedule(job(JobKind::Flush, 1));
        m.poison("disk exploded".to_string());
        assert!(m.poisoned_error().is_some());
        assert!(m.poison_message().unwrap().contains("disk exploded"));
        assert_eq!(m.health_state(), HealthState::Poisoned);
        // New work is refused and waiters do not hang.
        assert!(m.schedule(job(JobKind::Flush, 1)).is_none());
        m.wait_idle();
        // First error wins.
        m.poison("second".to_string());
        assert!(m.poison_message().unwrap().contains("disk exploded"));
    }

    #[test]
    fn sync_points_invoke_hook_and_disarm() {
        let sp = SyncPoints::default();
        assert!(sp.hit("flush:commit").is_ok(), "unarmed hits are no-ops");
        let fired = Arc::new(Mutex::new(Vec::new()));
        let fired2 = fired.clone();
        sp.arm(Arc::new(move |name: &str| {
            fired2.lock().push(name.to_string());
            if name == "gc:commit" {
                Err(Error::internal("crash here"))
            } else {
                Ok(())
            }
        }));
        assert!(sp.hit("flush:commit").is_ok());
        assert!(sp.hit("gc:commit").is_err());
        assert_eq!(*fired.lock(), vec!["flush:commit", "gc:commit"]);
        sp.disarm();
        assert!(sp.hit("gc:commit").is_ok());
    }

    #[test]
    fn sync_point_names_are_unique() {
        let set: HashSet<&str> = SYNC_POINTS.iter().copied().collect();
        assert_eq!(set.len(), SYNC_POINTS.len());
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let m = Arc::new(mstate());
        let m2 = m.clone();
        let t = std::thread::spawn(move || m2.next_job());
        std::thread::sleep(Duration::from_millis(20));
        m.begin_shutdown();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn shutdown_interrupts_backoff_wait() {
        // A retry parked an hour out must not delay shutdown.
        let m = Arc::new(MaintState::new(
            RetryConfig {
                base_ms: 3_600_000,
                max_ms: 7_200_000,
                budget: 3,
                quarantine_probe_ms: 3_600_000,
                jitter_seed: 9,
            },
            Arc::new(UniKvStats::default()),
            EventBus::new(vec![], 1),
        ));
        m.schedule(job(JobKind::Gc, 0));
        let (j, attempts, _) = m.next_job().unwrap();
        m.handle_job_failure(j, attempts, &transient(), false);
        m.finish_job(j.partition);
        let m2 = m.clone();
        let t = std::thread::spawn(move || m2.next_job());
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        m.begin_shutdown();
        assert!(t.join().unwrap().is_none());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown waited out the backoff"
        );
    }
}
