//! Background maintenance: a prioritized job scheduler, worker threads,
//! and the write-stall (backpressure) controller.
//!
//! With `background_jobs = 0` (the default) none of this runs: every
//! structural operation executes inline under the write that triggered it
//! and the on-disk layout is byte-identical to previous versions. With
//! `background_jobs >= 1`, a write that fills the memtable *seals* it
//! (records its WAL in `PartitionMeta::sealed_wals` and continues on a
//! fresh memtable + WAL) and enqueues a flush; merges, scan-merges, GC,
//! and splits are likewise enqueued when their thresholds trip. Worker
//! threads drain the queue highest-priority-first, at most one job per
//! partition at a time.
//!
//! ## Backpressure
//!
//! Foreground writes consult [`stall_level`] before appending: past the
//! `slowdown_*` thresholds they sleep once for
//! [`crate::UniKvOptions::stall_sleep_micros`]; past the `stop_*`
//! thresholds they block until a background job completes. Stall time and
//! counts are reported in [`crate::UniKvStats::snapshot`].
//!
//! ## Failure model
//!
//! A job that fails (or panics) *poisons* the database: queued jobs are
//! dropped and subsequent writes and structural operations return the
//! original error. Readers are not interrupted. This mirrors the "background
//! error" behavior of production LSM engines — no partial retry loops that
//! could re-apply a half-committed structural change.

use crate::db::DbInner;
use crate::options::UniKvOptions;
use crate::UniKvStats;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unikv_common::{Error, Result};

/// Every named sync point in the flush/merge/GC/split commit sequences,
/// in rough execution order. Each structural operation calls
/// [`SyncPoints::hit`] between its commit steps; a hook that returns an
/// error there aborts the operation exactly as an I/O failure at that
/// step would, so a crash test can stop the world between any two steps
/// and exercise recovery. `*:begin` fires before any file is written,
/// `*:build` after new files are written and synced but before the
/// in-memory tier swap, `*:commit` immediately before the atomic META
/// commit, and `*:cleanup` after the commit but before obsolete files are
/// deleted. The same names fire in inline and background modes.
pub const SYNC_POINTS: &[&str] = &[
    "seal:begin",
    "seal:commit",
    "flush:build",
    "flush:install",
    "flush:commit",
    "flush:cleanup",
    "merge:begin",
    "merge:build",
    "merge:commit",
    "merge:cleanup",
    "scanmerge:begin",
    "scanmerge:build",
    "scanmerge:commit",
    "scanmerge:cleanup",
    "gc:begin",
    "gc:build",
    "gc:commit",
    "gc:cleanup",
    "split:begin",
    "split:build",
    "split:commit",
    "split:cleanup",
];

/// A test hook invoked at every named sync point; returning an error
/// aborts the surrounding structural operation at that step.
pub type SyncPointHook = Arc<dyn Fn(&str) -> Result<()> + Send + Sync>;

/// Registry of named sync points (see [`SYNC_POINTS`]). One per database;
/// no hook armed (the default) makes every hit a no-op.
#[derive(Default)]
pub struct SyncPoints {
    hook: RwLock<Option<SyncPointHook>>,
}

impl SyncPoints {
    /// Install `hook`, replacing any previous one.
    pub fn arm(&self, hook: SyncPointHook) {
        *self.hook.write() = Some(hook);
    }

    /// Remove the hook; subsequent hits are no-ops.
    pub fn disarm(&self) {
        *self.hook.write() = None;
    }

    /// Invoke the hook (if armed) for the sync point `name`.
    pub(crate) fn hit(&self, name: &str) -> Result<()> {
        debug_assert!(
            SYNC_POINTS.contains(&name),
            "unregistered sync point {name}"
        );
        let guard = self.hook.read();
        match guard.as_ref() {
            Some(hook) => hook(name),
            None => Ok(()),
        }
    }
}

/// The kind of structural operation a background job performs.
///
/// Declaration order is priority order: flushes run before merges (they
/// release sealed memtables and their WALs), merges before GC, GC before
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobKind {
    /// Flush sealed memtables into UnsortedStore tables.
    Flush,
    /// Size-based merge of UnsortedStore tables (scan optimization).
    ScanMerge,
    /// Full UnsortedStore → SortedStore merge.
    Merge,
    /// Value-log garbage collection (and lazy value split).
    Gc,
    /// Median-key partition split.
    Split,
}

/// One queued unit of background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// What to do.
    pub kind: JobKind,
    /// Partition **id** (not index — indexes shift under splits).
    pub partition: u32,
}

/// Backpressure level for a foreground write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallLevel {
    /// Proceed at full speed.
    None,
    /// Sleep once for `stall_sleep_micros`, then proceed.
    Slowdown,
    /// Block until a background job completes.
    Stop,
}

/// Pure stall policy: how hard to brake given a partition's debt.
///
/// `sealed_memtables` is the number of sealed memtables awaiting flush;
/// `unsorted_tables` is the UnsortedStore table count (merge backlog).
pub fn stall_level(
    sealed_memtables: usize,
    unsorted_tables: usize,
    opts: &UniKvOptions,
) -> StallLevel {
    if sealed_memtables >= opts.stop_sealed_memtables
        || unsorted_tables >= opts.stop_unsorted_tables
    {
        StallLevel::Stop
    } else if sealed_memtables >= opts.slowdown_sealed_memtables
        || unsorted_tables >= opts.slowdown_unsorted_tables
    {
        StallLevel::Slowdown
    } else {
        StallLevel::None
    }
}

struct QueueState {
    /// Pending jobs in arrival order; selection is priority-first and
    /// arrival-order within a priority.
    jobs: Vec<Job>,
    /// Partition ids with a job currently executing (at most one each).
    inflight: HashSet<u32>,
    /// Number of active pause guards; workers do not start jobs while > 0.
    paused: usize,
}

/// Shared scheduler state between the database and its worker threads.
pub(crate) struct MaintState {
    queue: Mutex<QueueState>,
    /// Signaled when work may be available (enqueue, job completion,
    /// unpause, shutdown).
    work_cv: Condvar,
    /// Signaled when `inflight` drains (pause guards and idle waiters).
    idle_cv: Condvar,
    /// Paired with `progress_cv` only; held briefly.
    progress: Mutex<()>,
    /// Signaled whenever a structural change commits — stalled writers
    /// re-evaluate on it.
    progress_cv: Condvar,
    shutdown: AtomicBool,
    poison_flag: AtomicBool,
    poison_msg: Mutex<Option<String>>,
}

impl MaintState {
    pub(crate) fn new() -> MaintState {
        MaintState {
            queue: Mutex::new(QueueState {
                jobs: Vec::new(),
                inflight: HashSet::new(),
                paused: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            progress: Mutex::new(()),
            progress_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            poison_flag: AtomicBool::new(false),
            poison_msg: Mutex::new(None),
        }
    }

    /// Enqueue `job` unless an identical one is already pending. Returns
    /// the new queue depth when enqueued.
    pub(crate) fn schedule(&self, job: Job) -> Option<usize> {
        if self.shutdown.load(Ordering::Acquire) || self.poison_flag.load(Ordering::Acquire) {
            return None;
        }
        let mut q = self.queue.lock();
        if q.jobs.contains(&job) {
            return None;
        }
        q.jobs.push(job);
        let depth = q.jobs.len();
        drop(q);
        self.work_cv.notify_one();
        Some(depth)
    }

    /// Block until a runnable job is available (returned with the queue
    /// depth after removal) or shutdown is requested (`None`).
    pub(crate) fn next_job(&self) -> Option<(Job, usize)> {
        let mut q = self.queue.lock();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if q.paused == 0 {
                // Highest priority first; FIFO within a priority. A job
                // whose partition already has one running is skipped so a
                // long merge cannot be overtaken by a conflicting split.
                let runnable = q
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| !q.inflight.contains(&j.partition))
                    .min_by_key(|(i, j)| (j.kind, *i))
                    .map(|(i, _)| i);
                if let Some(i) = runnable {
                    let job = q.jobs.remove(i);
                    q.inflight.insert(job.partition);
                    return Some((job, q.jobs.len()));
                }
            }
            self.work_cv.wait(&mut q);
        }
    }

    /// Mark the inflight job for `partition` done and wake waiters.
    pub(crate) fn finish_job(&self, partition: u32) {
        let mut q = self.queue.lock();
        q.inflight.remove(&partition);
        drop(q);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }

    /// Wake stalled writers (and anyone else watching for progress).
    pub(crate) fn notify_progress(&self) {
        let _g = self.progress.lock();
        drop(_g);
        self.progress_cv.notify_all();
    }

    /// Block until progress is signaled or `timeout` elapses. The caller
    /// re-checks its condition either way (timeouts bound lost wakeups).
    pub(crate) fn wait_for_progress(&self, timeout: Duration) {
        let mut g = self.progress.lock();
        let _ = self.progress_cv.wait_for(&mut g, timeout);
    }

    /// Stop workers from *starting* jobs and wait for inflight ones to
    /// finish. Used by foreground structural operations (explicit flush /
    /// compaction / GC) so they never race a worker's unlocked phase.
    pub(crate) fn pause(&self) -> PauseGuard<'_> {
        let mut q = self.queue.lock();
        q.paused += 1;
        while !q.inflight.is_empty() {
            self.idle_cv.wait(&mut q);
        }
        PauseGuard { state: self }
    }

    /// Block until the queue and inflight set are both empty (or the
    /// database is shut down / poisoned, which drops queued jobs).
    pub(crate) fn wait_idle(&self) {
        let mut q = self.queue.lock();
        while !(q.jobs.is_empty() && q.inflight.is_empty()) {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.idle_cv.wait(&mut q);
        }
    }

    /// Record a fatal background error; queued jobs are dropped and all
    /// waiters are woken. The first error wins.
    pub(crate) fn poison(&self, msg: String) {
        {
            let mut m = self.poison_msg.lock();
            if m.is_none() {
                *m = Some(msg);
            }
        }
        self.poison_flag.store(true, Ordering::Release);
        let mut q = self.queue.lock();
        q.jobs.clear();
        drop(q);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }

    /// The fatal background error, if any, as a returnable `Error`.
    pub(crate) fn poisoned_error(&self) -> Option<Error> {
        if !self.poison_flag.load(Ordering::Acquire) {
            return None;
        }
        let msg = self
            .poison_msg
            .lock()
            .clone()
            .unwrap_or_else(|| "unknown background error".to_string());
        Some(Error::internal(format!(
            "database poisoned by background maintenance failure: {msg}"
        )))
    }

    /// The raw poison message, if any (introspection hook).
    pub(crate) fn poison_message(&self) -> Option<String> {
        self.poison_flag
            .load(Ordering::Acquire)
            .then(|| self.poison_msg.lock().clone())
            .flatten()
    }

    /// Ask workers to exit after their current job; wakes everything.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
        self.notify_progress();
    }
}

/// RAII token from [`MaintState::pause`]; dropping it lets workers resume.
pub(crate) struct PauseGuard<'a> {
    state: &'a MaintState,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        let mut q = self.state.queue.lock();
        q.paused -= 1;
        drop(q);
        self.state.work_cv.notify_all();
    }
}

/// Body of one maintenance worker thread.
pub(crate) fn worker_loop(inner: Arc<DbInner>) {
    while let Some((job, depth)) = inner.maint.next_job() {
        inner
            .stats
            .maint_queue_depth
            .store(depth as u64, Ordering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.run_job(&job)));
        match result {
            Ok(Ok(())) => {
                UniKvStats::add(&inner.stats.maint_jobs_completed, 1);
            }
            Ok(Err(e)) => {
                UniKvStats::add(&inner.stats.maint_jobs_failed, 1);
                inner.maint.poison(format!(
                    "{:?} job on partition {} failed: {e}",
                    job.kind, job.partition
                ));
            }
            Err(_) => {
                UniKvStats::add(&inner.stats.maint_jobs_failed, 1);
                inner.maint.poison(format!(
                    "{:?} job on partition {} panicked",
                    job.kind, job.partition
                ));
            }
        }
        inner.maint.finish_job(job.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> UniKvOptions {
        UniKvOptions {
            slowdown_sealed_memtables: 2,
            stop_sealed_memtables: 4,
            slowdown_unsorted_tables: 8,
            stop_unsorted_tables: 12,
            ..Default::default()
        }
    }

    #[test]
    fn stall_level_thresholds_engage_and_release() {
        let o = opts();
        assert_eq!(stall_level(0, 0, &o), StallLevel::None);
        assert_eq!(stall_level(1, 7, &o), StallLevel::None);
        // Either dimension can trip the slowdown...
        assert_eq!(stall_level(2, 0, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(0, 8, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(3, 11, &o), StallLevel::Slowdown);
        // ...and the hard stop.
        assert_eq!(stall_level(4, 0, &o), StallLevel::Stop);
        assert_eq!(stall_level(0, 12, &o), StallLevel::Stop);
        assert_eq!(stall_level(9, 99, &o), StallLevel::Stop);
        // Debt paid down → level releases.
        assert_eq!(stall_level(3, 0, &o), StallLevel::Slowdown);
        assert_eq!(stall_level(1, 0, &o), StallLevel::None);
    }

    #[test]
    fn queue_prioritizes_and_dedups() {
        let m = MaintState::new();
        assert!(m
            .schedule(Job {
                kind: JobKind::Gc,
                partition: 1
            })
            .is_some());
        assert!(m
            .schedule(Job {
                kind: JobKind::Flush,
                partition: 2
            })
            .is_some());
        // Duplicate (kind, partition) pairs collapse.
        assert!(m
            .schedule(Job {
                kind: JobKind::Gc,
                partition: 1
            })
            .is_none());
        assert!(m
            .schedule(Job {
                kind: JobKind::Merge,
                partition: 3
            })
            .is_some());

        let (j1, _) = m.next_job().unwrap();
        assert_eq!(j1.kind, JobKind::Flush);
        let (j2, _) = m.next_job().unwrap();
        assert_eq!(j2.kind, JobKind::Merge);
        let (j3, depth) = m.next_job().unwrap();
        assert_eq!(j3.kind, JobKind::Gc);
        assert_eq!(depth, 0);
        m.finish_job(j1.partition);
        m.finish_job(j2.partition);
        m.finish_job(j3.partition);
        m.wait_idle();
    }

    #[test]
    fn one_inflight_job_per_partition() {
        let m = MaintState::new();
        m.schedule(Job {
            kind: JobKind::Flush,
            partition: 7,
        });
        m.schedule(Job {
            kind: JobKind::Merge,
            partition: 7,
        });
        m.schedule(Job {
            kind: JobKind::Gc,
            partition: 8,
        });
        let (a, _) = m.next_job().unwrap();
        assert_eq!(a.partition, 7);
        // Partition 7 is busy; the next runnable job is partition 8's.
        let (b, _) = m.next_job().unwrap();
        assert_eq!(b.partition, 8);
        m.finish_job(a.partition);
        let (c, _) = m.next_job().unwrap();
        assert_eq!((c.kind, c.partition), (JobKind::Merge, 7));
        m.finish_job(b.partition);
        m.finish_job(c.partition);
    }

    #[test]
    fn poison_drops_queue_and_reports() {
        let m = MaintState::new();
        m.schedule(Job {
            kind: JobKind::Flush,
            partition: 1,
        });
        m.poison("disk exploded".to_string());
        assert!(m.poisoned_error().is_some());
        assert!(m.poison_message().unwrap().contains("disk exploded"));
        // New work is refused and waiters do not hang.
        assert!(m
            .schedule(Job {
                kind: JobKind::Flush,
                partition: 1
            })
            .is_none());
        m.wait_idle();
        // First error wins.
        m.poison("second".to_string());
        assert!(m.poison_message().unwrap().contains("disk exploded"));
    }

    #[test]
    fn sync_points_invoke_hook_and_disarm() {
        let sp = SyncPoints::default();
        assert!(sp.hit("flush:commit").is_ok(), "unarmed hits are no-ops");
        let fired = Arc::new(Mutex::new(Vec::new()));
        let fired2 = fired.clone();
        sp.arm(Arc::new(move |name: &str| {
            fired2.lock().push(name.to_string());
            if name == "gc:commit" {
                Err(Error::internal("crash here"))
            } else {
                Ok(())
            }
        }));
        assert!(sp.hit("flush:commit").is_ok());
        assert!(sp.hit("gc:commit").is_err());
        assert_eq!(*fired.lock(), vec!["flush:commit", "gc:commit"]);
        sp.disarm();
        assert!(sp.hit("gc:commit").is_ok());
    }

    #[test]
    fn sync_point_names_are_unique() {
        let set: HashSet<&str> = SYNC_POINTS.iter().copied().collect();
        assert_eq!(set.len(), SYNC_POINTS.len());
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let m = Arc::new(MaintState::new());
        let m2 = m.clone();
        let t = std::thread::spawn(move || m2.next_job());
        std::thread::sleep(Duration::from_millis(20));
        m.begin_shutdown();
        assert!(t.join().unwrap().is_none());
    }
}
