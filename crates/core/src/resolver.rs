//! Value-pointer resolution across partition directories.
//!
//! After a split, a child partition's SortedStore still holds pointers into
//! the parent's value logs (lazy split); the pointer's `partition` field
//! names the directory. The resolver maps any pointer to bytes, caching
//! open file handles.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::{Result, ValuePointer};
use unikv_env::{Env, RandomAccessFile};
use unikv_vlog::{read_value_record, vlog_file_name};

/// Directory of partition `id` under the database root.
pub fn partition_dir(root: &Path, id: u32) -> PathBuf {
    root.join(format!("p{id}"))
}

/// Reads values addressed by [`ValuePointer`]s from any partition's logs.
pub struct ValueResolver {
    env: Arc<dyn Env>,
    root: PathBuf,
    readers: RwLock<HashMap<(u32, u64), Arc<dyn RandomAccessFile>>>,
}

impl ValueResolver {
    /// Create a resolver rooted at the database directory.
    pub fn new(env: Arc<dyn Env>, root: PathBuf) -> Self {
        ValueResolver {
            env,
            root,
            readers: RwLock::new(HashMap::new()),
        }
    }

    fn reader(&self, partition: u32, log: u64) -> Result<Arc<dyn RandomAccessFile>> {
        let key = (partition, log);
        // Fast path: shared lock — parallel fetch workers hit this once
        // per value, so it must not serialize them.
        if let Some(r) = self.readers.read().get(&key) {
            return Ok(r.clone());
        }
        let path = partition_dir(&self.root, partition).join(vlog_file_name(log));
        let r = self.env.new_random_access(&path)?;
        self.readers.write().insert(key, r.clone());
        Ok(r)
    }

    /// Read the value behind `ptr`.
    pub fn read(&self, ptr: &ValuePointer) -> Result<Vec<u8>> {
        let reader = self.reader(ptr.partition, ptr.log_number)?;
        read_value_record(reader.as_ref(), ptr.offset, ptr.length)
    }

    /// Readahead hint for an upcoming read of `ptr` (scan optimization).
    pub fn readahead(&self, ptr: &ValuePointer) {
        if let Ok(r) = self.reader(ptr.partition, ptr.log_number) {
            r.readahead(ptr.offset, ptr.length as usize + 9);
        }
    }

    /// Drop cached readers for a log that is about to be deleted.
    pub fn evict(&self, partition: u32, log: u64) {
        self.readers.write().remove(&(partition, log));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;
    use unikv_vlog::ValueLog;

    #[test]
    fn resolves_across_partitions() {
        let env = MemEnv::shared();
        let root = PathBuf::from("/db");
        let mut vl3 = ValueLog::open(env.clone(), partition_dir(&root, 3), 3, 1 << 20).unwrap();
        let mut vl5 = ValueLog::open(env.clone(), partition_dir(&root, 5), 5, 1 << 20).unwrap();
        let p3 = vl3.append(b"from-three").unwrap();
        let p5 = vl5.append(b"from-five").unwrap();
        vl3.sync().unwrap();
        vl5.sync().unwrap();

        let resolver = ValueResolver::new(env, root);
        assert_eq!(resolver.read(&p3).unwrap(), b"from-three");
        assert_eq!(resolver.read(&p5).unwrap(), b"from-five");
        resolver.readahead(&p3);
        // Cached-path read works too.
        assert_eq!(resolver.read(&p3).unwrap(), b"from-three");
        resolver.evict(3, p3.log_number);
        assert_eq!(resolver.read(&p3).unwrap(), b"from-three");
    }

    #[test]
    fn missing_log_is_error() {
        let env = MemEnv::shared();
        let resolver = ValueResolver::new(env, PathBuf::from("/db"));
        let ptr = ValuePointer {
            partition: 1,
            log_number: 1,
            offset: 0,
            length: 4,
        };
        assert!(resolver.read(&ptr).is_err());
    }
}
