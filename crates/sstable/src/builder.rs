//! Streaming SSTable builder.

use crate::block::{BlockBuilder, DEFAULT_RESTART_INTERVAL};
use crate::filter::BloomFilterPolicy;
use crate::format::{BlockHandle, Footer, BLOCK_TRAILER_SIZE, COMPRESSION_RAW};
use unikv_common::{crc32c, Error, Result};
use unikv_env::WritableFile;

/// Maps a stored key to the key indexed by the Bloom filter. Engines
/// storing internal keys pass a user-key extractor so lookups by user key
/// hit the filter.
pub type FilterKeyFn = fn(&[u8]) -> &[u8];

fn identity_filter_key(k: &[u8]) -> &[u8] {
    k
}

/// Tuning knobs for table construction.
#[derive(Clone)]
pub struct TableBuilderOptions {
    /// Target uncompressed size of a data block (paper: 4 KiB).
    pub block_size: usize,
    /// Entries between restart points.
    pub restart_interval: usize,
    /// Bloom bits per key; `None` disables the filter block (UniKV mode).
    pub bloom_bits_per_key: Option<usize>,
    /// Key transform applied before inserting into the Bloom filter.
    pub filter_key: FilterKeyFn,
}

impl Default for TableBuilderOptions {
    fn default() -> Self {
        TableBuilderOptions {
            block_size: 4096,
            restart_interval: DEFAULT_RESTART_INTERVAL,
            bloom_bits_per_key: None,
            filter_key: identity_filter_key,
        }
    }
}

/// Summary of a finished table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProperties {
    /// Number of entries written.
    pub num_entries: u64,
    /// Final file size in bytes.
    pub file_size: u64,
    /// First key added (empty table: empty vec).
    pub smallest: Vec<u8>,
    /// Last key added.
    pub largest: Vec<u8>,
}

/// Builds an SSTable by streaming sorted entries to a writable file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    opts: TableBuilderOptions,
    data_block: BlockBuilder,
    index_entries: Vec<(Vec<u8>, BlockHandle)>,
    filter_keys: Vec<Vec<u8>>,
    offset: u64,
    num_entries: u64,
    smallest: Vec<u8>,
    largest: Vec<u8>,
    last_key: Vec<u8>,
}

impl TableBuilder {
    /// Start building into `file`.
    pub fn new(file: Box<dyn WritableFile>, opts: TableBuilderOptions) -> Self {
        let restart_interval = opts.restart_interval;
        TableBuilder {
            file,
            opts,
            data_block: BlockBuilder::new(restart_interval),
            index_entries: Vec::new(),
            filter_keys: Vec::new(),
            offset: 0,
            num_entries: 0,
            smallest: Vec::new(),
            largest: Vec::new(),
            last_key: Vec::new(),
        }
    }

    /// Append an entry. Keys must be strictly increasing under the table's
    /// intended comparator; byte-identical keys are rejected.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.num_entries > 0 && key == self.last_key.as_slice() {
            return Err(Error::invalid_argument("duplicate key added to table"));
        }
        if self.num_entries == 0 {
            self.smallest = key.to_vec();
        }
        self.largest.clear();
        self.largest.extend_from_slice(key);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);

        if self.opts.bloom_bits_per_key.is_some() {
            self.filter_keys.push((self.opts.filter_key)(key).to_vec());
        }
        self.data_block.add(key, value);
        self.num_entries += 1;
        if self.data_block.current_size_estimate() >= self.opts.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Approximate bytes written plus buffered.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.data_block.current_size_estimate() as u64
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let block = std::mem::replace(
            &mut self.data_block,
            BlockBuilder::new(self.opts.restart_interval),
        );
        let payload = block.finish();
        let handle = self.write_raw_block(&payload)?;
        self.index_entries.push((self.last_key.clone(), handle));
        Ok(())
    }

    fn write_raw_block(&mut self, payload: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: payload.len() as u64,
        };
        self.file.append(payload)?;
        let crc = crc32c::mask(crc32c::extend(crc32c::value(payload), &[COMPRESSION_RAW]));
        let mut trailer = [0u8; BLOCK_TRAILER_SIZE];
        trailer[0] = COMPRESSION_RAW;
        trailer[1..5].copy_from_slice(&crc.to_le_bytes());
        self.file.append(&trailer)?;
        self.offset += payload.len() as u64 + BLOCK_TRAILER_SIZE as u64;
        Ok(handle)
    }

    /// Flush remaining data, write filter/index/footer, and sync.
    pub fn finish(mut self) -> Result<TableProperties> {
        self.flush_data_block()?;

        let filter_handle = match self.opts.bloom_bits_per_key {
            Some(bits) if !self.filter_keys.is_empty() => {
                let policy = BloomFilterPolicy::new(bits);
                let refs: Vec<&[u8]> = self.filter_keys.iter().map(|k| k.as_slice()).collect();
                let filter = policy.create_filter(&refs);
                self.write_raw_block(&filter)?
            }
            _ => BlockHandle { offset: 0, size: 0 },
        };

        let mut index = BlockBuilder::new(1);
        for (key, handle) in &self.index_entries {
            let mut enc = Vec::with_capacity(20);
            handle.encode_to(&mut enc);
            index.add(key, &enc);
        }
        let index_handle = self.write_raw_block(&index.finish())?;

        let footer = Footer {
            filter_handle,
            index_handle,
        };
        self.file.append(&footer.encode())?;
        self.offset += crate::format::FOOTER_SIZE as u64;
        self.file.sync()?;

        Ok(TableProperties {
            num_entries: self.num_entries,
            file_size: self.offset,
            smallest: self.smallest,
            largest: self.largest,
        })
    }
}
