//! On-disk framing: block handles, block trailers, and the table footer.

use unikv_common::coding::{get_varint64, put_fixed64, put_varint64, try_decode_fixed64};
use unikv_common::{crc32c, Error, Result};
use unikv_env::RandomAccessFile;

/// Magic number identifying our table files (last 8 footer bytes).
pub const TABLE_MAGIC: u64 = 0x7573_6e69_6b76_7462; // "usnikvtb"

/// Compression type byte in each block trailer. Only raw is produced;
/// the slot exists so the format can grow compression without breaking.
pub const COMPRESSION_RAW: u8 = 0;

/// Bytes appended to each block: 1 type byte + 4 CRC bytes.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Fixed encoded footer length: two max-length varint64 handles + magic.
pub const FOOTER_SIZE: usize = 2 * 2 * 10 + 8;

/// Pointer to a block within the table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block start.
    pub offset: u64,
    /// Length of the block payload (excluding trailer).
    pub size: u64,
}

impl BlockHandle {
    /// Encode as two varint64s.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Decode, returning the handle and bytes consumed.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, n1) = get_varint64(src)?;
        let (size, n2) = get_varint64(&src[n1..])?;
        Ok((BlockHandle { offset, size }, n1 + n2))
    }
}

/// Table footer: locates the filter block (optional) and the index block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the filter block; `size == 0` means no filter.
    pub filter_handle: BlockHandle,
    /// Handle of the index block.
    pub index_handle: BlockHandle,
}

impl Footer {
    /// Encode to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(FOOTER_SIZE);
        self.filter_handle.encode_to(&mut v);
        self.index_handle.encode_to(&mut v);
        v.resize(FOOTER_SIZE - 8, 0);
        put_fixed64(&mut v, TABLE_MAGIC);
        v
    }

    /// Decode from the final [`FOOTER_SIZE`] bytes of a table file.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_SIZE {
            return Err(Error::corruption("bad footer length"));
        }
        let magic = try_decode_fixed64(&src[FOOTER_SIZE - 8..])?;
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic"));
        }
        let (filter_handle, n1) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[n1..])?;
        Ok(Footer {
            filter_handle,
            index_handle,
        })
    }
}

/// Read a block's payload at `handle`, verifying the trailer CRC.
pub fn read_block_payload(file: &dyn RandomAccessFile, handle: &BlockHandle) -> Result<Vec<u8>> {
    let total = handle.size as usize + BLOCK_TRAILER_SIZE;
    let data = file.read_at(handle.offset, total)?;
    if data.len() != total {
        return Err(Error::corruption("truncated block read"));
    }
    let payload = &data[..handle.size as usize];
    let trailer = &data[handle.size as usize..];
    let compression = trailer[0];
    if compression != COMPRESSION_RAW {
        return Err(Error::corruption(format!(
            "unsupported compression type {compression}"
        )));
    }
    let stored = u32::from_le_bytes(trailer[1..5].try_into().expect("4 bytes"));
    let actual = crc32c::extend(crc32c::value(payload), &[compression]);
    if crc32c::unmask(stored) != actual {
        return Err(Error::corruption("block checksum mismatch"));
    }
    Ok(data[..handle.size as usize].to_vec())
}

/// Append a block (payload + trailer) to `out`, returning its handle.
pub fn append_block(out: &mut Vec<u8>, payload: &[u8]) -> BlockHandle {
    let handle = BlockHandle {
        offset: out.len() as u64,
        size: payload.len() as u64,
    };
    out.extend_from_slice(payload);
    let crc = crc32c::mask(crc32c::extend(crc32c::value(payload), &[COMPRESSION_RAW]));
    out.push(COMPRESSION_RAW);
    out.extend_from_slice(&crc.to_le_bytes());
    handle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        let h = BlockHandle {
            offset: 123_456,
            size: 789,
        };
        let mut buf = Vec::new();
        h.encode_to(&mut buf);
        let (got, n) = BlockHandle::decode_from(&buf).unwrap();
        assert_eq!(got, h);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            filter_handle: BlockHandle { offset: 0, size: 0 },
            index_handle: BlockHandle {
                offset: 9000,
                size: 1234,
            },
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_SIZE);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f = Footer {
            filter_handle: BlockHandle::default(),
            index_handle: BlockHandle::default(),
        };
        let mut enc = f.encode();
        let n = enc.len();
        enc[n - 1] ^= 1;
        assert!(Footer::decode(&enc).is_err());
        assert!(Footer::decode(&enc[..n - 1]).is_err());
    }
}
