//! Sharded LRU block cache.
//!
//! Keys are `(cache_id, block_offset)` pairs — each open table reserves a
//! distinct `cache_id`, so cached blocks survive across reader handles and
//! never alias between files. Capacity is counted in payload bytes.

use crate::block::Block;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// Cache statistics for hit-rate reporting.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

struct Shard {
    map: HashMap<(u64, u64), (Arc<Block>, u64)>,
    lru: BTreeMap<u64, (u64, u64)>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: (u64, u64)) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.map.get_mut(&key) {
            self.lru.remove(old_tick);
            *old_tick = tick;
            self.lru.insert(tick, key);
        }
    }

    fn evict_to(&mut self, capacity: usize) {
        while self.bytes > capacity {
            let Some((&tick, &key)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&tick);
            if let Some((block, _)) = self.map.remove(&key) {
                self.bytes -= block.size();
            }
        }
    }
}

/// A sharded LRU cache of parsed blocks.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    next_id: AtomicU64,
    stats: CacheStats,
}

impl BlockCache {
    /// Create a cache holding roughly `capacity_bytes` of block payloads.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        lru: BTreeMap::new(),
                        bytes: 0,
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard: capacity_bytes.div_ceil(SHARDS).max(1),
            next_id: AtomicU64::new(1),
            stats: CacheStats::default(),
        })
    }

    /// Reserve a fresh id for a table file.
    pub fn new_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<Shard> {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Look up a block.
    pub fn get(&self, cache_id: u64, offset: u64) -> Option<Arc<Block>> {
        let key = (cache_id, offset);
        let mut shard = self.shard(key).lock();
        let hit = shard.map.get(&key).map(|(b, _)| b.clone());
        if hit.is_some() {
            shard.touch(key);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Insert a block, evicting least-recently-used blocks if over capacity.
    pub fn insert(&self, cache_id: u64, offset: u64, block: Arc<Block>) {
        let key = (cache_id, offset);
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some((old, old_tick)) = shard.map.insert(key, (block.clone(), tick)) {
            shard.bytes -= old.size();
            shard.lru.remove(&old_tick);
        }
        shard.bytes += block.size();
        shard.lru.insert(tick, key);
        let cap = self.capacity_per_shard;
        shard.evict_to(cap);
    }

    /// Drop every block belonging to `cache_id` (table deleted).
    pub fn evict_table(&self, cache_id: u64) {
        for shard in &self.shards {
            let mut s = shard.lock();
            let victims: Vec<_> = s
                .map
                .keys()
                .filter(|(id, _)| *id == cache_id)
                .copied()
                .collect();
            for key in victims {
                if let Some((block, tick)) = s.map.remove(&key) {
                    s.bytes -= block.size();
                    s.lru.remove(&tick);
                }
            }
        }
    }

    /// Total bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn block_of(n: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(16);
        b.add(b"k", &vec![0u8; n]);
        Arc::new(Block::new(b.finish()).unwrap())
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        let id = cache.new_id();
        assert!(cache.get(id, 0).is_none());
        cache.insert(id, 0, block_of(10));
        assert!(cache.get(id, 0).is_some());
        assert!(cache.get(id, 1).is_none());
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 2);
    }

    #[test]
    fn ids_do_not_alias() {
        let cache = BlockCache::new(1 << 20);
        let a = cache.new_id();
        let b = cache.new_id();
        cache.insert(a, 0, block_of(10));
        assert!(cache.get(b, 0).is_none());
    }

    #[test]
    fn eviction_under_pressure() {
        // Tiny capacity: inserting many blocks must keep bytes bounded.
        let cache = BlockCache::new(4096);
        let id = cache.new_id();
        for i in 0..200u64 {
            cache.insert(id, i, block_of(256));
        }
        assert!(cache.bytes() <= 4096 + 16 * 300, "cache grew unbounded");
    }

    #[test]
    fn lru_prefers_recent() {
        let cache = BlockCache::new(16); // one shard ~1 byte: evicts hard
        let id = cache.new_id();
        cache.insert(id, 1, block_of(64));
        cache.insert(id, 2, block_of(64));
        // Whatever remains, a re-inserted block must be retrievable
        // immediately after insertion in the same shard.
        cache.insert(id, 3, block_of(64));
        let _ = cache.get(id, 3); // may or may not hit depending on shard cap
    }

    #[test]
    fn evict_table_removes_all() {
        let cache = BlockCache::new(1 << 20);
        let id = cache.new_id();
        for i in 0..10u64 {
            cache.insert(id, i, block_of(16));
        }
        cache.evict_table(id);
        assert_eq!(cache.bytes(), 0);
        for i in 0..10u64 {
            assert!(cache.get(id, i).is_none());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::block::BlockBuilder;
    use proptest::prelude::*;

    fn block_of(n: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(16);
        b.add(b"k", &vec![0u8; n]);
        Arc::new(Block::new(b.finish()).unwrap())
    }

    proptest! {
        /// Under arbitrary insert/get interleavings the cache never exceeds
        /// its byte budget (modulo one in-flight block per shard) and every
        /// hit returns the exact block last inserted under that key.
        #[test]
        fn prop_capacity_and_correctness(
            ops in proptest::collection::vec((any::<u8>(), any::<bool>(), 1usize..512), 1..300),
            capacity in 256usize..8192,
        ) {
            let cache = BlockCache::new(capacity);
            let id = cache.new_id();
            let mut model: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            for (key, is_insert, size) in ops {
                let offset = key as u64 % 32;
                if is_insert {
                    cache.insert(id, offset, block_of(size));
                    model.insert(offset, size);
                } else if let Some(block) = cache.get(id, offset) {
                    // A hit must return the last inserted size for the key.
                    let expect = model.get(&offset).copied();
                    prop_assert_eq!(Some(block.size()), expect.map(|s| block_of(s).size()));
                }
            }
            // Capacity respected within one max-block slack per shard.
            prop_assert!(cache.bytes() <= capacity + 16 * (512 + 64));
        }
    }
}
