//! Bloom filter policy for the LSM baselines.
//!
//! UniKV's headline design removes Bloom filters entirely ("we removed the
//! Bloom filters of all SSTables to save memory and computation", paper
//! §Differentiated Indexing), but the LevelDB/RocksDB-family baselines need
//! them, and the motivation experiments quantify their false-positive cost.
//!
//! Standard double-hashing Bloom construction (Kirsch–Mitzenmacher).

use unikv_common::hash;

/// Builds and queries per-table Bloom filters.
#[derive(Debug, Clone, Copy)]
pub struct BloomFilterPolicy {
    bits_per_key: usize,
    k: usize,
}

impl BloomFilterPolicy {
    /// Create a policy with `bits_per_key` bits per key (LevelDB default 10).
    pub fn new(bits_per_key: usize) -> Self {
        // k = bits_per_key * ln2, clamped to [1, 30].
        let k = ((bits_per_key as f64) * 0.69) as usize;
        BloomFilterPolicy {
            bits_per_key,
            k: k.clamp(1, 30),
        }
    }

    /// Build a filter over `keys`, appending it to a fresh buffer.
    pub fn create_filter(&self, keys: &[&[u8]]) -> Vec<u8> {
        let mut bits = keys.len() * self.bits_per_key;
        if bits < 64 {
            bits = 64; // avoid high FP rate for tiny tables
        }
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut filter = vec![0u8; bytes + 1];
        filter[bytes] = self.k as u8;
        for key in keys {
            let mut h = hash::hash32(key, 0xbc9f_1d34);
            let delta = h.rotate_right(17);
            for _ in 0..self.k {
                let bit = (h as usize) % bits;
                filter[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        filter
    }

    /// Query a filter produced by [`create_filter`](Self::create_filter).
    pub fn key_may_match(key: &[u8], filter: &[u8]) -> bool {
        if filter.len() < 2 {
            return true; // malformed: fail open
        }
        let bytes = filter.len() - 1;
        let bits = bytes * 8;
        let k = filter[bytes] as usize;
        if k > 30 {
            return true; // reserved for future encodings: fail open
        }
        let mut h = hash::hash32(key, 0xbc9f_1d34);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit = (h as usize) % bits;
            if filter[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_filter_fails_open() {
        assert!(BloomFilterPolicy::key_may_match(b"x", &[]));
    }

    #[test]
    fn no_false_negatives() {
        let policy = BloomFilterPolicy::new(10);
        for n in [1usize, 10, 100, 5000] {
            let ks = keys(n);
            let refs: Vec<&[u8]> = ks.iter().map(|k| k.as_slice()).collect();
            let filter = policy.create_filter(&refs);
            for k in &ks {
                assert!(
                    BloomFilterPolicy::key_may_match(k, &filter),
                    "false negative for {k:?} at n={n}"
                );
            }
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let policy = BloomFilterPolicy::new(10);
        let ks = keys(10_000);
        let refs: Vec<&[u8]> = ks.iter().map(|k| k.as_slice()).collect();
        let filter = policy.create_filter(&refs);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            let missing = format!("absent-{i}").into_bytes();
            if BloomFilterPolicy::key_may_match(&missing, &filter) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key targets ~1%; allow generous slack for hash quality.
        assert!(rate < 0.04, "false positive rate too high: {rate}");
    }

    #[test]
    fn fewer_bits_means_more_false_positives() {
        let ks = keys(5_000);
        let refs: Vec<&[u8]> = ks.iter().map(|k| k.as_slice()).collect();
        let small = BloomFilterPolicy::new(2).create_filter(&refs);
        let large = BloomFilterPolicy::new(16).create_filter(&refs);
        let count_fp = |filter: &[u8]| {
            (0..5_000)
                .filter(|i| BloomFilterPolicy::key_may_match(format!("no-{i}").as_bytes(), filter))
                .count()
        };
        assert!(count_fp(&small) > count_fp(&large));
    }
}
