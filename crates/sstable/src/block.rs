//! Data/index block format with restart-point prefix compression.
//!
//! Entries: `varint32(shared) varint32(non_shared) varint32(value_len)
//! key_delta value`. Every `restart_interval` entries the full key is
//! stored (`shared == 0`) and its offset recorded in the restart array at
//! the block tail: `fixed32 * num_restarts` + `fixed32(num_restarts)`.
//! Seeks binary-search the restart array, then scan linearly.

use crate::KeyCmp;
use bytes::Bytes;
use std::cmp::Ordering;
use unikv_common::coding::{decode_fixed32, get_varint32, put_fixed32, put_varint32};
use unikv_common::{Error, Result};

/// Default number of entries between restart points.
pub const DEFAULT_RESTART_INTERVAL: usize = 16;

/// Builds one block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    counter: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Create a builder with the given restart interval.
    pub fn new(restart_interval: usize) -> Self {
        assert!(restart_interval >= 1);
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval,
            counter: 0,
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Append an entry. Keys must arrive in strictly increasing order under
    /// the table's comparator; the builder only debug-asserts byte order of
    /// shared prefixes, full ordering is the caller's contract.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        let mut shared = 0;
        if self.counter < self.restart_interval {
            let max = self.last_key.len().min(key.len());
            while shared < max && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.counter = 0;
        }
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);

        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.entries += 1;
    }

    /// Bytes the finished block will occupy (excluding trailer).
    pub fn current_size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// True if no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finish the block, returning its payload bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed32(&mut self.buf, r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }
}

/// An immutable, parsed block ready for iteration.
#[derive(Clone)]
pub struct Block {
    data: Bytes,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parse a block payload.
    pub fn new(data: impl Into<Bytes>) -> Result<Block> {
        let data: Bytes = data.into();
        if data.len() < 4 {
            return Err(Error::corruption("block too small"));
        }
        let num_restarts = decode_fixed32(&data[data.len() - 4..]) as usize;
        let restarts_size = num_restarts
            .checked_mul(4)
            .and_then(|v| v.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if restarts_size > data.len() || num_restarts == 0 {
            return Err(Error::corruption("bad restart array"));
        }
        Ok(Block {
            restarts_offset: data.len() - restarts_size,
            num_restarts,
            data,
        })
    }

    /// Size of the underlying payload in bytes (used for cache accounting).
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, i: usize) -> usize {
        debug_assert!(i < self.num_restarts);
        decode_fixed32(&self.data[self.restarts_offset + i * 4..]) as usize
    }

    /// Create an iterator over the block.
    pub fn iter(&self, cmp: KeyCmp) -> BlockIterator {
        BlockIterator {
            block: self.clone(),
            cmp,
            offset: usize::MAX,
            next_offset: 0,
            key: Vec::new(),
            value_range: 0..0,
        }
    }
}

/// Cursor over a [`Block`]'s entries.
pub struct BlockIterator {
    block: Block,
    cmp: KeyCmp,
    /// Offset of the current entry; `usize::MAX` when invalid.
    offset: usize,
    /// Offset of the next entry to parse.
    next_offset: usize,
    key: Vec<u8>,
    value_range: std::ops::Range<usize>,
}

impl BlockIterator {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.offset != usize::MAX
    }

    /// Current key. Panics if not valid.
    pub fn key(&self) -> &[u8] {
        assert!(self.valid());
        &self.key
    }

    /// Current value. Panics if not valid.
    pub fn value(&self) -> &[u8] {
        assert!(self.valid());
        &self.block.data[self.value_range.clone()]
    }

    /// Position before the first entry and step onto it.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.seek_to_restart(0);
        self.parse_next()
    }

    /// Position at the first entry with key `>= target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        // Binary search restart points for the last restart whose key < target.
        let (mut lo, mut hi) = (0usize, self.block.num_restarts - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let key = self.restart_key(mid)?;
            if (self.cmp)(&key, target) == Ordering::Less {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        self.seek_to_restart(lo);
        loop {
            self.parse_next()?;
            if !self.valid() || (self.cmp)(&self.key, target) != Ordering::Less {
                return Ok(());
            }
        }
    }

    /// Advance to the next entry (invalid at block end).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<()> {
        assert!(self.valid());
        self.parse_next()
    }

    fn seek_to_restart(&mut self, i: usize) {
        self.key.clear();
        self.offset = usize::MAX;
        self.next_offset = self.block.restart_point(i);
    }

    /// Full key stored at restart point `i` (shared is always 0 there).
    fn restart_key(&self, i: usize) -> Result<Vec<u8>> {
        let off = self.block.restart_point(i);
        let data = &self.block.data[..self.block.restarts_offset];
        let (shared, n1) = get_varint32(&data[off..])?;
        if shared != 0 {
            return Err(Error::corruption("restart entry has shared bytes"));
        }
        let (non_shared, n2) = get_varint32(&data[off + n1..])?;
        let (_vlen, n3) = get_varint32(&data[off + n1 + n2..])?;
        let kstart = off + n1 + n2 + n3;
        let kend = kstart + non_shared as usize;
        if kend > data.len() {
            return Err(Error::corruption("restart key out of range"));
        }
        Ok(data[kstart..kend].to_vec())
    }

    fn parse_next(&mut self) -> Result<()> {
        if self.next_offset >= self.block.restarts_offset {
            self.offset = usize::MAX;
            return Ok(());
        }
        let data = &self.block.data[..self.block.restarts_offset];
        let off = self.next_offset;
        let (shared, n1) = get_varint32(&data[off..])?;
        let (non_shared, n2) = get_varint32(&data[off + n1..])?;
        let (value_len, n3) = get_varint32(&data[off + n1 + n2..])?;
        let kstart = off + n1 + n2 + n3;
        let vstart = kstart + non_shared as usize;
        let vend = vstart + value_len as usize;
        if shared as usize > self.key.len() || vend > data.len() {
            return Err(Error::corruption("block entry out of range"));
        }
        self.key.truncate(shared as usize);
        self.key.extend_from_slice(&data[kstart..vstart]);
        self.value_range = vstart..vend;
        self.offset = off;
        self.next_offset = vend;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw_cmp;
    use proptest::prelude::*;

    fn build(entries: &[(&[u8], &[u8])], interval: usize) -> Block {
        let mut b = BlockBuilder::new(interval);
        for (k, v) in entries {
            b.add(k, v);
        }
        Block::new(b.finish()).unwrap()
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let block = build(&[], 16);
        let mut it = block.iter(raw_cmp);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn iterate_all_entries() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
            .map(|i| {
                (
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        for interval in [1, 2, 16, 128] {
            let block = build(&refs, interval);
            let mut it = block.iter(raw_cmp);
            it.seek_to_first().unwrap();
            for (k, v) in &entries {
                assert!(it.valid());
                assert_eq!(it.key(), &k[..]);
                assert_eq!(it.value(), &v[..]);
                it.next().unwrap();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_finds_lower_bound() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..50u32)
            .map(|i| (format!("k{:04}", i * 2).into_bytes(), vec![i as u8]))
            .collect();
        let refs: Vec<(&[u8], &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let block = build(&refs, 4);
        let mut it = block.iter(raw_cmp);
        // Exact hit.
        it.seek(b"k0010").unwrap();
        assert_eq!(it.key(), b"k0010");
        // Between keys: lands on next.
        it.seek(b"k0011").unwrap();
        assert_eq!(it.key(), b"k0012");
        // Before first.
        it.seek(b"a").unwrap();
        assert_eq!(it.key(), b"k0000");
        // Past last.
        it.seek(b"z").unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn corrupt_restart_count_rejected() {
        assert!(Block::new(vec![0u8, 0, 0]).is_err());
        // num_restarts = 0
        assert!(Block::new(vec![0u8, 0, 0, 0]).is_err());
        // restart array larger than block
        assert!(Block::new(vec![0xffu8, 0xff, 0xff, 0x7f]).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_and_seek(
            keys in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 1..20), 1..80),
            interval in 1usize..20,
        ) {
            let entries: Vec<(Vec<u8>, Vec<u8>)> =
                keys.iter().cloned().map(|k| { let v = k.repeat(2); (k, v) }).collect();
            let refs: Vec<(&[u8], &[u8])> =
                entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            let block = build(&refs, interval);

            // Full scan equals input.
            let mut it = block.iter(raw_cmp);
            it.seek_to_first().unwrap();
            for (k, v) in &entries {
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), &k[..]);
                prop_assert_eq!(it.value(), &v[..]);
                it.next().unwrap();
            }
            prop_assert!(!it.valid());

            // Seeks agree with a model lower_bound.
            for (k, _) in &entries {
                let mut it = block.iter(raw_cmp);
                it.seek(k).unwrap();
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), &k[..]);
            }
        }
    }
}
