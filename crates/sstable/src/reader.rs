//! SSTable reader: footer → index block → data blocks, with block-cache
//! integration and a two-level iterator.

use crate::block::{Block, BlockIterator};
use crate::cache::BlockCache;
use crate::filter::BloomFilterPolicy;
use crate::format::{read_block_payload, BlockHandle, Footer, FOOTER_SIZE};
use crate::KeyCmp;
use std::sync::Arc;
use unikv_common::metrics::Counter;
use unikv_common::perf::{self, PerfStage};
use unikv_common::{Error, Result};
use unikv_env::RandomAccessFile;

/// Registry-backed I/O counters shared by every table opened with the
/// same [`TableOptions`] (typically one bundle per database).
#[derive(Clone)]
pub struct TableIoMetrics {
    /// Data blocks read from the file (cache misses + uncached reads).
    pub block_reads: Counter,
    /// Bytes of data-block payload read from the file.
    pub block_read_bytes: Counter,
    /// Data-block lookups answered by the block cache.
    pub cache_hits: Counter,
    /// Data-block lookups that missed the block cache.
    pub cache_misses: Counter,
}

impl TableIoMetrics {
    /// Register the table I/O families in `registry`.
    pub fn new(registry: &unikv_common::metrics::MetricsRegistry) -> TableIoMetrics {
        TableIoMetrics {
            block_reads: registry.counter("sst_block_reads"),
            block_read_bytes: registry.counter("sst_block_read_bytes"),
            cache_hits: registry.counter("sst_cache_hits"),
            cache_misses: registry.counter("sst_cache_misses"),
        }
    }
}

/// Options for opening a table.
#[derive(Clone)]
pub struct TableOptions {
    /// Key ordering the table was built with.
    pub cmp: KeyCmp,
    /// Shared block cache; `None` reads blocks from the file every time.
    pub cache: Option<Arc<BlockCache>>,
    /// Optional per-database I/O counters (cache hit/miss, block reads).
    pub io: Option<TableIoMetrics>,
}

impl TableOptions {
    /// Options for a table of raw byte keys without caching.
    pub fn raw_uncached() -> Self {
        TableOptions {
            cmp: crate::raw_cmp,
            cache: None,
            io: None,
        }
    }
}

/// An open, immutable SSTable.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    opts: TableOptions,
    index: Block,
    filter: Option<Vec<u8>>,
    cache_id: u64,
}

impl Table {
    /// Open a table of `size` bytes from `file`.
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        size: u64,
        opts: TableOptions,
    ) -> Result<Arc<Table>> {
        if (size as usize) < FOOTER_SIZE {
            return Err(Error::corruption("table file too small for footer"));
        }
        let footer_bytes = file.read_at(size - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_bytes)?;
        let index = Block::new(read_block_payload(file.as_ref(), &footer.index_handle)?)?;
        let filter = if footer.filter_handle.size > 0 {
            Some(read_block_payload(file.as_ref(), &footer.filter_handle)?)
        } else {
            None
        };
        let cache_id = opts.cache.as_ref().map(|c| c.new_id()).unwrap_or(0);
        Ok(Arc::new(Table {
            file,
            opts,
            index,
            filter,
            cache_id,
        }))
    }

    /// True if the table's Bloom filter admits `filter_key` (always true
    /// when the table has no filter — UniKV mode).
    pub fn may_contain(&self, filter_key: &[u8]) -> bool {
        match &self.filter {
            Some(f) => BloomFilterPolicy::key_may_match(filter_key, f),
            None => true,
        }
    }

    /// True if a Bloom filter block is present.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    fn read_data_block(&self, handle: &BlockHandle) -> Result<Arc<Block>> {
        let block = if let Some(cache) = &self.opts.cache {
            if let Some(block) = cache.get(self.cache_id, handle.offset) {
                if let Some(io) = &self.opts.io {
                    io.cache_hits.inc();
                }
                perf::count_cache_hit();
                perf::mark(PerfStage::BlockRead);
                return Ok(block);
            }
            if let Some(io) = &self.opts.io {
                io.cache_misses.inc();
                io.block_reads.inc();
                io.block_read_bytes.add(handle.size);
            }
            perf::count_cache_miss();
            let block = Arc::new(Block::new(read_block_payload(self.file.as_ref(), handle)?)?);
            cache.insert(self.cache_id, handle.offset, block.clone());
            block
        } else {
            if let Some(io) = &self.opts.io {
                io.block_reads.inc();
                io.block_read_bytes.add(handle.size);
            }
            perf::count_cache_miss();
            Arc::new(Block::new(read_block_payload(self.file.as_ref(), handle)?)?)
        };
        perf::mark(PerfStage::BlockRead);
        Ok(block)
    }

    /// Find the first entry with key `>= key`. Returns `(key, value)` or
    /// `None` if every entry is smaller.
    ///
    /// `filter_key`, when provided, is checked against the Bloom filter
    /// first; a negative answer short-circuits without any I/O.
    pub fn get(&self, key: &[u8], filter_key: Option<&[u8]>) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if let Some(fk) = filter_key {
            if !self.may_contain(fk) {
                return Ok(None);
            }
        }
        let mut index_iter = self.index.iter(self.opts.cmp);
        index_iter.seek(key)?;
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(&handle)?;
        let mut it = block.iter(self.opts.cmp);
        it.seek(key)?;
        if it.valid() {
            return Ok(Some((it.key().to_vec(), it.value().to_vec())));
        }
        // Key sorts into the gap after this block's last entry; the next
        // block's first entry is the answer (possible because index keys
        // are block-last keys, not separators).
        index_iter.next()?;
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(&handle)?;
        let mut it = block.iter(self.opts.cmp);
        it.seek_to_first()?;
        if it.valid() {
            Ok(Some((it.key().to_vec(), it.value().to_vec())))
        } else {
            Ok(None)
        }
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>) -> TableIterator {
        TableIterator {
            table: self.clone(),
            index_iter: self.index.iter(self.opts.cmp),
            data_iter: None,
        }
    }

    /// Evict this table's blocks from the shared cache (call on delete).
    pub fn evict_from_cache(&self) {
        if let Some(cache) = &self.opts.cache {
            cache.evict_table(self.cache_id);
        }
    }
}

/// Two-level iterator: index block positions select data blocks.
pub struct TableIterator {
    table: Arc<Table>,
    index_iter: BlockIterator,
    data_iter: Option<BlockIterator>,
}

impl TableIterator {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.data_iter.as_ref().is_some_and(|d| d.valid())
    }

    /// Current key. Panics if not valid.
    pub fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid iterator").key()
    }

    /// Current value. Panics if not valid.
    pub fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid iterator").value()
    }

    fn load_data_block(&mut self) -> Result<()> {
        if !self.index_iter.valid() {
            self.data_iter = None;
            return Ok(());
        }
        let (handle, _) = BlockHandle::decode_from(self.index_iter.value())?;
        let block = self.table.read_data_block(&handle)?;
        self.data_iter = Some(block.iter(self.table.opts.cmp));
        Ok(())
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.index_iter.seek_to_first()?;
        self.load_data_block()?;
        if let Some(d) = &mut self.data_iter {
            d.seek_to_first()?;
        }
        self.skip_empty_blocks_forward()
    }

    /// Position at the first entry with key `>= target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.index_iter.seek(target)?;
        self.load_data_block()?;
        if let Some(d) = &mut self.data_iter {
            d.seek(target)?;
        }
        self.skip_empty_blocks_forward()
    }

    /// Advance to the next entry.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<()> {
        let d = self.data_iter.as_mut().expect("valid iterator");
        d.next()?;
        self.skip_empty_blocks_forward()
    }

    fn skip_empty_blocks_forward(&mut self) -> Result<()> {
        while self.data_iter.is_some() && !self.valid() {
            self.index_iter.next()?;
            self.load_data_block()?;
            if let Some(d) = &mut self.data_iter {
                d.seek_to_first()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use unikv_env::mem::MemEnv;
    use unikv_env::Env;

    fn build_table(
        env: &MemEnv,
        path: &Path,
        entries: &[(Vec<u8>, Vec<u8>)],
        opts: TableBuilderOptions,
    ) -> (u64, Arc<Table>) {
        let mut b = TableBuilder::new(env.new_writable(path).unwrap(), opts);
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        let props = b.finish();
        let props = props.unwrap();
        assert_eq!(props.num_entries, entries.len() as u64);
        let file = env.new_random_access(path).unwrap();
        let size = env.file_size(path).unwrap();
        assert_eq!(size, props.file_size);
        let table = Table::open(file, size, TableOptions::raw_uncached()).unwrap();
        (size, table)
    }

    fn sample_entries(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{i:06}").into_bytes(),
                    format!("value-{i}").repeat(3).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn build_read_roundtrip() {
        let env = MemEnv::new();
        let entries = sample_entries(1000);
        let (_, table) = build_table(
            &env,
            Path::new("/t.sst"),
            &entries,
            TableBuilderOptions::default(),
        );
        // Point lookups.
        for (k, v) in &entries {
            let got = table.get(k, None).unwrap().unwrap();
            assert_eq!(&got.0, k);
            assert_eq!(&got.1, v);
        }
        // Missing key between entries: lower bound is the next entry.
        let got = table.get(b"key000500x", None).unwrap().unwrap();
        assert_eq!(got.0, b"key000501");
        // Past the end.
        assert!(table.get(b"zzz", None).unwrap().is_none());
    }

    #[test]
    fn full_iteration_matches_input() {
        let env = MemEnv::new();
        let entries = sample_entries(500);
        let (_, table) = build_table(
            &env,
            Path::new("/t.sst"),
            &entries,
            TableBuilderOptions {
                block_size: 256, // many small blocks
                ..Default::default()
            },
        );
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        for (k, v) in &entries {
            assert!(it.valid());
            assert_eq!(it.key(), &k[..]);
            assert_eq!(it.value(), &v[..]);
            it.next().unwrap();
        }
        assert!(!it.valid());
    }

    #[test]
    fn iterator_seek() {
        let env = MemEnv::new();
        let entries = sample_entries(300);
        let (_, table) = build_table(
            &env,
            Path::new("/t.sst"),
            &entries,
            TableBuilderOptions {
                block_size: 128,
                ..Default::default()
            },
        );
        let mut it = table.iter();
        it.seek(b"key000123").unwrap();
        assert_eq!(it.key(), b"key000123");
        it.seek(b"key0001230").unwrap();
        assert_eq!(it.key(), b"key000124");
        it.seek(b"a").unwrap();
        assert_eq!(it.key(), b"key000000");
        it.seek(b"zzz").unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn bloom_filter_short_circuits() {
        let env = MemEnv::new();
        let entries = sample_entries(100);
        let mut b = TableBuilder::new(
            env.new_writable(Path::new("/t.sst")).unwrap(),
            TableBuilderOptions {
                bloom_bits_per_key: Some(10),
                ..Default::default()
            },
        );
        for (k, v) in &entries {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap();
        let file = env.new_random_access(Path::new("/t.sst")).unwrap();
        let size = env.file_size(Path::new("/t.sst")).unwrap();
        let table = Table::open(file, size, TableOptions::raw_uncached()).unwrap();
        assert!(table.has_filter());
        for (k, _) in &entries {
            assert!(table.may_contain(k));
            assert!(table.get(k, Some(k)).unwrap().is_some());
        }
        // A clearly absent key should usually be rejected by the filter.
        let rejected = (0..1000)
            .filter(|i| !table.may_contain(format!("absent{i}").as_bytes()))
            .count();
        assert!(rejected > 900, "bloom rejected only {rejected}/1000");
    }

    #[test]
    fn cached_reads_hit_cache() {
        let env = MemEnv::new();
        let entries = sample_entries(200);
        let mut b = TableBuilder::new(
            env.new_writable(Path::new("/t.sst")).unwrap(),
            TableBuilderOptions::default(),
        );
        for (k, v) in &entries {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap();
        let cache = BlockCache::new(1 << 20);
        let file = env.new_random_access(Path::new("/t.sst")).unwrap();
        let size = env.file_size(Path::new("/t.sst")).unwrap();
        let table = Table::open(
            file,
            size,
            TableOptions {
                cmp: crate::raw_cmp,
                cache: Some(cache.clone()),
                io: None,
            },
        )
        .unwrap();
        table.get(b"key000000", None).unwrap();
        let misses_after_first = cache.stats().misses();
        table.get(b"key000000", None).unwrap();
        assert_eq!(cache.stats().misses(), misses_after_first);
        assert!(cache.stats().hits() > 0);
        table.evict_from_cache();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn duplicate_key_rejected() {
        let env = MemEnv::new();
        let mut b = TableBuilder::new(
            env.new_writable(Path::new("/t.sst")).unwrap(),
            TableBuilderOptions::default(),
        );
        b.add(b"k", b"v").unwrap();
        assert!(b.add(b"k", b"v2").is_err());
    }

    #[test]
    fn corrupt_block_detected() {
        let env = MemEnv::new();
        let entries = sample_entries(50);
        build_table(
            &env,
            Path::new("/t.sst"),
            &entries,
            TableBuilderOptions::default(),
        );
        let mut data = env.read_to_vec(Path::new("/t.sst")).unwrap();
        data[10] ^= 0xff; // corrupt a data-block byte
        let mut w = env.new_writable(Path::new("/t.sst")).unwrap();
        w.append(&data).unwrap();
        drop(w);
        let file = env.new_random_access(Path::new("/t.sst")).unwrap();
        let size = env.file_size(Path::new("/t.sst")).unwrap();
        let table = Table::open(file, size, TableOptions::raw_uncached()).unwrap();
        let err = table.get(b"key000000", None).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn empty_table() {
        let env = MemEnv::new();
        let (_, table) = build_table(
            &env,
            Path::new("/t.sst"),
            &[],
            TableBuilderOptions::default(),
        );
        assert!(table.get(b"x", None).unwrap().is_none());
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }
}
