#![warn(missing_docs)]

//! SSTable: the immutable on-disk table format shared by every engine in
//! this workspace (UniKV's UnsortedStore and SortedStore both reuse the
//! "mature and stable SSTable code", paper §Implementation; the LSM
//! baselines use it with Bloom filters enabled).
//!
//! Layout (LevelDB-lineage):
//!
//! ```text
//! [data block]*            4 KiB target, prefix-compressed w/ restarts
//! [filter block]?          Bloom filter (baselines only; UniKV omits it)
//! [index block]            one entry per data block: last_key -> handle
//! [footer]                 filter handle + index handle + magic
//! ```
//!
//! Every block is followed by a 5-byte trailer: compression type (always
//! raw here) and a masked CRC32C.

pub mod block;
pub mod builder;
pub mod cache;
pub mod filter;
pub mod format;
pub mod reader;

pub use block::{Block, BlockBuilder, BlockIterator};
pub use builder::{TableBuilder, TableBuilderOptions};
pub use cache::BlockCache;
pub use filter::BloomFilterPolicy;
pub use format::BlockHandle;
pub use reader::{Table, TableIoMetrics, TableIterator, TableOptions};

use std::cmp::Ordering;

/// Key comparison function used throughout a table. Tables storing internal
/// keys pass [`unikv_common::ikey::compare_internal_keys`]; raw-byte tables
/// pass `<[u8]>::cmp`-style ordering.
pub type KeyCmp = fn(&[u8], &[u8]) -> Ordering;

/// Raw byte ordering, for tables storing plain keys.
pub fn raw_cmp(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}
