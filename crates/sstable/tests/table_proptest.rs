//! Property tests over whole tables: build → read round-trips with
//! internal keys (the production key shape), across block sizes, with
//! lower-bound seek semantics checked against a model.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use unikv_common::ikey::{compare_internal_keys, make_internal_key, ValueType};
use unikv_env::mem::MemEnv;
use unikv_env::Env;
use unikv_sstable::{Table, TableBuilder, TableBuilderOptions, TableOptions};

fn build(entries: &BTreeMap<Vec<u8>, Vec<u8>>, block_size: usize, bloom: bool) -> Arc<Table> {
    let env = MemEnv::new();
    let path = Path::new("/t.sst");
    let mut b = TableBuilder::new(
        env.new_writable(path).unwrap(),
        TableBuilderOptions {
            block_size,
            bloom_bits_per_key: bloom.then_some(10),
            ..Default::default()
        },
    );
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    let props = b.finish().unwrap();
    Table::open(
        env.new_random_access(path).unwrap(),
        props.file_size,
        TableOptions {
            cmp: compare_internal_keys,
            cache: None,
            io: None,
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn prop_table_roundtrip_internal_keys(
        keys in proptest::collection::btree_set(
            (proptest::collection::vec(any::<u8>(), 1..12), 1u64..1000), 1..120),
        block_size in prop_oneof![Just(64usize), Just(256), Just(4096)],
        bloom in any::<bool>(),
    ) {
        // Distinct (user_key, seq) pairs → distinct internal keys, stored
        // in internal-key order.
        let mut entries: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut sorted: Vec<Vec<u8>> = keys
            .iter()
            .map(|(k, seq)| make_internal_key(k, *seq, ValueType::Value))
            .collect();
        sorted.sort_by(|a, b| compare_internal_keys(a, b));
        sorted.dedup();
        for (i, ik) in sorted.iter().enumerate() {
            entries.insert(ik.clone(), format!("value-{i}").into_bytes());
        }
        // BTreeMap orders by raw bytes, not internal order — rebuild in
        // internal order for the builder.
        let env = MemEnv::new();
        let path = Path::new("/t.sst");
        let mut b = TableBuilder::new(
            env.new_writable(path).unwrap(),
            TableBuilderOptions { block_size, bloom_bits_per_key: bloom.then_some(10), ..Default::default() },
        );
        for ik in &sorted {
            b.add(ik, entries.get(ik).unwrap()).unwrap();
        }
        let props = b.finish().unwrap();
        let table = Table::open(
            env.new_random_access(path).unwrap(),
            props.file_size,
            TableOptions { cmp: compare_internal_keys, cache: None, io: None },
        ).unwrap();

        // Full iteration preserves order and contents.
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        for ik in &sorted {
            prop_assert!(it.valid());
            prop_assert_eq!(it.key(), &ik[..]);
            prop_assert_eq!(it.value(), &entries.get(ik).unwrap()[..]);
            it.next().unwrap();
        }
        prop_assert!(!it.valid());

        // Exact-key gets.
        for ik in &sorted {
            let (k, v) = table.get(ik, None).unwrap().unwrap();
            prop_assert_eq!(&k, ik);
            prop_assert_eq!(&v, entries.get(ik).unwrap());
        }

        // Lower-bound seeks agree with the model for arbitrary probes.
        for (probe_key, probe_seq) in keys.iter().take(20) {
            let probe = make_internal_key(probe_key, *probe_seq, ValueType::Value);
            let expect = sorted.iter().find(|ik| compare_internal_keys(ik, &probe).is_ge());
            let got = table.get(&probe, None).unwrap();
            match expect {
                Some(ik) => {
                    let (k, _) = got.unwrap();
                    prop_assert_eq!(&k, ik);
                }
                None => prop_assert!(got.is_none()),
            }
        }
        let _ = build; // silence unused when cases shrink
    }
}
