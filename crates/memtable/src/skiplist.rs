//! A skiplist with lock-free concurrent readers and mutex-serialized
//! writers, closely following the LevelDB design: nodes are never removed
//! or mutated after insertion (except their forward pointers during
//! insert), so readers need no epoch/GC machinery — the list owns all
//! nodes until drop.

use parking_lot::Mutex;
use std::cmp::Ordering;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering as AtomicOrd};

const MAX_HEIGHT: usize = 12;
const BRANCHING: u32 = 4;

/// Ordering relation over the byte entries stored in the list.
pub trait Comparator: Send + Sync + 'static {
    /// Total order over entries.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;
}

impl<F> Comparator for F
where
    F: Fn(&[u8], &[u8]) -> Ordering + Send + Sync + 'static,
{
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        self(a, b)
    }
}

struct Node {
    entry: Box<[u8]>,
    next: [AtomicPtr<Node>; MAX_HEIGHT],
}

impl Node {
    fn new(entry: Box<[u8]>) -> *mut Node {
        Box::into_raw(Box::new(Node {
            entry,
            next: Default::default(),
        }))
    }

    fn next(&self, level: usize) -> *mut Node {
        self.next[level].load(AtomicOrd::Acquire)
    }

    fn set_next(&self, level: usize, node: *mut Node) {
        self.next[level].store(node, AtomicOrd::Release);
    }
}

/// Skiplist storing opaque byte entries under a caller-supplied order.
///
/// Readers ([`SkipListIterator`], [`SkipList::contains`], seeks) run
/// concurrently with a single inserter; inserts are serialized internally.
pub struct SkipList<C: Comparator> {
    head: *mut Node,
    cmp: C,
    max_height: AtomicUsize,
    len: AtomicUsize,
    memory: AtomicUsize,
    insert_lock: Mutex<Rand>,
}

unsafe impl<C: Comparator> Send for SkipList<C> {}
unsafe impl<C: Comparator> Sync for SkipList<C> {}

/// Tiny xorshift PRNG for height selection (deterministic, seedable).
struct Rand(u64);

impl Rand {
    fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 32) as u32
    }
}

impl<C: Comparator> SkipList<C> {
    /// Create an empty list ordered by `cmp`.
    pub fn new(cmp: C) -> Self {
        SkipList {
            head: Node::new(Box::new([])),
            cmp,
            max_height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            memory: AtomicUsize::new(0),
            insert_lock: Mutex::new(Rand(0x2545_f491_4f6c_dd1d)),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(AtomicOrd::Acquire)
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes consumed by entries plus node overhead.
    pub fn memory_usage(&self) -> usize {
        self.memory.load(AtomicOrd::Acquire)
    }

    fn random_height(rng: &mut Rand) -> usize {
        let mut h = 1;
        while h < MAX_HEIGHT && rng.next().is_multiple_of(BRANCHING) {
            h += 1;
        }
        h
    }

    /// Greater-or-equal search; fills `prev` with the predecessor at each
    /// level when provided.
    fn find_greater_or_equal(
        &self,
        key: &[u8],
        mut prev: Option<&mut [*mut Node; MAX_HEIGHT]>,
    ) -> *mut Node {
        let mut x = self.head;
        let mut level = self.max_height.load(AtomicOrd::Acquire) - 1;
        loop {
            let next = unsafe { (*x).next(level) };
            let key_is_after = !next.is_null()
                && self.cmp.compare(unsafe { &(*next).entry }, key) == Ordering::Less;
            if key_is_after {
                x = next;
            } else {
                if let Some(p) = prev.as_deref_mut() {
                    p[level] = x;
                }
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    fn find_less_than(&self, key: &[u8]) -> *mut Node {
        let mut x = self.head;
        let mut level = self.max_height.load(AtomicOrd::Acquire) - 1;
        loop {
            let next = unsafe { (*x).next(level) };
            if !next.is_null() && self.cmp.compare(unsafe { &(*next).entry }, key) == Ordering::Less
            {
                x = next;
            } else if level == 0 {
                return x;
            } else {
                level -= 1;
            }
        }
    }

    fn find_last(&self) -> *mut Node {
        let mut x = self.head;
        let mut level = self.max_height.load(AtomicOrd::Acquire) - 1;
        loop {
            let next = unsafe { (*x).next(level) };
            if !next.is_null() {
                x = next;
            } else if level == 0 {
                return x;
            } else {
                level -= 1;
            }
        }
    }

    /// Insert `entry`. Duplicate entries (equal under the comparator) are
    /// rejected with `false`; memtables never produce duplicates because
    /// every entry carries a unique sequence number.
    pub fn insert(&self, entry: &[u8]) -> bool {
        let mut rng = self.insert_lock.lock();
        let mut prev: [*mut Node; MAX_HEIGHT] = [ptr::null_mut(); MAX_HEIGHT];
        let ge = self.find_greater_or_equal(entry, Some(&mut prev));
        if !ge.is_null() && self.cmp.compare(unsafe { &(*ge).entry }, entry) == Ordering::Equal {
            return false;
        }

        let height = Self::random_height(&mut rng);
        let cur_max = self.max_height.load(AtomicOrd::Relaxed);
        if height > cur_max {
            for p in prev.iter_mut().take(height).skip(cur_max) {
                *p = self.head;
            }
            // Publishing a larger height before the new node is linked is
            // fine: the extra levels of head still point past the node.
            self.max_height.store(height, AtomicOrd::Release);
        }

        let node = Node::new(entry.to_vec().into_boxed_slice());
        for (level, &p) in prev.iter().enumerate().take(height) {
            unsafe {
                // New node first points at successor, then becomes visible.
                (*node).set_next(level, (*p).next(level));
                (*p).set_next(level, node);
            }
        }
        self.len.fetch_add(1, AtomicOrd::AcqRel);
        self.memory
            .fetch_add(entry.len() + std::mem::size_of::<Node>(), AtomicOrd::AcqRel);
        true
    }

    /// True if an entry equal to `key` exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        let x = self.find_greater_or_equal(key, None);
        !x.is_null() && self.cmp.compare(unsafe { &(*x).entry }, key) == Ordering::Equal
    }

    /// A read iterator over the list. Safe to use while inserts proceed.
    pub fn iter(&self) -> SkipListIterator<'_, C> {
        SkipListIterator {
            list: self,
            node: ptr::null_mut(),
        }
    }
}

impl<C: Comparator> Drop for SkipList<C> {
    fn drop(&mut self) {
        let mut x = self.head;
        while !x.is_null() {
            let next = unsafe { (*x).next(0) };
            drop(unsafe { Box::from_raw(x) });
            x = next;
        }
    }
}

/// Cursor over a [`SkipList`]. Positioning methods mirror LevelDB's
/// iterator contract: the cursor is invalid until positioned.
pub struct SkipListIterator<'a, C: Comparator> {
    list: &'a SkipList<C>,
    node: *mut Node,
}

// SAFETY: the raw node pointer only ever targets nodes owned by `list`,
// which outlives the iterator; nodes are immutable once published and are
// only freed when the list drops. Moving the cursor to another thread is
// therefore no different from sharing `&SkipList`.
unsafe impl<C: Comparator> Send for SkipListIterator<'_, C> {}

impl<'a, C: Comparator> SkipListIterator<'a, C> {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// The entry under the cursor.
    ///
    /// # Panics
    /// Panics if the iterator is not [`valid`](Self::valid).
    pub fn entry(&self) -> &'a [u8] {
        assert!(self.valid(), "iterator not positioned");
        unsafe { &(*self.node).entry }
    }

    /// Position at the first entry `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.node = self.list.find_greater_or_equal(key, None);
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = unsafe { (*self.list.head).next(0) };
    }

    /// Position at the last entry.
    pub fn seek_to_last(&mut self) {
        let last = self.list.find_last();
        self.node = if last == self.list.head {
            ptr::null_mut()
        } else {
            last
        };
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        assert!(self.valid(), "iterator not positioned");
        self.node = unsafe { (*self.node).next(0) };
    }

    /// Step back to the previous entry (O(log n): re-descends from head).
    pub fn prev(&mut self) {
        assert!(self.valid(), "iterator not positioned");
        let entry = unsafe { &(*self.node).entry };
        let prev = self.list.find_less_than(entry);
        self.node = if prev == self.list.head {
            ptr::null_mut()
        } else {
            prev
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[allow(clippy::type_complexity)]
    fn bytes_list() -> SkipList<fn(&[u8], &[u8]) -> Ordering> {
        SkipList::new(<[u8]>::cmp as fn(&[u8], &[u8]) -> Ordering)
    }

    #[test]
    fn empty_list() {
        let l = bytes_list();
        assert!(l.is_empty());
        assert!(!l.contains(b"x"));
        let mut it = l.iter();
        assert!(!it.valid());
        it.seek_to_first();
        assert!(!it.valid());
        it.seek_to_last();
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_lookup() {
        let l = bytes_list();
        assert!(l.insert(b"b"));
        assert!(l.insert(b"a"));
        assert!(l.insert(b"c"));
        assert!(!l.insert(b"b"), "duplicates rejected");
        assert_eq!(l.len(), 3);
        assert!(l.contains(b"a") && l.contains(b"b") && l.contains(b"c"));
        assert!(!l.contains(b"d"));
        assert!(l.memory_usage() > 3);
    }

    #[test]
    fn iteration_is_sorted() {
        let l = bytes_list();
        for k in [b"d".as_ref(), b"a".as_ref(), b"c".as_ref(), b"b".as_ref()] {
            l.insert(k);
        }
        let mut it = l.iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push(it.entry().to_vec());
            it.next();
        }
        assert_eq!(
            got,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn seek_semantics() {
        let l = bytes_list();
        for k in [&b"b"[..], &b"d"[..], &b"f"[..]] {
            l.insert(k);
        }
        let mut it = l.iter();
        it.seek(b"c");
        assert!(it.valid());
        assert_eq!(it.entry(), b"d");
        it.seek(b"d");
        assert_eq!(it.entry(), b"d");
        it.seek(b"g");
        assert!(!it.valid());
        it.seek_to_last();
        assert_eq!(it.entry(), b"f");
        it.prev();
        assert_eq!(it.entry(), b"d");
        it.prev();
        assert_eq!(it.entry(), b"b");
        it.prev();
        assert!(!it.valid());
    }

    #[test]
    fn concurrent_readers_during_inserts() {
        let l = Arc::new(bytes_list());
        let writer = {
            let l = l.clone();
            std::thread::spawn(move || {
                for i in 0..5_000u32 {
                    l.insert(&i.to_be_bytes());
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        // Sorted-order invariant must hold at every instant.
                        let mut it = l.iter();
                        it.seek_to_first();
                        let mut prev: Option<Vec<u8>> = None;
                        while it.valid() {
                            let e = it.entry().to_vec();
                            if let Some(p) = &prev {
                                assert!(p < &e, "ordering violated under concurrency");
                            }
                            prev = Some(e);
                            it.next();
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(l.len(), 5_000);
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset(keys in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..12), 0..200)) {
            use std::collections::BTreeSet;
            let l = bytes_list();
            let mut model = BTreeSet::new();
            for k in &keys {
                let fresh = model.insert(k.clone());
                prop_assert_eq!(l.insert(k), fresh);
            }
            prop_assert_eq!(l.len(), model.len());
            // Full scans agree.
            let mut it = l.iter();
            it.seek_to_first();
            for expect in &model {
                prop_assert!(it.valid());
                prop_assert_eq!(it.entry(), &expect[..]);
                it.next();
            }
            prop_assert!(!it.valid());
            // Random seeks agree with model's range lookup.
            for k in &keys {
                let mut it = l.iter();
                it.seek(k);
                let expect = model.range::<Vec<u8>, _>(k.clone()..).next();
                match expect {
                    Some(e) => { prop_assert!(it.valid()); prop_assert_eq!(it.entry(), &e[..]); }
                    None => prop_assert!(!it.valid()),
                }
            }
        }
    }
}
