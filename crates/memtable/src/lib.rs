#![warn(missing_docs)]

//! In-memory write buffer: a skiplist-backed memtable, as used by every
//! engine in this workspace (UniKV keeps the classic LevelDB memtable+WAL
//! front end; see paper §Design "Data Management").
//!
//! [`skiplist::SkipList`] is a lock-free-read skiplist: one internal mutex
//! serializes inserts (engines already serialize writes), while readers
//! traverse concurrently without locks via acquire/release atomics.

pub mod memtable;
pub mod skiplist;

pub use memtable::{LookupResult, MemTable, MemTableIterator, OwnedMemTableIterator};
pub use skiplist::SkipList;
