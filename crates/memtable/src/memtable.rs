//! The memtable: versioned KV entries in a skiplist, ordered by internal
//! key. Entry encoding matches LevelDB:
//! `varint32(ikey_len) | internal_key | varint32(value_len) | value`.

use crate::skiplist::{SkipList, SkipListIterator};
use std::cmp::Ordering;
use unikv_common::coding::{get_length_prefixed_slice, put_length_prefixed_slice};
use unikv_common::ikey::{
    compare_internal_keys, extract_seq_type, extract_user_key, make_internal_key,
};
use unikv_common::{SequenceNumber, ValueType};

/// Comparator over encoded memtable entries: decode the length-prefixed
/// internal key and apply the internal-key order.
#[derive(Clone, Copy)]
pub struct EntryComparator;

impl crate::skiplist::Comparator for EntryComparator {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        let (ka, _) = get_length_prefixed_slice(a).expect("valid memtable entry");
        let (kb, _) = get_length_prefixed_slice(b).expect("valid memtable entry");
        compare_internal_keys(ka, kb)
    }
}

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The newest visible version is a value.
    Value(Vec<u8>),
    /// The newest visible version is a tombstone — stop searching older
    /// stores and report not-found to the caller.
    Deleted,
    /// The key has no version visible at the snapshot in this memtable.
    NotFound,
}

/// A sorted in-memory buffer of versioned entries.
///
/// ```
/// use unikv_memtable::{LookupResult, MemTable};
/// use unikv_common::ValueType;
///
/// let mem = MemTable::new();
/// mem.add(1, ValueType::Value, b"k", b"old");
/// mem.add(2, ValueType::Value, b"k", b"new");
/// assert_eq!(mem.get(b"k", 2), LookupResult::Value(b"new".to_vec()));
/// assert_eq!(mem.get(b"k", 1), LookupResult::Value(b"old".to_vec()));
/// ```
pub struct MemTable {
    list: SkipList<EntryComparator>,
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        MemTable {
            list: SkipList::new(EntryComparator),
        }
    }

    /// Insert a versioned entry. `value` is ignored for deletions by
    /// convention (pass empty).
    pub fn add(&self, seq: SequenceNumber, t: ValueType, user_key: &[u8], value: &[u8]) {
        let ikey = make_internal_key(user_key, seq, t);
        let mut entry = Vec::with_capacity(ikey.len() + value.len() + 10);
        put_length_prefixed_slice(&mut entry, &ikey);
        put_length_prefixed_slice(&mut entry, value);
        let inserted = self.list.insert(&entry);
        debug_assert!(inserted, "duplicate (key, seq) inserted into memtable");
    }

    /// Look up the newest version of `user_key` visible at `snapshot`.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> LookupResult {
        let lookup = {
            let ikey = make_internal_key(user_key, snapshot, ValueType::Value);
            let mut e = Vec::with_capacity(ikey.len() + 10);
            put_length_prefixed_slice(&mut e, &ikey);
            put_length_prefixed_slice(&mut e, &[]);
            e
        };
        let mut it = self.list.iter();
        it.seek(&lookup);
        if !it.valid() {
            return LookupResult::NotFound;
        }
        let entry = it.entry();
        let (ikey, n) = get_length_prefixed_slice(entry).expect("valid memtable entry");
        if extract_user_key(ikey) != user_key {
            return LookupResult::NotFound;
        }
        let (_, t) = extract_seq_type(ikey).expect("valid internal key");
        match t {
            ValueType::Value => {
                let (v, _) = get_length_prefixed_slice(&entry[n..]).expect("valid memtable entry");
                LookupResult::Value(v.to_vec())
            }
            ValueType::Deletion => LookupResult::Deleted,
        }
    }

    /// Number of entries (versions, not distinct keys).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate heap usage in bytes; the flush trigger compares this to
    /// the configured write-buffer size.
    pub fn approximate_memory_usage(&self) -> usize {
        self.list.memory_usage()
    }

    /// Iterator over `(internal_key, value)` pairs in internal-key order.
    pub fn iter(&self) -> MemTableIterator<'_> {
        MemTableIterator {
            inner: self.list.iter(),
        }
    }
}

/// Iterator that owns a reference to its memtable, usable in merging
/// iterators that outlive the borrow scope.
///
/// Safety: the skiplist never frees or mutates published nodes until drop,
/// and the `Arc` keeps the memtable alive for the iterator's lifetime, so
/// extending the internal iterator's lifetime is sound.
pub struct OwnedMemTableIterator {
    _mem: std::sync::Arc<MemTable>,
    inner: MemTableIterator<'static>,
}

impl OwnedMemTableIterator {
    /// Create an owning iterator over `mem`.
    pub fn new(mem: std::sync::Arc<MemTable>) -> Self {
        let inner: MemTableIterator<'_> = mem.iter();
        // SAFETY: `_mem` pins the memtable (and thus every skiplist node)
        // for as long as `inner` lives; nodes are immutable once published.
        let inner: MemTableIterator<'static> = unsafe { std::mem::transmute(inner) };
        OwnedMemTableIterator { _mem: mem, inner }
    }

    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.inner.valid()
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    /// Position at the first entry with internal key `>= ikey`.
    pub fn seek(&mut self, ikey: &[u8]) {
        self.inner.seek(ikey);
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        self.inner.next();
    }

    /// The internal key under the cursor.
    pub fn ikey(&self) -> &[u8] {
        self.inner.ikey()
    }

    /// The value under the cursor.
    pub fn value(&self) -> &[u8] {
        self.inner.value()
    }
}

/// Iterator over memtable entries, exposing decoded internal key and value.
pub struct MemTableIterator<'a> {
    inner: SkipListIterator<'a, EntryComparator>,
}

impl<'a> MemTableIterator<'a> {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        self.inner.valid()
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    /// Position at the first entry with internal key `>= ikey`.
    pub fn seek(&mut self, ikey: &[u8]) {
        let mut e = Vec::with_capacity(ikey.len() + 10);
        put_length_prefixed_slice(&mut e, ikey);
        put_length_prefixed_slice(&mut e, &[]);
        self.inner.seek(&e);
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        self.inner.next();
    }

    /// The internal key under the cursor.
    pub fn ikey(&self) -> &'a [u8] {
        let (k, _) = get_length_prefixed_slice(self.inner.entry()).expect("valid entry");
        k
    }

    /// The value under the cursor.
    pub fn value(&self) -> &'a [u8] {
        let entry = self.inner.entry();
        let (_, n) = get_length_prefixed_slice(entry).expect("valid entry");
        let (v, _) = get_length_prefixed_slice(&entry[n..]).expect("valid entry");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_newest_visible_version() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(3, ValueType::Value, b"k", b"v3");
        m.add(5, ValueType::Value, b"k", b"v5");

        assert_eq!(m.get(b"k", 100), LookupResult::Value(b"v5".to_vec()));
        assert_eq!(m.get(b"k", 5), LookupResult::Value(b"v5".to_vec()));
        assert_eq!(m.get(b"k", 4), LookupResult::Value(b"v3".to_vec()));
        assert_eq!(m.get(b"k", 2), LookupResult::Value(b"v1".to_vec()));
        assert_eq!(m.get(b"k", 0), LookupResult::NotFound);
    }

    #[test]
    fn deletion_shadows_value() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 10), LookupResult::Deleted);
        assert_eq!(m.get(b"k", 1), LookupResult::Value(b"v".to_vec()));
    }

    #[test]
    fn missing_key_not_found() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"a", b"1");
        m.add(2, ValueType::Value, b"c", b"3");
        assert_eq!(m.get(b"b", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"", 10), LookupResult::NotFound);
        assert_eq!(m.get(b"z", 10), LookupResult::NotFound);
    }

    #[test]
    fn iterates_by_user_key_then_seq_desc() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"b", b"b1");
        m.add(2, ValueType::Value, b"a", b"a2");
        m.add(3, ValueType::Value, b"b", b"b3");

        let mut it = m.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            let ik = it.ikey();
            seen.push((
                extract_user_key(ik).to_vec(),
                extract_seq_type(ik).unwrap().0,
                it.value().to_vec(),
            ));
            it.next();
        }
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), 2, b"a2".to_vec()),
                (b"b".to_vec(), 3, b"b3".to_vec()),
                (b"b".to_vec(), 1, b"b1".to_vec()),
            ]
        );
    }

    #[test]
    fn seek_lands_on_newest_of_key() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"old");
        m.add(9, ValueType::Value, b"k", b"new");
        let mut it = m.iter();
        it.seek(&make_internal_key(b"k", u64::MAX >> 8, ValueType::Value));
        assert!(it.valid());
        assert_eq!(it.value(), b"new");
    }

    #[test]
    fn memory_usage_grows() {
        let m = MemTable::new();
        let before = m.approximate_memory_usage();
        m.add(1, ValueType::Value, b"key", &[0u8; 1000]);
        assert!(m.approximate_memory_usage() >= before + 1000);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn empty_value_roundtrips() {
        let m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"");
        assert_eq!(m.get(b"k", 1), LookupResult::Value(Vec::new()));
    }
}
