//! Real-filesystem [`Env`] backed by `std::fs` with buffered writers
//! (per the Rust performance guide: unbuffered file I/O is a common trap).

use crate::{Env, RandomAccessFile, SequentialFile, WritableFile};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::Result;

/// [`Env`] implementation over the host filesystem.
#[derive(Debug, Default, Clone)]
pub struct FsEnv;

impl FsEnv {
    /// Create a new filesystem environment.
    pub fn new() -> Self {
        FsEnv
    }

    /// Convenience: a shared handle.
    pub fn shared() -> Arc<FsEnv> {
        Arc::new(FsEnv)
    }
}

struct FsWritable {
    writer: BufWriter<File>,
    len: u64,
}

impl WritableFile for FsWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.writer.write_all(data)?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct FsRandomAccess {
    file: File,
    path: PathBuf,
}

impl RandomAccessFile for FsRandomAccess {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; len];
        let mut read = 0;
        while read < len {
            let n = self.file.read_at(&mut buf[read..], offset + read as u64)?;
            if n == 0 {
                break; // EOF
            }
            read += n;
        }
        buf.truncate(read);
        Ok(buf)
    }

    fn size(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn readahead(&self, _offset: u64, _len: usize) {
        // Portable builds have no posix_fadvise wrapper available from std;
        // sequential consumers get kernel readahead for free. The MemEnv
        // models explicit readahead for the scan-optimization experiments.
        let _ = &self.path;
    }
}

struct FsSequential {
    reader: BufReader<File>,
}

impl SequentialFile for FsSequential {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        Ok(self.reader.read(buf)?)
    }
}

impl Env for FsEnv {
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(FsWritable {
            writer: BufWriter::with_capacity(64 * 1024, file),
            len: 0,
        }))
    }

    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        let file = File::open(path)?;
        Ok(Arc::new(FsRandomAccess {
            file,
            path: path.to_path_buf(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        let file = File::open(path)?;
        Ok(Box::new(FsSequential {
            reader: BufReader::with_capacity(64 * 1024, file),
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn delete_file(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(PathBuf::from(entry?.file_name()));
        }
        Ok(out)
    }
}
