//! In-memory [`Env`] for fast hermetic tests. Files are byte vectors in a
//! shared map; directories are tracked explicitly so `list_dir` behaves
//! like a real filesystem.

use crate::{Env, RandomAccessFile, SequentialFile, WritableFile};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::{Error, Result};

type FileRef = Arc<Mutex<Vec<u8>>>;

#[derive(Default)]
struct State {
    files: BTreeMap<PathBuf, FileRef>,
    dirs: BTreeSet<PathBuf>,
}

/// An in-memory filesystem.
#[derive(Clone, Default)]
pub struct MemEnv {
    state: Arc<Mutex<State>>,
}

impl MemEnv {
    /// Create an empty in-memory filesystem.
    pub fn new() -> Self {
        MemEnv::default()
    }

    /// Convenience: a shared handle.
    pub fn shared() -> Arc<MemEnv> {
        Arc::new(MemEnv::new())
    }

    /// Total bytes stored across all files (used by space-usage tests).
    pub fn total_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.files.values().map(|f| f.lock().len() as u64).sum()
    }

    fn not_found(path: &Path) -> Error {
        Error::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no such file: {}", path.display()),
        ))
    }
}

struct MemWritable {
    file: FileRef,
    len: u64,
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.lock().extend_from_slice(data);
        self.len += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct MemRandomAccess {
    file: FileRef,
}

impl RandomAccessFile for MemRandomAccess {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.file.lock();
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn size(&self) -> Result<u64> {
        Ok(self.file.lock().len() as u64)
    }
}

struct MemSequential {
    file: FileRef,
    pos: usize,
}

impl SequentialFile for MemSequential {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let data = self.file.lock();
        let remaining = data.len().saturating_sub(self.pos);
        let n = remaining.min(buf.len());
        buf[..n].copy_from_slice(&data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Env for MemEnv {
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let file: FileRef = Arc::new(Mutex::new(Vec::new()));
        let mut st = self.state.lock();
        if let Some(parent) = path.parent() {
            // Match real-filesystem behaviour loosely: auto-register parents.
            st.dirs.insert(parent.to_path_buf());
        }
        st.files.insert(path.to_path_buf(), file.clone());
        Ok(Box::new(MemWritable { file, len: 0 }))
    }

    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        let st = self.state.lock();
        let file = st.files.get(path).ok_or_else(|| Self::not_found(path))?;
        Ok(Arc::new(MemRandomAccess { file: file.clone() }))
    }

    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        let st = self.state.lock();
        let file = st.files.get(path).ok_or_else(|| Self::not_found(path))?;
        Ok(Box::new(MemSequential {
            file: file.clone(),
            pos: 0,
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.state.lock().files.contains_key(path)
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        let st = self.state.lock();
        let file = st.files.get(path).ok_or_else(|| Self::not_found(path))?;
        let len = file.lock().len() as u64;
        Ok(len)
    }

    fn delete_file(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        st.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| Self::not_found(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut st = self.state.lock();
        let file = st.files.remove(from).ok_or_else(|| Self::not_found(from))?;
        st.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        let mut p = path.to_path_buf();
        loop {
            st.dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for p in st.files.keys() {
            if p.parent() == Some(path) {
                out.push(PathBuf::from(p.file_name().expect("file has a name")));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_visible_to_open_readers() {
        // Matches POSIX: a reader opened before an append sees the append.
        let env = MemEnv::new();
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"abc").unwrap();
        let r = env.new_random_access(p).unwrap();
        w.append(b"def").unwrap();
        assert_eq!(r.read_at(0, 6).unwrap(), b"abcdef");
    }

    #[test]
    fn total_bytes_counts_all_files() {
        let env = MemEnv::new();
        env.new_writable(Path::new("/a"))
            .unwrap()
            .append(&[0; 10])
            .unwrap();
        env.new_writable(Path::new("/b"))
            .unwrap()
            .append(&[0; 5])
            .unwrap();
        assert_eq!(env.total_bytes(), 15);
    }

    #[test]
    fn truncate_on_reopen() {
        let env = MemEnv::new();
        let p = Path::new("/f");
        env.new_writable(p).unwrap().append(b"xxxx").unwrap();
        let w = env.new_writable(p).unwrap(); // truncates
        assert_eq!(w.len(), 0);
        assert_eq!(env.file_size(p).unwrap(), 0);
    }
}
