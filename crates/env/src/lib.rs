#![warn(missing_docs)]

//! Environment abstraction: every byte the engines read or write flows
//! through the [`Env`] trait, so the same engine code runs against the real
//! filesystem ([`fs::FsEnv`]), an in-memory filesystem ([`mem::MemEnv`]) for
//! fast hermetic tests, and a fault-injection wrapper
//! ([`fault::FaultInjectionEnv`]) that simulates crashes by discarding
//! unsynced data — the mechanism behind the crash-consistency test suite.

pub mod fault;
pub mod fs;
pub mod mem;
pub mod metrics;

use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::Result;

/// A file opened for appending. Writers buffer internally; `sync` provides
/// the durability barrier the WAL and manifest rely on.
///
/// `Sync` is required so engines holding writers inside shared state can
/// themselves be `Sync`; it is safe because every method takes `&mut self`.
pub trait WritableFile: Send + Sync {
    /// Append bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Flush application buffers to the OS (no durability guarantee).
    fn flush(&mut self) -> Result<()>;
    /// Durably persist all appended data.
    fn sync(&mut self) -> Result<()>;
    /// Bytes appended so far.
    fn len(&self) -> u64;
    /// True if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A file supporting positional reads from multiple threads.
pub trait RandomAccessFile: Send + Sync {
    /// Read up to `len` bytes at `offset`. Returns the bytes actually read
    /// (shorter only at end of file).
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Total file size in bytes.
    fn size(&self) -> Result<u64>;
    /// Advisory readahead hint: the caller is about to read `[offset,
    /// offset+len)` sequentially. Implementations may prefetch; default no-op.
    fn readahead(&self, _offset: u64, _len: usize) {}
}

/// A file read sequentially from the start (WAL replay).
pub trait SequentialFile: Send {
    /// Read up to `buf.len()` bytes, returning the count (0 at EOF).
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;
}

/// Abstract filesystem used by every storage component.
///
/// Implementations must surface I/O failures as `Error::Io` *preserving
/// the original `io::ErrorKind`*: the engine's resilience policy
/// classifies failures via `unikv_common::Error::is_transient` (ENOSPC,
/// EAGAIN/EINTR, timeouts retry with backoff; everything else is treated
/// as permanent), so an env that collapses kinds would turn recoverable
/// episodes into quarantined jobs.
pub trait Env: Send + Sync {
    /// Create (truncating) a file for appending.
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>>;
    /// Open an existing file for positional reads.
    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>>;
    /// Open an existing file for sequential reads.
    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>>;
    /// True if `path` exists.
    fn file_exists(&self, path: &Path) -> bool;
    /// Size of the file at `path`.
    fn file_size(&self, path: &Path) -> Result<u64>;
    /// Delete the file at `path`.
    fn delete_file(&self, path: &Path) -> Result<()>;
    /// Atomically rename `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Create `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// List the file names (not full paths) directly under `path`.
    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>>;

    /// Read an entire file into memory.
    fn read_to_vec(&self, path: &Path) -> Result<Vec<u8>> {
        let f = self.new_random_access(path)?;
        let size = f.size()? as usize;
        f.read_at(0, size)
    }

    /// Write `data` to `path` and sync, replacing any existing file
    /// atomically via a temporary file + rename.
    fn write_atomic(&self, path: &Path, data: &[u8]) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.new_writable(&tmp)?;
            f.append(data)?;
            f.sync()?;
        }
        self.rename(&tmp, path)
    }
}

/// Shared handle to an environment.
pub type EnvRef = Arc<dyn Env>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    // Generic conformance suite run against both env implementations.
    fn conformance(env: &dyn Env, root: &Path) {
        env.create_dir_all(root).unwrap();
        let p = root.join("a.txt");
        {
            let mut w = env.new_writable(&p).unwrap();
            assert!(w.is_empty());
            w.append(b"hello ").unwrap();
            w.append(b"world").unwrap();
            assert_eq!(w.len(), 11);
            w.sync().unwrap();
        }
        assert!(env.file_exists(&p));
        assert_eq!(env.file_size(&p).unwrap(), 11);
        assert_eq!(env.read_to_vec(&p).unwrap(), b"hello world");

        let r = env.new_random_access(&p).unwrap();
        assert_eq!(r.read_at(6, 5).unwrap(), b"world");
        assert_eq!(r.read_at(6, 100).unwrap(), b"world"); // short read at EOF
        assert_eq!(r.size().unwrap(), 11);
        r.readahead(0, 11); // must not panic

        let mut s = env.new_sequential(&p).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");

        let q = root.join("b.txt");
        env.write_atomic(&q, b"atomic").unwrap();
        assert_eq!(env.read_to_vec(&q).unwrap(), b"atomic");

        env.rename(&q, &root.join("c.txt")).unwrap();
        assert!(!env.file_exists(&q));
        assert!(env.file_exists(&root.join("c.txt")));

        let mut names: Vec<_> = env
            .list_dir(root)
            .unwrap()
            .iter()
            .map(|n| n.to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["a.txt", "c.txt"]);

        env.delete_file(&p).unwrap();
        assert!(!env.file_exists(&p));
        assert!(env.delete_file(&p).is_err());
        assert!(env.new_random_access(&p).is_err());
    }

    #[test]
    fn mem_env_conformance() {
        let env = MemEnv::new();
        conformance(&env, Path::new("/db"));
    }

    /// `io::ErrorKind` must survive the default helpers (`write_atomic`
    /// composes append/sync/rename): transience classification at the
    /// engine layer depends on it.
    #[test]
    fn error_kinds_propagate_through_write_atomic() {
        use crate::fault::{FaultOp, FaultPlan, FaultRule};
        let env = crate::fault::FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(FaultPlan::new(1).rule(
            FaultRule::fail_times(FaultOp::Sync, 1).error_kind(std::io::ErrorKind::StorageFull),
        ));
        let err = env
            .write_atomic(Path::new("/meta"), b"payload")
            .unwrap_err();
        assert!(err.is_storage_full(), "kind lost in write_atomic: {err}");
        assert!(err.is_transient());
        env.write_atomic(Path::new("/meta"), b"payload").unwrap();
    }

    #[test]
    fn fs_env_conformance() {
        let dir = std::env::temp_dir().join(format!("unikv-env-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env = crate::fs::FsEnv::new();
        conformance(&env, &dir);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
