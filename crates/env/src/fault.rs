//! Fault-injection [`Env`] wrapper used by crash-consistency tests.
//!
//! The wrapper tracks, per file, how many bytes have been durably synced.
//! [`FaultInjectionEnv::crash`] then rolls every file back to its synced
//! prefix (deleting files that were never synced), which models a power
//! failure: everything after the last `sync` barrier is lost. A write-error
//! mode (`fail_after_appends`) additionally exercises error paths.

use crate::{Env, RandomAccessFile, SequentialFile, WritableFile};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use unikv_common::{Error, Result};

#[derive(Default)]
struct Tracking {
    /// Bytes known durable per file. Files absent from the map but present
    /// in the inner env predate this wrapper and are treated as durable.
    synced_len: HashMap<PathBuf, u64>,
    /// Files created through this wrapper since construction/last crash.
    created: HashMap<PathBuf, bool>, // value: ever synced
}

/// Env wrapper that can simulate crashes and injected write failures.
pub struct FaultInjectionEnv {
    inner: Arc<dyn Env>,
    tracking: Arc<Mutex<Tracking>>,
    /// Remaining appends before injected failure; negative = disabled.
    appends_until_failure: Arc<AtomicI64>,
}

impl FaultInjectionEnv {
    /// Wrap `inner`.
    pub fn new(inner: Arc<dyn Env>) -> Arc<Self> {
        Arc::new(FaultInjectionEnv {
            inner,
            tracking: Arc::new(Mutex::new(Tracking::default())),
            appends_until_failure: Arc::new(AtomicI64::new(-1)),
        })
    }

    /// After `n` more successful appends, every append fails with an I/O
    /// error until [`clear_failures`](Self::clear_failures) is called.
    pub fn fail_after_appends(&self, n: i64) {
        self.appends_until_failure.store(n, Ordering::SeqCst);
    }

    /// Disable injected failures.
    pub fn clear_failures(&self) {
        self.appends_until_failure.store(-1, Ordering::SeqCst);
    }

    /// Simulate a power failure: roll every tracked file back to its synced
    /// prefix and delete files never synced. Returns the affected paths.
    pub fn crash(&self) -> Result<Vec<PathBuf>> {
        let mut affected = Vec::new();
        let mut t = self.tracking.lock();
        let created = std::mem::take(&mut t.created);
        let synced: HashMap<_, _> = t.synced_len.clone();
        drop(t);

        for (path, ever_synced) in created {
            if !self.inner.file_exists(&path) {
                continue; // renamed away or deleted; its new name is tracked
            }
            let durable = if ever_synced {
                *synced.get(&path).unwrap_or(&0)
            } else {
                0
            };
            let current = self.inner.file_size(&path)?;
            if !ever_synced && durable == 0 {
                self.inner.delete_file(&path)?;
                affected.push(path);
            } else if current > durable {
                let prefix = {
                    let f = self.inner.new_random_access(&path)?;
                    f.read_at(0, durable as usize)?
                };
                let mut w = self.inner.new_writable(&path)?;
                w.append(&prefix)?;
                w.sync()?;
                affected.push(path);
            }
        }
        // After a crash the slate is clean: whatever survived is durable.
        self.tracking.lock().synced_len.clear();
        Ok(affected)
    }
}

struct TrackedWritable {
    inner: Box<dyn WritableFile>,
    path: PathBuf,
    tracking: Arc<Mutex<Tracking>>,
    appends_until_failure: Arc<AtomicI64>,
}

impl WritableFile for TrackedWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let remaining = self.appends_until_failure.load(Ordering::SeqCst);
        if remaining == 0 {
            return Err(Error::Io(std::io::Error::other("injected write failure")));
        }
        if remaining > 0 {
            self.appends_until_failure.fetch_sub(1, Ordering::SeqCst);
        }
        self.inner.append(data)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?;
        let mut t = self.tracking.lock();
        t.synced_len.insert(self.path.clone(), self.inner.len());
        if let Some(ever) = t.created.get_mut(&self.path) {
            *ever = true;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for FaultInjectionEnv {
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let inner = self.inner.new_writable(path)?;
        let mut t = self.tracking.lock();
        t.created.entry(path.to_path_buf()).or_insert(false);
        t.synced_len.insert(path.to_path_buf(), 0);
        Ok(Box::new(TrackedWritable {
            inner,
            path: path.to_path_buf(),
            tracking: self.tracking.clone(),
            appends_until_failure: self.appends_until_failure.clone(),
        }))
    }

    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        self.inner.new_random_access(path)
    }

    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        self.inner.new_sequential(path)
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn delete_file(&self, path: &Path) -> Result<()> {
        let mut t = self.tracking.lock();
        t.created.remove(path);
        t.synced_len.remove(path);
        drop(t);
        self.inner.delete_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.inner.rename(from, to)?;
        // Rename is treated as a durable metadata operation (write_atomic
        // syncs file contents before renaming).
        let mut t = self.tracking.lock();
        if let Some(len) = t.synced_len.remove(from) {
            t.synced_len.insert(to.to_path_buf(), len);
        }
        if let Some(ever) = t.created.remove(from) {
            t.created.insert(to.to_path_buf(), ever);
        }
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    #[test]
    fn crash_discards_unsynced_suffix() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/wal");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        w.append(b"-volatile").unwrap();
        drop(w);

        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"durable");
    }

    #[test]
    fn crash_deletes_never_synced_files() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/tmp-table");
        env.new_writable(p).unwrap().append(b"x").unwrap();
        env.crash().unwrap();
        assert!(!env.file_exists(p));
    }

    #[test]
    fn crash_keeps_fully_synced_files() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/t");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"all synced").unwrap();
        w.sync().unwrap();
        drop(w);
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"all synced");
    }

    #[test]
    fn rename_carries_durability() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.write_atomic(Path::new("/manifest"), b"meta").unwrap();
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(Path::new("/manifest")).unwrap(), b"meta");
    }

    #[test]
    fn injected_failures_fire_and_clear() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.fail_after_appends(2);
        let mut w = env.new_writable(Path::new("/f")).unwrap();
        w.append(b"1").unwrap();
        w.append(b"2").unwrap();
        assert!(w.append(b"3").is_err());
        env.clear_failures();
        w.append(b"4").unwrap();
    }

    #[test]
    fn second_crash_after_resync() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"a").unwrap();
        w.sync().unwrap();
        drop(w);
        env.crash().unwrap();

        // Reopen (truncating, like a fresh WAL) and write again.
        let mut w = env.new_writable(p).unwrap();
        w.append(b"bb").unwrap();
        w.sync().unwrap();
        w.append(b"ccc").unwrap();
        drop(w);
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"bb");
    }
}
