//! Fault-injection [`Env`] wrapper used by crash-consistency tests.
//!
//! Two layers of failure modelling are provided:
//!
//! 1. **Power cuts.** The wrapper tracks, per file, how many bytes have
//!    been durably synced. [`FaultInjectionEnv::crash`] then rolls every
//!    file back to its synced prefix (deleting files that were never
//!    synced), which models a power failure: everything after the last
//!    `sync` barrier is lost.
//! 2. **Scripted faults.** A deterministic, seeded [`FaultPlan`] arms
//!    [`FaultRule`]s against individual env operations: failed or torn
//!    (partial) appends, sync failures, read errors, silent bit flips on
//!    reads or writes, and rename/delete failures. Rules select operations
//!    by kind and path substring, can skip the first `n` matches, fire
//!    once, a bounded number of times ([`FaultRule::fail_times`] — a
//!    *transient* storm that clears on its own), or stick, and can fire
//!    probabilistically — all driven by one seed so a failing schedule
//!    replays exactly. Injected errors carry a configurable
//!    `io::ErrorKind` so they classify correctly under
//!    `unikv_common::Error::is_transient` (e.g. `StorageFull` for a
//!    scripted ENOSPC episode).
//!
//! The legacy `fail_after_appends` counter is kept as a shorthand for the
//! most common plan (fail every append after the next `n`).

use crate::{Env, RandomAccessFile, SequentialFile, WritableFile};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use unikv_common::rng::DetRng;
use unikv_common::{Error, Result};

/// Env operation classes a [`FaultRule`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::flush`.
    Flush,
    /// `WritableFile::sync` (a failed sync leaves the data volatile).
    Sync,
    /// `RandomAccessFile::read_at` / `SequentialFile::read`.
    Read,
    /// `Env::new_writable`.
    OpenWrite,
    /// `Env::new_random_access` / `Env::new_sequential`.
    OpenRead,
    /// `Env::rename`.
    Rename,
    /// `Env::delete_file`.
    Delete,
}

/// What happens when a [`FaultRule`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected I/O error.
    Fail,
    /// Appends only: write a strict prefix of the data, then fail — a
    /// torn write, as left by a crash mid-append.
    TornAppend,
    /// Silently flip one bit: on appends the corrupted bytes hit the
    /// disk; on reads the caller sees corrupted bytes. Models media rot.
    FlipBit,
}

/// One scripted fault: fires on the `after`-th-plus-one operation matching
/// `op` (and `path_contains`, if set), with probability `probability`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation class this rule arms.
    pub op: FaultOp,
    /// Only match paths whose string form contains this substring.
    pub path_contains: Option<String>,
    /// Skip this many matching operations before the rule can fire.
    pub after: u64,
    /// Chance of firing per eligible operation (1.0 = always).
    pub probability: f64,
    /// Disarm after the first firing (default) or keep firing.
    pub once: bool,
    /// Fire at most this many times, then disarm; `0` defers to `once`.
    /// `FaultRule::fail_times` builds bounded storms with this: fail the
    /// next `k` matching operations, then succeed.
    pub times: u64,
    /// Effect on the operation.
    pub action: FaultAction,
    /// `io::ErrorKind` carried by injected failures, so callers observe a
    /// properly *classified* error (`unikv_common::Error::is_transient`).
    /// Defaults to `ErrorKind::Other`, which classifies as permanent.
    pub kind: std::io::ErrorKind,
}

impl FaultRule {
    /// A rule that fires on the next matching operation, once.
    pub fn new(op: FaultOp, action: FaultAction) -> FaultRule {
        FaultRule {
            op,
            path_contains: None,
            after: 0,
            probability: 1.0,
            once: true,
            times: 0,
            action,
            kind: std::io::ErrorKind::Other,
        }
    }

    /// A transient storm that clears on its own: fail the next `k`
    /// matching operations, then succeed. The injected errors carry
    /// `ErrorKind::Interrupted` (EINTR) so they classify as transient;
    /// override with [`error_kind`](Self::error_kind) to model a
    /// different condition (e.g. `StorageFull` for an ENOSPC episode).
    pub fn fail_times(op: FaultOp, k: u64) -> FaultRule {
        FaultRule {
            once: false,
            times: k,
            kind: std::io::ErrorKind::Interrupted,
            ..FaultRule::new(op, FaultAction::Fail)
        }
    }

    /// Restrict the rule to paths containing `s`.
    pub fn on_path(mut self, s: &str) -> FaultRule {
        self.path_contains = Some(s.to_string());
        self
    }

    /// Skip the first `n` matching operations.
    pub fn after(mut self, n: u64) -> FaultRule {
        self.after = n;
        self
    }

    /// Fire with probability `p` per eligible operation.
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p;
        self
    }

    /// Keep firing instead of disarming after the first hit.
    pub fn sticky(mut self) -> FaultRule {
        self.once = false;
        self.times = 0;
        self
    }

    /// Tag injected errors with `kind` (see the `kind` field).
    pub fn error_kind(mut self, kind: std::io::ErrorKind) -> FaultRule {
        self.kind = kind;
        self
    }

    /// Maximum number of firings before this rule disarms.
    fn fire_limit(&self) -> u64 {
        if self.times > 0 {
            self.times
        } else if self.once {
            1
        } else {
            u64::MAX
        }
    }
}

/// A seeded, ordered set of [`FaultRule`]s. The first armed rule matching
/// an operation decides its fate; the seed drives both probabilistic
/// firing and the shape of torn writes / bit flips, so a plan replays
/// identically run after run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for probabilistic rules, torn-write lengths, and flipped bits.
    pub seed: u64,
    /// Rules, consulted in order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule.
    pub fn rule(mut self, r: FaultRule) -> FaultPlan {
        self.rules.push(r);
        self
    }
}

struct PlanState {
    rules: Vec<FaultRule>,
    /// Remaining skips per rule (mirrors `rules[i].after`).
    skips: Vec<u64>,
    /// Firings so far per rule (bounded by `FaultRule::fire_limit`).
    fires: Vec<u64>,
    rng: DetRng,
}

/// Fault-plan evaluation state shared with file wrappers.
#[derive(Default)]
struct FaultShared {
    plan: Mutex<Option<PlanState>>,
    injected: AtomicU64,
    events: Mutex<Vec<String>>,
}

impl FaultShared {
    /// If an armed rule matches `(op, path)`, fire it. Returns the action,
    /// a deterministic salt for shaping the fault, and the error kind the
    /// injected failure should carry.
    fn check(&self, op: FaultOp, path: &Path) -> Option<(FaultAction, u64, std::io::ErrorKind)> {
        let mut guard = self.plan.lock();
        let state = guard.as_mut()?;
        let mut hit = None;
        for (i, rule) in state.rules.iter().enumerate() {
            if rule.op != op {
                continue;
            }
            if let Some(ref s) = rule.path_contains {
                if !path.to_string_lossy().contains(s.as_str()) {
                    continue;
                }
            }
            if state.fires[i] >= rule.fire_limit() {
                continue;
            }
            if state.skips[i] > 0 {
                state.skips[i] -= 1;
                continue;
            }
            if rule.probability < 1.0 && state.rng.next_f64() >= rule.probability {
                continue;
            }
            hit = Some((i, rule.action, rule.kind));
            break;
        }
        let (i, action, kind) = hit?;
        state.fires[i] += 1;
        let salt = state.rng.next_u64();
        drop(guard);
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.events.lock().push(format!(
            "{:?} {:?} ({kind:?}) on {}",
            action,
            op,
            path.display()
        ));
        Some((action, salt, kind))
    }
}

fn injected_error_kind(what: &str, path: &Path, kind: std::io::ErrorKind) -> Error {
    Error::Io(std::io::Error::new(
        kind,
        format!("injected {what} failure on {}", path.display()),
    ))
}

fn injected_error(what: &str, path: &Path) -> Error {
    injected_error_kind(what, path, std::io::ErrorKind::Other)
}

#[derive(Default)]
struct Tracking {
    /// Bytes known durable per file. Files absent from the map but present
    /// in the inner env predate this wrapper and are treated as durable.
    synced_len: HashMap<PathBuf, u64>,
    /// Files created through this wrapper since construction/last crash.
    created: HashMap<PathBuf, bool>, // value: ever synced
}

/// Env wrapper that can simulate crashes and scripted fault plans.
pub struct FaultInjectionEnv {
    inner: Arc<dyn Env>,
    tracking: Arc<Mutex<Tracking>>,
    /// Remaining appends before injected failure; negative = disabled.
    appends_until_failure: Arc<AtomicI64>,
    shared: Arc<FaultShared>,
}

impl FaultInjectionEnv {
    /// Wrap `inner`.
    pub fn new(inner: Arc<dyn Env>) -> Arc<Self> {
        Arc::new(FaultInjectionEnv {
            inner,
            tracking: Arc::new(Mutex::new(Tracking::default())),
            appends_until_failure: Arc::new(AtomicI64::new(-1)),
            shared: Arc::new(FaultShared::default()),
        })
    }

    /// After `n` more successful appends, every append fails with an I/O
    /// error until [`clear_failures`](Self::clear_failures) is called.
    pub fn fail_after_appends(&self, n: i64) {
        self.appends_until_failure.store(n, Ordering::SeqCst);
    }

    /// Disable the counted-append failure mode.
    pub fn clear_failures(&self) {
        self.appends_until_failure.store(-1, Ordering::SeqCst);
    }

    /// Arm a scripted fault plan (replacing any previous plan).
    pub fn set_plan(&self, plan: FaultPlan) {
        let skips = plan.rules.iter().map(|r| r.after).collect();
        let fires = vec![0; plan.rules.len()];
        *self.shared.plan.lock() = Some(PlanState {
            skips,
            fires,
            rng: DetRng::seed_from_u64(plan.seed),
            rules: plan.rules,
        });
    }

    /// Disarm the fault plan.
    pub fn clear_plan(&self) {
        *self.shared.plan.lock() = None;
    }

    /// Total faults injected by plans since construction.
    pub fn injected_faults(&self) -> u64 {
        self.shared.injected.load(Ordering::SeqCst)
    }

    /// Human-readable log of every fault fired, in order — the replayable
    /// evidence a failing test should print alongside its seed.
    pub fn fault_events(&self) -> Vec<String> {
        self.shared.events.lock().clone()
    }

    /// Flip one bit of the byte at `offset` in `path`, in place. Models
    /// at-rest media corruption; the mutated content counts as durable (a
    /// later [`crash`](Self::crash) will not undo it).
    pub fn flip_byte(&self, path: &Path, offset: u64) -> Result<()> {
        let mut data = self.inner.read_to_vec(path)?;
        let i = offset as usize;
        if i >= data.len() {
            return Err(Error::invalid_argument("flip_byte offset out of range"));
        }
        data[i] ^= 0x01;
        let mut w = self.inner.new_writable(path)?;
        w.append(&data)?;
        w.sync()?;
        let mut t = self.tracking.lock();
        t.synced_len.insert(path.to_path_buf(), data.len() as u64);
        if let Some(ever) = t.created.get_mut(path) {
            *ever = true;
        }
        Ok(())
    }

    /// Simulate a power failure: roll every tracked file back to its synced
    /// prefix and delete files never synced. Returns the affected paths.
    pub fn crash(&self) -> Result<Vec<PathBuf>> {
        let mut affected = Vec::new();
        let mut t = self.tracking.lock();
        let created = std::mem::take(&mut t.created);
        let synced: HashMap<_, _> = t.synced_len.clone();
        drop(t);

        for (path, ever_synced) in created {
            if !self.inner.file_exists(&path) {
                continue; // renamed away or deleted; its new name is tracked
            }
            let durable = if ever_synced {
                *synced.get(&path).unwrap_or(&0)
            } else {
                0
            };
            let current = self.inner.file_size(&path)?;
            if !ever_synced && durable == 0 {
                self.inner.delete_file(&path)?;
                affected.push(path);
            } else if current > durable {
                let prefix = {
                    let f = self.inner.new_random_access(&path)?;
                    f.read_at(0, durable as usize)?
                };
                let mut w = self.inner.new_writable(&path)?;
                w.append(&prefix)?;
                w.sync()?;
                affected.push(path);
            }
        }
        // After a crash the slate is clean: whatever survived is durable.
        self.tracking.lock().synced_len.clear();
        Ok(affected)
    }
}

struct TrackedWritable {
    inner: Box<dyn WritableFile>,
    path: PathBuf,
    tracking: Arc<Mutex<Tracking>>,
    appends_until_failure: Arc<AtomicI64>,
    shared: Arc<FaultShared>,
}

impl WritableFile for TrackedWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let remaining = self.appends_until_failure.load(Ordering::SeqCst);
        if remaining == 0 {
            return Err(injected_error("write", &self.path));
        }
        if remaining > 0 {
            self.appends_until_failure.fetch_sub(1, Ordering::SeqCst);
        }
        match self.shared.check(FaultOp::Append, &self.path) {
            Some((FaultAction::Fail, _, kind)) => {
                Err(injected_error_kind("write", &self.path, kind))
            }
            Some((FaultAction::TornAppend, salt, kind)) => {
                if !data.is_empty() {
                    let keep = (salt % data.len() as u64) as usize;
                    self.inner.append(&data[..keep])?;
                }
                Err(injected_error_kind("torn write", &self.path, kind))
            }
            Some((FaultAction::FlipBit, salt, _)) => {
                if data.is_empty() {
                    return self.inner.append(data);
                }
                let mut corrupt = data.to_vec();
                let bit = salt % (corrupt.len() as u64 * 8);
                corrupt[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.inner.append(&corrupt)
            }
            None => self.inner.append(data),
        }
    }

    fn flush(&mut self) -> Result<()> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::Flush, &self.path) {
            return Err(injected_error_kind("flush", &self.path, kind));
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<()> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::Sync, &self.path) {
            // A failed fsync leaves everything since the last barrier
            // volatile: do NOT advance the synced prefix.
            return Err(injected_error_kind("sync", &self.path, kind));
        }
        self.inner.sync()?;
        let mut t = self.tracking.lock();
        t.synced_len.insert(self.path.clone(), self.inner.len());
        if let Some(ever) = t.created.get_mut(&self.path) {
            *ever = true;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultRandomAccess {
    inner: Arc<dyn RandomAccessFile>,
    path: PathBuf,
    shared: Arc<FaultShared>,
}

impl RandomAccessFile for FaultRandomAccess {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        match self.shared.check(FaultOp::Read, &self.path) {
            Some((FaultAction::Fail | FaultAction::TornAppend, _, kind)) => {
                Err(injected_error_kind("read", &self.path, kind))
            }
            Some((FaultAction::FlipBit, salt, _)) => {
                let mut data = self.inner.read_at(offset, len)?;
                if !data.is_empty() {
                    let bit = salt % (data.len() as u64 * 8);
                    data[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(data)
            }
            None => self.inner.read_at(offset, len),
        }
    }

    fn size(&self) -> Result<u64> {
        self.inner.size()
    }

    fn readahead(&self, offset: u64, len: usize) {
        self.inner.readahead(offset, len)
    }
}

struct FaultSequential {
    inner: Box<dyn SequentialFile>,
    path: PathBuf,
    shared: Arc<FaultShared>,
}

impl SequentialFile for FaultSequential {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        match self.shared.check(FaultOp::Read, &self.path) {
            Some((FaultAction::Fail | FaultAction::TornAppend, _, kind)) => {
                Err(injected_error_kind("read", &self.path, kind))
            }
            Some((FaultAction::FlipBit, salt, _)) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let bit = salt % (n as u64 * 8);
                    buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            None => self.inner.read(buf),
        }
    }
}

impl Env for FaultInjectionEnv {
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::OpenWrite, path) {
            return Err(injected_error_kind("open-for-write", path, kind));
        }
        let inner = self.inner.new_writable(path)?;
        let mut t = self.tracking.lock();
        t.created.entry(path.to_path_buf()).or_insert(false);
        t.synced_len.insert(path.to_path_buf(), 0);
        Ok(Box::new(TrackedWritable {
            inner,
            path: path.to_path_buf(),
            tracking: self.tracking.clone(),
            appends_until_failure: self.appends_until_failure.clone(),
            shared: self.shared.clone(),
        }))
    }

    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::OpenRead, path) {
            return Err(injected_error_kind("open-for-read", path, kind));
        }
        Ok(Arc::new(FaultRandomAccess {
            inner: self.inner.new_random_access(path)?,
            path: path.to_path_buf(),
            shared: self.shared.clone(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::OpenRead, path) {
            return Err(injected_error_kind("open-for-read", path, kind));
        }
        Ok(Box::new(FaultSequential {
            inner: self.inner.new_sequential(path)?,
            path: path.to_path_buf(),
            shared: self.shared.clone(),
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn delete_file(&self, path: &Path) -> Result<()> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::Delete, path) {
            return Err(injected_error_kind("delete", path, kind));
        }
        let mut t = self.tracking.lock();
        t.created.remove(path);
        t.synced_len.remove(path);
        drop(t);
        self.inner.delete_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        if let Some((_, _, kind)) = self.shared.check(FaultOp::Rename, from) {
            return Err(injected_error_kind("rename", from, kind));
        }
        self.inner.rename(from, to)?;
        // Rename is treated as a durable metadata operation (write_atomic
        // syncs file contents before renaming).
        let mut t = self.tracking.lock();
        if let Some(len) = t.synced_len.remove(from) {
            t.synced_len.insert(to.to_path_buf(), len);
        }
        if let Some(ever) = t.created.remove(from) {
            t.created.insert(to.to_path_buf(), ever);
        }
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    #[test]
    fn crash_discards_unsynced_suffix() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/wal");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        w.append(b"-volatile").unwrap();
        drop(w);

        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"durable");
    }

    #[test]
    fn crash_deletes_never_synced_files() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/tmp-table");
        env.new_writable(p).unwrap().append(b"x").unwrap();
        env.crash().unwrap();
        assert!(!env.file_exists(p));
    }

    #[test]
    fn crash_keeps_fully_synced_files() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/t");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"all synced").unwrap();
        w.sync().unwrap();
        drop(w);
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"all synced");
    }

    #[test]
    fn rename_carries_durability() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.write_atomic(Path::new("/manifest"), b"meta").unwrap();
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(Path::new("/manifest")).unwrap(), b"meta");
    }

    #[test]
    fn injected_failures_fire_and_clear() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.fail_after_appends(2);
        let mut w = env.new_writable(Path::new("/f")).unwrap();
        w.append(b"1").unwrap();
        w.append(b"2").unwrap();
        assert!(w.append(b"3").is_err());
        env.clear_failures();
        w.append(b"4").unwrap();
    }

    #[test]
    fn second_crash_after_resync() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"a").unwrap();
        w.sync().unwrap();
        drop(w);
        env.crash().unwrap();

        // Reopen (truncating, like a fresh WAL) and write again.
        let mut w = env.new_writable(p).unwrap();
        w.append(b"bb").unwrap();
        w.sync().unwrap();
        w.append(b"ccc").unwrap();
        drop(w);
        env.crash().unwrap();
        assert_eq!(env.read_to_vec(p).unwrap(), b"bb");
    }

    #[test]
    fn plan_torn_append_writes_strict_prefix() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(
            FaultPlan::new(7).rule(FaultRule::new(FaultOp::Append, FaultAction::TornAppend)),
        );
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        assert!(w.append(b"0123456789").is_err());
        let written = env.read_to_vec(p).unwrap();
        assert!(written.len() < 10, "torn append must be a strict prefix");
        assert_eq!(&written[..], &b"0123456789"[..written.len()]);
        // Rule was once-only: the retry succeeds.
        w.append(b"retry").unwrap();
        assert_eq!(env.injected_faults(), 1);
        assert_eq!(env.fault_events().len(), 1);
    }

    #[test]
    fn plan_sync_failure_leaves_data_volatile() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(FaultPlan::new(1).rule(FaultRule::new(FaultOp::Sync, FaultAction::Fail)));
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"data").unwrap();
        assert!(w.sync().is_err());
        drop(w);
        env.crash().unwrap();
        // Never successfully synced: the crash removes the file.
        assert!(!env.file_exists(p));
    }

    #[test]
    fn plan_read_bit_flip_corrupts_exactly_one_bit() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(&[0u8; 64]).unwrap();
        w.sync().unwrap();
        drop(w);

        env.set_plan(FaultPlan::new(3).rule(FaultRule::new(FaultOp::Read, FaultAction::FlipBit)));
        let r = env.new_random_access(p).unwrap();
        let corrupt = r.read_at(0, 64).unwrap();
        let ones: u32 = corrupt.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        // Once-only: a second read is clean.
        assert!(r.read_at(0, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn plan_rules_filter_by_path_and_skip_count() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(
            FaultPlan::new(5).rule(
                FaultRule::new(FaultOp::Append, FaultAction::Fail)
                    .on_path(".wal")
                    .after(1),
            ),
        );
        let mut other = env.new_writable(Path::new("/x.sst")).unwrap();
        other.append(b"unaffected").unwrap();
        let mut w = env.new_writable(Path::new("/000001.wal")).unwrap();
        w.append(b"first matching append passes").unwrap();
        assert!(w.append(b"second fails").is_err());
    }

    #[test]
    fn plan_rename_and_delete_failures() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(b"x").unwrap();
        w.sync().unwrap();
        drop(w);
        env.set_plan(
            FaultPlan::new(2)
                .rule(FaultRule::new(FaultOp::Rename, FaultAction::Fail))
                .rule(FaultRule::new(FaultOp::Delete, FaultAction::Fail)),
        );
        assert!(env.rename(p, Path::new("/g")).is_err());
        assert!(env.delete_file(p).is_err());
        // Both rules disarmed; the operations now succeed.
        env.rename(p, Path::new("/g")).unwrap();
        env.delete_file(Path::new("/g")).unwrap();
    }

    #[test]
    fn plan_probabilistic_rule_is_deterministic_per_seed() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let env = FaultInjectionEnv::new(MemEnv::shared());
            env.set_plan(
                FaultPlan::new(seed).rule(
                    FaultRule::new(FaultOp::Append, FaultAction::Fail)
                        .with_probability(0.3)
                        .sticky(),
                ),
            );
            let mut w = env.new_writable(Path::new("/f")).unwrap();
            (0..64).map(|_| w.append(b"x").is_err()).collect()
        };
        let a = fire_pattern(42);
        assert_eq!(a, fire_pattern(42), "same seed must replay identically");
        assert!(a.iter().any(|&f| f), "some appends should fail");
        assert!(!a.iter().all(|&f| f), "some appends should succeed");
        assert_ne!(a, fire_pattern(43), "different seed, different schedule");
    }

    #[test]
    fn fail_times_rule_fails_exactly_k_then_succeeds() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(FaultPlan::new(9).rule(FaultRule::fail_times(FaultOp::Append, 3)));
        let mut w = env.new_writable(Path::new("/f")).unwrap();
        for i in 0..3 {
            let err = w.append(b"x").unwrap_err();
            // The storm is transient by default: EINTR-class errors.
            assert!(err.is_transient(), "fault {i} should classify transient");
        }
        // Budget exhausted: the storm has cleared.
        w.append(b"x").unwrap();
        w.append(b"x").unwrap();
        assert_eq!(env.injected_faults(), 3);
    }

    #[test]
    fn error_kind_tags_injected_errors() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        env.set_plan(FaultPlan::new(4).rule(
            FaultRule::fail_times(FaultOp::Sync, 1).error_kind(std::io::ErrorKind::StorageFull),
        ));
        let mut w = env.new_writable(Path::new("/f")).unwrap();
        w.append(b"x").unwrap();
        let err = w.sync().unwrap_err();
        assert!(err.is_storage_full(), "expected ENOSPC-class error: {err}");
        assert!(err.is_transient());
        // Untagged rules stay permanent (ErrorKind::Other).
        env.set_plan(FaultPlan::new(4).rule(FaultRule::new(FaultOp::Sync, FaultAction::Fail)));
        let err = w.sync().unwrap_err();
        assert!(!err.is_transient(), "default injected errors are permanent");
    }

    #[test]
    fn flip_byte_is_durable_across_crash() {
        let env = FaultInjectionEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(&[0u8; 8]).unwrap();
        w.sync().unwrap();
        drop(w);
        env.flip_byte(p, 3).unwrap();
        env.crash().unwrap();
        let data = env.read_to_vec(p).unwrap();
        assert_eq!(data[3], 0x01);
        assert!(data.iter().enumerate().all(|(i, &b)| (i == 3) == (b != 0)));
    }
}
