//! I/O accounting wrapper: counts bytes read and written through an env.
//!
//! The amplification experiment (paper §I/O Cost Analysis) divides device
//! bytes by user bytes; wrapping the engine's env with [`CountingEnv`]
//! yields the device side without touching engine code.

use crate::{Env, RandomAccessFile, SequentialFile, WritableFile};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unikv_common::Result;

/// Byte counters shared by a [`CountingEnv`] and its caller.
#[derive(Debug, Default)]
pub struct IoCounters {
    read: AtomicU64,
    written: AtomicU64,
}

impl IoCounters {
    /// Bytes read through the env so far.
    pub fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }

    /// Bytes written through the env so far.
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    ///
    /// Note: `bytes_read()` / `bytes_written()` followed by `reset()` is
    /// racy — bytes accounted by concurrent I/O between the read and the
    /// store are silently lost. Phase-boundary accounting (e.g. the
    /// amplification experiment) must use [`IoCounters::snapshot_and_reset`]
    /// instead.
    pub fn reset(&self) {
        self.read.store(0, Ordering::Relaxed);
        self.written.store(0, Ordering::Relaxed);
    }

    /// Atomically take `(bytes_read, bytes_written)` and zero the
    /// counters, so no concurrent increment is ever dropped: every byte
    /// lands either in the returned snapshot or in the next one.
    pub fn snapshot_and_reset(&self) -> (u64, u64) {
        (
            self.read.swap(0, Ordering::AcqRel),
            self.written.swap(0, Ordering::AcqRel),
        )
    }
}

/// Env wrapper that counts all bytes flowing through it.
pub struct CountingEnv {
    inner: Arc<dyn Env>,
    counters: Arc<IoCounters>,
}

impl CountingEnv {
    /// Wrap `inner`.
    pub fn new(inner: Arc<dyn Env>) -> Arc<Self> {
        Arc::new(CountingEnv {
            inner,
            counters: Arc::new(IoCounters::default()),
        })
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<IoCounters> {
        self.counters.clone()
    }
}

struct CountingWritable {
    inner: Box<dyn WritableFile>,
    counters: Arc<IoCounters>,
}

impl WritableFile for CountingWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.counters
            .written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.append(data)
    }
    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct CountingRandomAccess {
    inner: Arc<dyn RandomAccessFile>,
    counters: Arc<IoCounters>,
}

impl RandomAccessFile for CountingRandomAccess {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.inner.read_at(offset, len)?;
        self.counters
            .read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }
    fn size(&self) -> Result<u64> {
        self.inner.size()
    }
    fn readahead(&self, offset: u64, len: usize) {
        self.inner.readahead(offset, len)
    }
}

struct CountingSequential {
    inner: Box<dyn SequentialFile>,
    counters: Arc<IoCounters>,
}

impl SequentialFile for CountingSequential {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        self.counters.read.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Env for CountingEnv {
    fn new_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        Ok(Box::new(CountingWritable {
            inner: self.inner.new_writable(path)?,
            counters: self.counters.clone(),
        }))
    }

    fn new_random_access(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        Ok(Arc::new(CountingRandomAccess {
            inner: self.inner.new_random_access(path)?,
            counters: self.counters.clone(),
        }))
    }

    fn new_sequential(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        Ok(Box::new(CountingSequential {
            inner: self.inner.new_sequential(path)?,
            counters: self.counters.clone(),
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.inner.file_exists(path)
    }
    fn file_size(&self, path: &Path) -> Result<u64> {
        self.inner.file_size(path)
    }
    fn delete_file(&self, path: &Path) -> Result<()> {
        self.inner.delete_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.inner.rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.inner.create_dir_all(path)
    }
    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEnv;

    #[test]
    fn counts_reads_and_writes() {
        let env = CountingEnv::new(MemEnv::shared());
        let counters = env.counters();
        let p = Path::new("/f");
        let mut w = env.new_writable(p).unwrap();
        w.append(&[0u8; 100]).unwrap();
        w.sync().unwrap();
        assert_eq!(counters.bytes_written(), 100);

        let r = env.new_random_access(p).unwrap();
        r.read_at(0, 40).unwrap();
        assert_eq!(counters.bytes_read(), 40);

        let mut s = env.new_sequential(p).unwrap();
        let mut buf = [0u8; 25];
        s.read(&mut buf).unwrap();
        assert_eq!(counters.bytes_read(), 65);

        counters.reset();
        assert_eq!(counters.bytes_read(), 0);
        assert_eq!(counters.bytes_written(), 0);
    }

    /// Two threads: one keeps writing through the env, the other keeps
    /// draining the counters with `snapshot_and_reset`. Every byte must
    /// land in exactly one snapshot (or the final residue) — the old
    /// `bytes_written()`-then-`reset()` pattern loses bytes here.
    #[test]
    fn snapshot_and_reset_loses_nothing_under_concurrency() {
        let env = CountingEnv::new(MemEnv::shared());
        let counters = env.counters();
        const WRITES: u64 = 20_000;
        const CHUNK: u64 = 7;

        let writer = {
            let env = env.clone();
            std::thread::spawn(move || {
                let mut w = env.new_writable(Path::new("/race")).unwrap();
                for _ in 0..WRITES {
                    w.append(&[0u8; CHUNK as usize]).unwrap();
                }
            })
        };

        let mut drained = 0u64;
        while !writer.is_finished() {
            drained += counters.snapshot_and_reset().1;
        }
        writer.join().unwrap();
        drained += counters.snapshot_and_reset().1;

        assert_eq!(drained, WRITES * CHUNK);
        assert_eq!(counters.bytes_written(), 0);
    }

    #[test]
    fn short_reads_counted_accurately() {
        let env = CountingEnv::new(MemEnv::shared());
        let p = Path::new("/f");
        env.new_writable(p).unwrap().append(&[1u8; 10]).unwrap();
        let r = env.new_random_access(p).unwrap();
        r.read_at(5, 100).unwrap(); // only 5 available
        assert_eq!(env.counters().bytes_read(), 5);
    }
}
