//! Offline stand-in for the `crossbeam` crate. Only `crossbeam::channel`
//! is provided — an MPMC channel (both `Sender` and `Receiver` clone)
//! built on a mutex-guarded deque with condition variables.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signaled when a message arrives or all senders disconnect.
        recv_cv: Condvar,
        /// Signaled when capacity frees up or all receivers disconnect.
        send_cv: Condvar,
        cap: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.send_cv.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or the channel
        /// disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.send_cv.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.recv_cv.wait(inner).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.send_cv.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.send_cv.notify_all();
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Create a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a channel holding at most `cap` queued messages.
    ///
    /// Unlike real crossbeam, `cap = 0` is treated as capacity 1 rather
    /// than a rendezvous channel; the workspace never relies on rendezvous
    /// semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..400u64).map(|i| (i / 100) * 100 + i % 100).sum());
    }
}
