//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;

/// Generates values of an associated type from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Blanket impl so strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy over [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! strategy_tuples {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuples! {
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}
