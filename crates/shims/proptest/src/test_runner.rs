//! Case execution: config, deterministic RNG, and failure reporting.

/// Controls how many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A deterministic xoshiro256** RNG, seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a 64-bit value via SplitMix64 (never all-zero state).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive a stable seed from a test name (FNV-1a), honoring
    /// `PROPTEST_SEED` when set so failures can be varied or pinned.
    pub fn seed_for(name: &str) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xcbf2_9ce4_8422_2325);
        let mut h = base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Run `f` for each case with a per-test deterministic RNG.
pub fn run_cases(cfg: &ProptestConfig, name: &str, mut f: impl FnMut(&mut TestRng, u32)) {
    let mut rng = TestRng::seed_for(name);
    for case in 0..cfg.cases {
        f(&mut rng, case);
    }
}

/// Prints the generated inputs of a case if it panics (poor man's
/// shrinking: at least the failing inputs are visible).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    desc: String,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard describing the current case.
    pub fn new(name: &'static str, case: u32, desc: String) -> CaseGuard {
        CaseGuard {
            name,
            case,
            desc,
            armed: true,
        }
    }

    /// The case finished cleanly; do not report.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest case failed: {} (case #{})\ninputs:\n{}",
                self.name, self.case, self.desc
            );
        }
    }
}
