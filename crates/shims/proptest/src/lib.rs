//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the subset of
//! proptest's API its tests use is re-implemented here: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`boxed`, `any::<T>()`, `Just`,
//! ranges as strategies, weighted [`prop_oneof!`], and the collection
//! strategies (`vec`, `btree_set`, `btree_map`).
//!
//! Differences from real proptest, deliberate at this scale:
//!
//! * **No shrinking.** A failing case prints its generated inputs (via a
//!   drop guard) and panics; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name, so runs are reproducible without a persistence file.
//! * `prop_assert*` macros are plain `assert*` (they panic rather than
//!   returning `Err`), which is indistinguishable for these tests.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
///
/// Real proptest rejects the case and draws a replacement; this shim
/// simply returns from the case early, which costs one case's worth of
/// coverage and nothing else.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Choose among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&($cfg), stringify!($name), |__rng, __case| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let mut __desc = ::std::string::String::new();
                $(__desc.push_str(&::std::format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg));)+
                let __guard =
                    $crate::test_runner::CaseGuard::new(stringify!($name), __case, __desc);
                $body
                __guard.disarm();
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..7, b in 10u64..1000, f in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&a));
            prop_assert!((10..1000).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (any::<u8>(), 1usize..4).prop_map(|(x, n)| vec![x; n])) {
            prop_assert!(!pair.is_empty() && pair.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(crate::collection::vec(any::<u8>(), 1..6), 1..10),
            m in crate::collection::btree_map(any::<u64>(), any::<bool>(), 0..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert!(m.len() < 4);
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::seed_for("deterministic");
            crate::collection::vec(any::<u64>(), 5..6).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
