//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};

/// A size bound for generated collections (`usize`, `a..b`, or `a..=b`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a size bound.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`. Duplicate draws are retried a bounded
/// number of times, so tiny element domains may yield fewer than the
/// requested elements (mirroring proptest's best-effort behavior).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < 4 * n + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Strategy for `BTreeMap<K, V>`; sized like [`btree_set`].
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < n && attempts < 4 * n + 16 {
            out.insert(self.keys.generate(rng), self.values.generate(rng));
            attempts += 1;
        }
        out
    }
}
