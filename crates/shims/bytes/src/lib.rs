//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! reference-counted immutable byte buffer. Only the subset used by this
//! workspace is provided.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(&b[..], b"hello world");
        assert_eq!(b.len(), 11);
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], b"or");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_allocation() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b.data.as_ptr(), c.data.as_ptr());
    }
}
