//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! subset of the `parking_lot` API the workspace uses is re-implemented
//! here on top of `std::sync`. Semantic differences from the real crate:
//! poisoning is ignored (a panic while holding a lock does not poison it
//! for other threads, matching parking_lot behavior), and fairness /
//! eventual-fairness guarantees are whatever `std::sync` provides.

use std::sync::PoisonError;

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable usable with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait: reports whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the owned guard behind `&mut`, restoring the result in place.
///
/// `std::sync::Condvar::wait` consumes the guard while parking_lot's takes
/// `&mut`; this adapter bridges the two. The `ManuallyDrop` dance is safe
/// because the guard is always replaced before the borrow ends, and a panic
/// inside `f` (i.e. inside std's wait) aborts the process via the unwind
/// across `take`'s invariant anyway — std's wait only panics on poison,
/// which `into_inner` recovery prevents.
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let owned = std::ptr::read(slot);
        let replacement = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(owned)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, replacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
