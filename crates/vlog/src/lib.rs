#![warn(missing_docs)]

//! Value logs for partial KV separation (paper §Partial KV separation).
//!
//! Each partition owns a set of numbered, append-only log files. When keys
//! merge from the UnsortedStore into the SortedStore, their values are
//! appended here and the SortedStore keeps `<partition, logNumber, offset,
//! length>` pointers. GC rewrites the live values of selected logs into a
//! fresh log and deletes the old files.
//!
//! Record format: `varint32(len) | value | fixed32(masked crc of value)`.
//! The pointer's `offset` addresses the record start and `length` the value
//! payload, so a read can cross-check both framing and checksum.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use unikv_common::coding::{get_varint32, put_varint32, varint64_length};
use unikv_common::metrics::Counter;
use unikv_common::perf::{self, PerfStage};
use unikv_common::{crc32c, Error, Result, ValuePointer};
use unikv_env::{Env, RandomAccessFile, WritableFile};

/// File-name suffix for value logs.
pub const VLOG_SUFFIX: &str = "vlog";

/// Build the file name of log `number`.
pub fn vlog_file_name(number: u64) -> String {
    format!("{number:06}.{VLOG_SUFFIX}")
}

/// Parse a value-log file name back to its number.
pub fn parse_vlog_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{VLOG_SUFFIX}"))?;
    stem.parse().ok()
}

/// Read and verify one value record at `offset` in a log file, expecting a
/// value of `expected_len` bytes. Used both by [`ValueLog::read`] and by
/// cross-partition pointer resolution after a split (children reading a
/// parent's shared logs).
pub fn read_value_record(
    file: &dyn RandomAccessFile,
    offset: u64,
    expected_len: u32,
) -> Result<Vec<u8>> {
    // Record = varint32 len (<=5 bytes) + value + 4-byte crc.
    let header_max = 5usize;
    let want = header_max + expected_len as usize + 4;
    let data = file.read_at(offset, want)?;
    let (len, n) = get_varint32(&data)?;
    if len != expected_len {
        return Err(Error::corruption(format!(
            "vlog length mismatch: pointer says {expected_len}, record says {len}"
        )));
    }
    let end = n + len as usize;
    if data.len() < end + 4 {
        return Err(Error::corruption("vlog record truncated"));
    }
    let value = &data[n..end];
    let stored = u32::from_le_bytes(data[end..end + 4].try_into().expect("4 bytes"));
    if crc32c::unmask(stored) != crc32c::value(value) {
        return Err(Error::corruption("vlog value crc mismatch"));
    }
    perf::count_vlog_fetch();
    perf::mark(PerfStage::VlogFetch);
    Ok(value.to_vec())
}

/// Walk every record in the value-log file at `path`, verifying framing
/// and checksums front to back (offline scrub; `dbtool verify`). Returns
/// the record count on success; the first damaged record yields
/// [`Error::Corruption`] naming its offset.
pub fn verify_vlog_file(env: &dyn Env, path: &Path) -> Result<u64> {
    let size = env.file_size(path)?;
    let file = env.new_random_access(path)?;
    let mut offset = 0u64;
    let mut records = 0u64;
    while offset < size {
        let header = file.read_at(offset, 5.min((size - offset) as usize))?;
        let (len, n) = get_varint32(&header).map_err(|_| {
            Error::corruption(format!("vlog record header unreadable at offset {offset}"))
        })?;
        let end = offset + n as u64 + u64::from(len) + 4;
        if end > size {
            return Err(Error::corruption(format!(
                "vlog record at offset {offset} overruns the file"
            )));
        }
        read_value_record(file.as_ref(), offset, len)
            .map_err(|e| Error::corruption(format!("vlog record at offset {offset}: {e}")))?;
        offset = end;
        records += 1;
    }
    Ok(records)
}

struct ActiveLog {
    number: u64,
    file: Box<dyn WritableFile>,
}

/// The set of value-log files belonging to one partition.
///
/// ```
/// use unikv_vlog::ValueLog;
/// use unikv_env::mem::MemEnv;
///
/// let mut vlog = ValueLog::open(MemEnv::shared(), "/p0", 0, 1 << 20).unwrap();
/// let ptr = vlog.append(b"payload").unwrap();
/// vlog.sync().unwrap();
/// assert_eq!(vlog.read(&ptr).unwrap(), b"payload");
/// ```
pub struct ValueLog {
    env: Arc<dyn Env>,
    dir: PathBuf,
    partition: u32,
    max_log_size: u64,
    active: Option<ActiveLog>,
    next_number: u64,
    /// Size per sealed/active log file.
    sizes: HashMap<u64, u64>,
    readers: Mutex<HashMap<u64, Arc<dyn RandomAccessFile>>>,
    metrics: Option<VlogMetrics>,
}

/// Registry-backed value-log counters, shared by every partition's log.
#[derive(Clone)]
pub struct VlogMetrics {
    /// Values appended.
    pub appends: Counter,
    /// Value payload bytes appended (excludes length prefix and CRC).
    pub append_bytes: Counter,
    /// Log-file rotations.
    pub rotations: Counter,
}

impl VlogMetrics {
    /// Register the value-log families in `registry`.
    pub fn new(registry: &unikv_common::metrics::MetricsRegistry) -> VlogMetrics {
        VlogMetrics {
            appends: registry.counter("vlog_appends"),
            append_bytes: registry.counter("vlog_append_bytes"),
            rotations: registry.counter("vlog_rotations"),
        }
    }
}

impl ValueLog {
    /// Open (or create) the value-log set in `dir`. Existing `*.vlog`
    /// files are discovered and become readable immediately.
    pub fn open(
        env: Arc<dyn Env>,
        dir: impl Into<PathBuf>,
        partition: u32,
        max_log_size: u64,
    ) -> Result<ValueLog> {
        let dir = dir.into();
        env.create_dir_all(&dir)?;
        let mut sizes = HashMap::new();
        let mut next_number = 1;
        for name in env.list_dir(&dir)? {
            if let Some(n) = name.to_str().and_then(parse_vlog_file_name) {
                sizes.insert(n, env.file_size(&dir.join(name))?);
                next_number = next_number.max(n + 1);
            }
        }
        Ok(ValueLog {
            env,
            dir,
            partition,
            max_log_size,
            active: None,
            next_number,
            sizes,
            readers: Mutex::new(HashMap::new()),
            metrics: None,
        })
    }

    /// Attach value-log counters (builder-style; tests skip it).
    pub fn set_metrics(&mut self, metrics: VlogMetrics) {
        self.metrics = Some(metrics);
    }

    /// Partition id stamped into pointers.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    fn log_path(&self, number: u64) -> PathBuf {
        self.dir.join(vlog_file_name(number))
    }

    /// Force subsequent appends into a brand-new log file; returns its
    /// number. Used by GC and by partition splits to segregate rewrites.
    pub fn rotate(&mut self) -> Result<u64> {
        if let Some(active) = &mut self.active {
            active.file.sync()?;
        }
        self.active = None;
        let number = self.next_number;
        self.next_number += 1;
        let file = self.env.new_writable(&self.log_path(number))?;
        self.sizes.insert(number, 0);
        self.active = Some(ActiveLog { number, file });
        if let Some(m) = &self.metrics {
            m.rotations.inc();
        }
        Ok(number)
    }

    /// Append `value`, returning its pointer. Rotates to a new log when the
    /// active one exceeds the size limit.
    pub fn append(&mut self, value: &[u8]) -> Result<ValuePointer> {
        let needs_rotation = match &self.active {
            None => true,
            Some(a) => a.file.len() >= self.max_log_size,
        };
        if needs_rotation {
            self.rotate()?;
        }
        let active = self.active.as_mut().expect("rotated above");
        let offset = active.file.len();
        let mut buf = Vec::with_capacity(value.len() + varint64_length(value.len() as u64) + 4);
        put_varint32(&mut buf, value.len() as u32);
        buf.extend_from_slice(value);
        buf.extend_from_slice(&crc32c::mask(crc32c::value(value)).to_le_bytes());
        active.file.append(&buf)?;
        *self.sizes.get_mut(&active.number).expect("tracked") = active.file.len();
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.append_bytes.add(value.len() as u64);
        }
        // Invalidate any cached reader snapshot for the active log so reads
        // opened before this append still see it (MemEnv shares state, but
        // FsEnv readers see appended data too; cache stays valid).
        Ok(ValuePointer {
            partition: self.partition,
            log_number: active.number,
            offset,
            length: value.len() as u32,
        })
    }

    /// Durably sync the active log.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(active) = &mut self.active {
            active.file.sync()?;
        }
        Ok(())
    }

    fn reader(&self, number: u64) -> Result<Arc<dyn RandomAccessFile>> {
        let mut readers = self.readers.lock();
        if let Some(r) = readers.get(&number) {
            return Ok(r.clone());
        }
        let r = self.env.new_random_access(&self.log_path(number))?;
        readers.insert(number, r.clone());
        Ok(r)
    }

    /// Read the value addressed by `ptr`. The pointer's partition field is
    /// not checked here: after a split, children legitimately read from a
    /// parent's logs through their own [`ValueLog`] handle.
    pub fn read(&self, ptr: &ValuePointer) -> Result<Vec<u8>> {
        let reader = self.reader(ptr.log_number)?;
        read_value_record(reader.as_ref(), ptr.offset, ptr.length)
    }

    /// Issue a readahead hint covering `ptr` (scan optimization: prefetch
    /// values before the parallel fetch, paper §Scan Optimization).
    pub fn readahead(&self, ptr: &ValuePointer) {
        if let Ok(reader) = self.reader(ptr.log_number) {
            reader.readahead(ptr.offset, ptr.length as usize + 9);
        }
    }

    /// Numbers of all live logs, ascending.
    pub fn log_numbers(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.sizes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Size of one log file.
    pub fn log_size(&self, number: u64) -> Option<u64> {
        self.sizes.get(&number).copied()
    }

    /// Total bytes across all logs.
    pub fn total_size(&self) -> u64 {
        self.sizes.values().sum()
    }

    /// Number of the log currently receiving appends, if any.
    pub fn active_log(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.number)
    }

    /// Delete the given log files (post-GC). Deleting the active log seals
    /// it first. Missing files are an error.
    pub fn delete_logs(&mut self, numbers: &[u64]) -> Result<()> {
        for &n in numbers {
            if self.active.as_ref().is_some_and(|a| a.number == n) {
                self.active = None;
            }
            self.readers.lock().remove(&n);
            self.sizes.remove(&n);
            self.env.delete_file(&self.log_path(n))?;
        }
        Ok(())
    }

    /// Directory holding the logs.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unikv_env::mem::MemEnv;

    fn new_vlog(env: &Arc<MemEnv>, max: u64) -> ValueLog {
        ValueLog::open(env.clone(), "/p0/vlog", 7, max).unwrap()
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(vlog_file_name(42), "000042.vlog");
        assert_eq!(parse_vlog_file_name("000042.vlog"), Some(42));
        assert_eq!(parse_vlog_file_name("junk"), None);
        assert_eq!(parse_vlog_file_name("x.vlog"), None);
    }

    #[test]
    fn append_read_roundtrip() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 1 << 20);
        let values: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("value-{i}").repeat(i as usize % 7 + 1).into_bytes())
            .collect();
        let ptrs: Vec<ValuePointer> = values.iter().map(|v| vl.append(v).unwrap()).collect();
        vl.sync().unwrap();
        for (v, p) in values.iter().zip(&ptrs) {
            assert_eq!(p.partition, 7);
            assert_eq!(&vl.read(p).unwrap(), v);
            vl.readahead(p);
        }
    }

    #[test]
    fn rotation_bounds_log_size() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 256);
        for _ in 0..100 {
            vl.append(&[9u8; 64]).unwrap();
        }
        let logs = vl.log_numbers();
        assert!(logs.len() > 10, "expected many rotated logs, got {logs:?}");
        for &n in &logs {
            // Each log holds at most ~(max + one record) bytes.
            assert!(vl.log_size(n).unwrap() <= 256 + 64 + 9);
        }
        assert_eq!(
            vl.total_size(),
            logs.iter().map(|&n| vl.log_size(n).unwrap()).sum::<u64>()
        );
    }

    #[test]
    fn delete_logs_removes_files() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 64);
        let mut ptrs = Vec::new();
        for i in 0..20u8 {
            ptrs.push(vl.append(&[i; 32]).unwrap());
        }
        let logs = vl.log_numbers();
        let (victims, survivors) = logs.split_at(logs.len() / 2);
        vl.delete_logs(victims).unwrap();
        assert_eq!(vl.log_numbers(), survivors);
        // Pointers into deleted logs now fail; survivors still read.
        for p in &ptrs {
            let ok = vl.read(p).is_ok();
            assert_eq!(ok, survivors.contains(&p.log_number));
        }
    }

    #[test]
    fn reopen_recovers_existing_logs() {
        let env = MemEnv::shared();
        let (ptrs, values): (Vec<_>, Vec<_>) = {
            let mut vl = new_vlog(&env, 128);
            let values: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 40]).collect();
            let ptrs: Vec<_> = values.iter().map(|v| vl.append(v).unwrap()).collect();
            vl.sync().unwrap();
            (ptrs, values)
        };
        let mut vl2 = new_vlog(&env, 128);
        for (p, v) in ptrs.iter().zip(&values) {
            assert_eq!(&vl2.read(p).unwrap(), v);
        }
        // New appends go to a fresh number beyond recovered ones.
        let before = vl2.log_numbers().len();
        let p = vl2.append(b"new").unwrap();
        assert!(vl2.log_numbers().len() == before + 1);
        assert_eq!(vl2.read(&p).unwrap(), b"new");
    }

    #[test]
    fn corruption_detected() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 1 << 20);
        let p = vl.append(b"precious").unwrap();
        vl.sync().unwrap();
        // Corrupt the payload byte under the pointer.
        let path = std::path::Path::new("/p0/vlog").join(vlog_file_name(p.log_number));
        let mut data = env.read_to_vec(&path).unwrap();
        data[p.offset as usize + 2] ^= 0x1;
        let mut w = env.new_writable(&path).unwrap();
        w.append(&data).unwrap();
        drop(w);
        // Drop the cached reader by reopening the set.
        let vl2 = new_vlog(&env, 1 << 20);
        assert!(vl2.read(&p).unwrap_err().is_corruption());
        // Length mismatch also detected.
        let bad = ValuePointer {
            length: p.length + 1,
            ..p
        };
        assert!(vl2.read(&bad).is_err());
    }

    #[test]
    fn verify_walks_clean_log_and_flags_damage() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 1 << 20);
        let ptrs: Vec<ValuePointer> = (0..10u8).map(|i| vl.append(&[i; 20]).unwrap()).collect();
        vl.sync().unwrap();
        let path = std::path::Path::new("/p0/vlog").join(vlog_file_name(ptrs[0].log_number));
        assert_eq!(verify_vlog_file(env.as_ref(), &path).unwrap(), 10);

        // Flip one payload byte: verify must localize the damage.
        let mut data = env.read_to_vec(&path).unwrap();
        data[ptrs[4].offset as usize + 3] ^= 0x80;
        let mut w = env.new_writable(&path).unwrap();
        w.append(&data).unwrap();
        drop(w);
        let err = verify_vlog_file(env.as_ref(), &path).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        assert!(err.to_string().contains(&ptrs[4].offset.to_string()));

        // Truncate mid-record: overrun detected.
        let mut w = env.new_writable(&path).unwrap();
        w.append(&data[..ptrs[9].offset as usize + 2]).unwrap();
        drop(w);
        assert!(verify_vlog_file(env.as_ref(), &path)
            .unwrap_err()
            .is_corruption());
    }

    #[test]
    fn empty_value_roundtrip() {
        let env = MemEnv::shared();
        let mut vl = new_vlog(&env, 1 << 20);
        let p = vl.append(b"").unwrap();
        assert_eq!(vl.read(&p).unwrap(), Vec::<u8>::new());
    }
}
