//! Value pointers for partial KV separation.
//!
//! When keys migrate from the UnsortedStore to the SortedStore, their values
//! move to an append-only value log and the SortedStore stores a pointer in
//! place of the value. The paper's pointer carries four attributes:
//! `<partition, logNumber, offset, length>`.
//!
//! On disk a SortedStore entry's value slot is either an inline value or an
//! encoded pointer; the 1-byte discriminator in [`SeparatedValue`]
//! distinguishes the two.

use crate::coding::{get_varint32, get_varint64, put_varint32, put_varint64};
use crate::error::{Error, Result};

/// Location of a value inside a partition's value log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValuePointer {
    /// Owning partition id at the time the value was written. After a
    /// partition split, children may still reference the parent's logs via
    /// the parent's id until lazy GC rewrites them.
    pub partition: u32,
    /// Value-log file number within the partition.
    pub log_number: u64,
    /// Byte offset of the value record in the log file.
    pub offset: u64,
    /// Length of the value payload in bytes.
    pub length: u32,
}

impl ValuePointer {
    /// Encode into `dst` (varint-packed; 4–24 bytes typical).
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint32(dst, self.partition);
        put_varint64(dst, self.log_number);
        put_varint64(dst, self.offset);
        put_varint32(dst, self.length);
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        self.encode_to(&mut v);
        v
    }

    /// Decode from `src`, returning the pointer and bytes consumed.
    pub fn decode_from(src: &[u8]) -> Result<(ValuePointer, usize)> {
        let (partition, n1) = get_varint32(src)?;
        let (log_number, n2) = get_varint64(&src[n1..])?;
        let (offset, n3) = get_varint64(&src[n1 + n2..])?;
        let (length, n4) = get_varint32(&src[n1 + n2 + n3..])?;
        Ok((
            ValuePointer {
                partition,
                log_number,
                offset,
                length,
            },
            n1 + n2 + n3 + n4,
        ))
    }
}

/// Discriminated value slot for SortedStore entries: inline bytes or a
/// pointer into a value log (partial KV separation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeparatedValue {
    /// Value stored inline with the key.
    Inline(Vec<u8>),
    /// Value lives in a log file; the slot stores its address.
    Pointer(ValuePointer),
}

const TAG_INLINE: u8 = 0;
const TAG_POINTER: u8 = 1;

impl SeparatedValue {
    /// Encode the slot (1-byte tag + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        match self {
            SeparatedValue::Inline(data) => {
                v.push(TAG_INLINE);
                v.extend_from_slice(data);
            }
            SeparatedValue::Pointer(p) => {
                v.push(TAG_POINTER);
                p.encode_to(&mut v);
            }
        }
        v
    }

    /// Decode a slot produced by [`SeparatedValue::encode`].
    pub fn decode(src: &[u8]) -> Result<SeparatedValue> {
        let (&tag, rest) = src
            .split_first()
            .ok_or_else(|| Error::corruption("empty value slot"))?;
        match tag {
            TAG_INLINE => Ok(SeparatedValue::Inline(rest.to_vec())),
            TAG_POINTER => {
                let (p, n) = ValuePointer::decode_from(rest)?;
                if n != rest.len() {
                    return Err(Error::corruption("trailing bytes after value pointer"));
                }
                Ok(SeparatedValue::Pointer(p))
            }
            other => Err(Error::corruption(format!("bad value slot tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pointer_roundtrip() {
        let p = ValuePointer {
            partition: 3,
            log_number: 17,
            offset: 123_456_789,
            length: 1024,
        };
        let enc = p.encode();
        let (got, n) = ValuePointer::decode_from(&enc).unwrap();
        assert_eq!(got, p);
        assert_eq!(n, enc.len());
    }

    #[test]
    fn pointer_truncated_is_error() {
        let enc = ValuePointer {
            partition: 1,
            log_number: 300,
            offset: 70_000,
            length: 9,
        }
        .encode();
        for cut in 0..enc.len() {
            assert!(ValuePointer::decode_from(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn separated_value_roundtrip() {
        let inline = SeparatedValue::Inline(b"hello".to_vec());
        assert_eq!(SeparatedValue::decode(&inline.encode()).unwrap(), inline);

        let ptr = SeparatedValue::Pointer(ValuePointer {
            partition: 0,
            log_number: 1,
            offset: 2,
            length: 3,
        });
        assert_eq!(SeparatedValue::decode(&ptr.encode()).unwrap(), ptr);
    }

    #[test]
    fn separated_value_rejects_bad_tag_and_trailing() {
        assert!(SeparatedValue::decode(&[]).is_err());
        assert!(SeparatedValue::decode(&[9, 1, 2]).is_err());
        let mut enc = SeparatedValue::Pointer(ValuePointer {
            partition: 0,
            log_number: 1,
            offset: 2,
            length: 3,
        })
        .encode();
        enc.push(0); // trailing garbage after pointer
        assert!(SeparatedValue::decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn prop_pointer_roundtrip(partition in any::<u32>(), log_number in any::<u64>(),
                                  offset in any::<u64>(), length in any::<u32>()) {
            let p = ValuePointer { partition, log_number, offset, length };
            let enc = p.encode();
            let (got, n) = ValuePointer::decode_from(&enc).unwrap();
            prop_assert_eq!(got, p);
            prop_assert_eq!(n, enc.len());
        }

        #[test]
        fn prop_inline_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let sv = SeparatedValue::Inline(data);
            prop_assert_eq!(SeparatedValue::decode(&sv.encode()).unwrap(), sv);
        }
    }
}
