//! Error and result types shared across the workspace.

use std::fmt;

/// Unified result alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by storage operations.
///
/// The variants mirror the failure classes a LevelDB-lineage store
/// distinguishes: not-found (control flow for reads), corruption (checksum
/// or format violations, with context), invalid argument / configuration,
/// and I/O errors propagated from the environment.
#[derive(Debug)]
pub enum Error {
    /// Key (or file) does not exist. Used for read control flow.
    NotFound,
    /// On-disk data failed validation. Carries a human-readable context.
    Corruption(String),
    /// Caller misuse: bad option values, out-of-range parameters, etc.
    InvalidArgument(String),
    /// An I/O error from the underlying environment.
    Io(std::io::Error),
    /// Internal invariant violated (e.g. manifest references a missing file).
    Internal(String),
}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for internal errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// True if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// True if this error is [`Error::Corruption`].
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Error::NotFound.to_string(), "not found");
        assert_eq!(
            Error::corruption("bad crc").to_string(),
            "corruption: bad crc"
        );
        assert_eq!(
            Error::invalid_argument("x").to_string(),
            "invalid argument: x"
        );
        assert_eq!(Error::internal("y").to_string(), "internal error: y");
    }

    #[test]
    fn predicates() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::NotFound.is_corruption());
        assert!(Error::corruption("z").is_corruption());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: Error = std::io::Error::other("disk on fire").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
