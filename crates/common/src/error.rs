//! Error and result types shared across the workspace.

use std::fmt;

/// Unified result alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by storage operations.
///
/// The variants mirror the failure classes a LevelDB-lineage store
/// distinguishes: not-found (control flow for reads), corruption (checksum
/// or format violations, with context), invalid argument / configuration,
/// and I/O errors propagated from the environment.
#[derive(Debug)]
pub enum Error {
    /// Key (or file) does not exist. Used for read control flow.
    NotFound,
    /// On-disk data failed validation. Carries a human-readable context.
    Corruption(String),
    /// Caller misuse: bad option values, out-of-range parameters, etc.
    InvalidArgument(String),
    /// An I/O error from the underlying environment.
    Io(std::io::Error),
    /// Internal invariant violated (e.g. manifest references a missing file).
    Internal(String),
    /// The database currently rejects writes (degraded health, e.g. disk
    /// full or a quarantined flush with sealed memtables backed up) but
    /// keeps serving reads and scans. The condition clears on its own when
    /// background maintenance recovers, so callers may retry later.
    ReadOnly(String),
}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for internal errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Convenience constructor for read-only rejections.
    pub fn read_only(msg: impl Into<String>) -> Self {
        Error::ReadOnly(msg.into())
    }

    /// True if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// True if this error is [`Error::Corruption`].
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// True if this error is [`Error::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        matches!(self, Error::ReadOnly(_))
    }

    /// Transience taxonomy: `true` means the condition that produced this
    /// error can clear on its own, so retrying the *same* operation later
    /// is reasonable (ENOSPC after space frees, EAGAIN/EINTR, timeouts,
    /// contended resources, and read-only degradation that heals).
    /// Corruption, invalid arguments, internal invariant violations, and
    /// not-found are permanent: retrying cannot change the outcome.
    ///
    /// The maintenance scheduler keys its retry/quarantine policy off
    /// this classification, and the fault-injection env tags injected
    /// errors with an `io::ErrorKind` specifically so tests can script
    /// transient storms (see `FaultRule::fail_times`).
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                ErrorKind::StorageFull          // ENOSPC
                    | ErrorKind::QuotaExceeded  // EDQUOT
                    | ErrorKind::WouldBlock     // EAGAIN
                    | ErrorKind::Interrupted    // EINTR
                    | ErrorKind::TimedOut
                    | ErrorKind::ResourceBusy
            ),
            Error::ReadOnly(_) => true,
            Error::NotFound
            | Error::Corruption(_)
            | Error::InvalidArgument(_)
            | Error::Internal(_) => false,
        }
    }

    /// True for I/O errors that signal the device is out of space
    /// (ENOSPC/EDQUOT). The health watchdog treats these specially: the
    /// database goes read-only while retrying instead of letting further
    /// ingest make the shortage worse.
    pub fn is_storage_full(&self) -> bool {
        matches!(
            self,
            Error::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::StorageFull | std::io::ErrorKind::QuotaExceeded
            )
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
            Error::ReadOnly(msg) => write!(f, "database is read-only: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Error::NotFound.to_string(), "not found");
        assert_eq!(
            Error::corruption("bad crc").to_string(),
            "corruption: bad crc"
        );
        assert_eq!(
            Error::invalid_argument("x").to_string(),
            "invalid argument: x"
        );
        assert_eq!(Error::internal("y").to_string(), "internal error: y");
    }

    #[test]
    fn predicates() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::NotFound.is_corruption());
        assert!(Error::corruption("z").is_corruption());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: Error = std::io::Error::other("disk on fire").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn read_only_display_and_predicate() {
        let e = Error::read_only("flush backlog");
        assert_eq!(e.to_string(), "database is read-only: flush backlog");
        assert!(e.is_read_only());
        assert!(!Error::NotFound.is_read_only());
    }

    /// The full classification table: every variant, plus representative
    /// `io::ErrorKind`s on both sides of the transient line.
    #[test]
    fn transience_classification_table() {
        use std::io::ErrorKind;
        let io = |kind: ErrorKind| Error::Io(std::io::Error::new(kind, "injected"));

        // Transient: conditions that clear on their own.
        for e in [
            io(ErrorKind::StorageFull), // ENOSPC — disk can free up
            io(ErrorKind::QuotaExceeded),
            io(ErrorKind::WouldBlock),  // EAGAIN
            io(ErrorKind::Interrupted), // EINTR
            io(ErrorKind::TimedOut),
            io(ErrorKind::ResourceBusy),
            Error::read_only("temporarily degraded"),
        ] {
            assert!(e.is_transient(), "expected transient: {e}");
        }

        // Permanent: retrying cannot change the outcome.
        for e in [
            io(ErrorKind::NotFound),
            io(ErrorKind::PermissionDenied),
            io(ErrorKind::InvalidData),
            io(ErrorKind::UnexpectedEof),
            io(ErrorKind::Other),
            Error::Io(std::io::Error::other("free-form io error")),
            Error::NotFound,
            Error::corruption("bad crc"),
            Error::invalid_argument("bad option"),
            Error::internal("invariant violated"),
        ] {
            assert!(!e.is_transient(), "expected permanent: {e}");
        }
    }

    #[test]
    fn storage_full_watchdog_predicate() {
        use std::io::ErrorKind;
        let full = Error::Io(std::io::Error::new(ErrorKind::StorageFull, "enospc"));
        assert!(full.is_storage_full());
        assert!(full.is_transient());
        let eintr = Error::Io(std::io::Error::new(ErrorKind::Interrupted, "eintr"));
        assert!(!eintr.is_storage_full());
        assert!(!Error::internal("x").is_storage_full());
    }
}
