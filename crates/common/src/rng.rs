//! Deterministic pseudo-random number generation.
//!
//! The workspace builds without crates.io, so instead of `rand` the
//! workload generators and tests use this small, fully deterministic
//! pair of generators:
//!
//! * [`SplitMix64`] — a tiny 64-bit-state generator, used directly for
//!   hashing-style mixing and to expand a user seed into the larger
//!   xoshiro state (the construction its authors recommend).
//! * [`Xoshiro256StarStar`] — xoshiro256\*\*, the general-purpose
//!   generator; 256 bits of state, passes BigCrush, and is more than
//!   adequate for workload synthesis.
//!
//! Both are stable across platforms and releases: a given seed always
//! produces the same stream, which experiments rely on for
//! reproducibility.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer/generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed; every seed (including 0) is valid.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64_mix(self.state)
    }
}

/// The SplitMix64 finalizer: a strong stateless 64-bit mix function.
#[inline]
pub fn splitmix64_mix(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256\*\* (Blackman & Vigna): the workspace's general-purpose
/// deterministic RNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The conventional name used at call sites.
pub type DetRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seed by expanding `seed` through [`SplitMix64`], which guarantees
    /// a non-zero state for every input.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[range.start, range.end)`. Uses Lemire's
    /// multiply-shift reduction; the tiny modulo bias (< 2⁻⁶⁴ · span)
    /// is irrelevant for workload synthesis.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform `usize` in the inclusive range.
    pub fn usize_in_incl(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo + self.u64_in(0..(hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism across constructions.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let stream = |seed| {
            let mut r = DetRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43));
    }

    #[test]
    fn unit_floats_in_bounds() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.u64_in(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "range not covered: {seen:?}");
        for _ in 0..1_000 {
            let v = r.usize_in_incl(3..=3);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = DetRng::seed_from_u64(11);
        let n = 100_000;
        let mut buckets = [0u32; 8];
        for _ in 0..n {
            buckets[r.u64_in(0..8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for b in buckets {
            assert!(
                (b as f64 - expect).abs() / expect < 0.05,
                "bucket skew: {buckets:?}"
            );
        }
    }
}
