//! Byte-level integer encodings: little-endian fixed width and LEB128-style
//! varints, matching the formats LevelDB-lineage stores use on disk.
//!
//! Encoders append to a `Vec<u8>`; decoders read from a slice and return the
//! decoded value plus how many bytes were consumed (or advance a cursor).

use crate::error::{Error, Result};

/// Maximum encoded length of a varint32.
pub const MAX_VARINT32_LEN: usize = 5;
/// Maximum encoded length of a varint64.
pub const MAX_VARINT64_LEN: usize = 10;

/// Append a little-endian u32.
#[inline]
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
#[inline]
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a little-endian u32 from the first 4 bytes of `src`.
///
/// # Panics
/// Panics if `src` is shorter than 4 bytes; use [`try_decode_fixed32`] for
/// untrusted input.
#[inline]
pub fn decode_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("fixed32 needs 4 bytes"))
}

/// Decode a little-endian u64 from the first 8 bytes of `src`.
///
/// # Panics
/// Panics if `src` is shorter than 8 bytes; use [`try_decode_fixed64`] for
/// untrusted input.
#[inline]
pub fn decode_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("fixed64 needs 8 bytes"))
}

/// Fallible fixed32 decode for untrusted input.
#[inline]
pub fn try_decode_fixed32(src: &[u8]) -> Result<u32> {
    if src.len() < 4 {
        return Err(Error::corruption("truncated fixed32"));
    }
    Ok(decode_fixed32(src))
}

/// Fallible fixed64 decode for untrusted input.
#[inline]
pub fn try_decode_fixed64(src: &[u8]) -> Result<u64> {
    if src.len() < 8 {
        return Err(Error::corruption("truncated fixed64"));
    }
    Ok(decode_fixed64(src))
}

/// Append a varint-encoded u32.
#[inline]
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Append a varint-encoded u64 (7 bits per byte, MSB = continuation).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decode a varint u64 from `src`, returning `(value, bytes_consumed)`.
pub fn get_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate() {
        if shift >= 64 {
            break;
        }
        if b < 0x80 {
            // Final byte: reject bits that would overflow 64.
            let part = b as u64;
            if shift == 63 && part > 1 {
                return Err(Error::corruption("varint64 overflow"));
            }
            result |= part << shift;
            return Ok((result, i + 1));
        }
        result |= ((b & 0x7f) as u64) << shift;
        shift += 7;
    }
    Err(Error::corruption("truncated or overlong varint64"))
}

/// Decode a varint u32 from `src`, returning `(value, bytes_consumed)`.
pub fn get_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    u32::try_from(v)
        .map(|v32| (v32, n))
        .map_err(|_| Error::corruption("varint32 overflow"))
}

/// Append a length-prefixed byte string (varint32 length + bytes).
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, s: &[u8]) {
    put_varint32(dst, s.len() as u32);
    dst.extend_from_slice(s);
}

/// Read a length-prefixed byte string, returning `(slice, bytes_consumed)`.
pub fn get_length_prefixed_slice(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    Ok((&src[n..n + len], n + len))
}

/// Number of bytes `put_varint64` would emit for `v`.
#[inline]
pub fn varint64_length(v: u64) -> usize {
    // 1 + floor(bits/7); bits==0 still takes one byte.
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdeadbeef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(decode_fixed32(&buf[..4]), 0xdeadbeef);
        assert_eq!(decode_fixed64(&buf[4..]), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn try_decode_rejects_short_input() {
        assert!(try_decode_fixed32(&[1, 2, 3]).is_err());
        assert!(try_decode_fixed64(&[0; 7]).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint64_length(v), "length for {v}");
            let (got, n) = get_varint64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(get_varint64(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn varint_overflow_is_error() {
        // 10 continuation bytes followed by a large final byte exceeds 64 bits.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(get_varint64(&buf).is_err());
    }

    #[test]
    fn varint32_rejects_64bit_values() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u32::MAX as u64 + 1);
        assert!(get_varint32(&buf).is_err());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        put_length_prefixed_slice(&mut buf, b"");
        let (s1, n1) = get_length_prefixed_slice(&buf).unwrap();
        assert_eq!(s1, b"hello");
        let (s2, n2) = get_length_prefixed_slice(&buf[n1..]).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn length_prefixed_truncated_is_error() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        assert!(get_length_prefixed_slice(&buf[..3]).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint64_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (got, n) = get_varint64(&buf).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(n, buf.len());
            prop_assert!(buf.len() <= MAX_VARINT64_LEN);
        }

        #[test]
        fn prop_varint32_roundtrip(v in any::<u32>()) {
            let mut buf = Vec::new();
            put_varint32(&mut buf, v);
            let (got, n) = get_varint32(&buf).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(n, buf.len());
            prop_assert!(buf.len() <= MAX_VARINT32_LEN);
        }

        #[test]
        fn prop_length_prefixed_roundtrip(s in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut buf = Vec::new();
            put_length_prefixed_slice(&mut buf, &s);
            let (got, n) = get_length_prefixed_slice(&buf).unwrap();
            prop_assert_eq!(got, &s[..]);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_varint_ordering_of_concatenation(a in any::<u64>(), b in any::<u64>()) {
            // Two varints back to back decode independently.
            let mut buf = Vec::new();
            put_varint64(&mut buf, a);
            put_varint64(&mut buf, b);
            let (ga, na) = get_varint64(&buf).unwrap();
            let (gb, nb) = get_varint64(&buf[na..]).unwrap();
            prop_assert_eq!(ga, a);
            prop_assert_eq!(gb, b);
            prop_assert_eq!(na + nb, buf.len());
        }
    }
}
