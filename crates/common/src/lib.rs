#![warn(missing_docs)]

//! Shared foundation for the UniKV reproduction workspace.
//!
//! This crate holds the vocabulary types every other crate speaks:
//! errors, byte-level encodings, checksums, hash functions, internal key
//! encoding, and the value-pointer format used by partial KV separation.
//!
//! Nothing in here performs I/O; it is pure, allocation-conscious code with
//! property-tested round-trips.

pub mod coding;
pub mod crc32c;
pub mod error;
pub mod events;
pub mod hash;
pub mod ikey;
pub mod keyrange;
pub mod metrics;
pub mod perf;
pub mod pointer;
pub mod rng;

pub use error::{Error, Result};
pub use ikey::{InternalKey, SequenceNumber, ValueType, MAX_SEQUENCE_NUMBER};
pub use keyrange::KeyRange;
pub use pointer::ValuePointer;
