//! Hash functions used by the hash index, Bloom filters, and sharding.
//!
//! UniKV's two-level hash index needs a family of independent hash
//! functions: `h_1..h_n` choose candidate buckets (cuckoo-style) and
//! `h_{n+1}` produces the 2-byte `keyTag` stored in each index entry.
//! We derive the family from one 64-bit mixer with distinct seeds, which is
//! standard practice and preserves the paper's collision behaviour.

/// A fast 64-bit hash of `data` with a caller-chosen `seed`.
///
/// FNV-1a accumulation followed by a xorshift-multiply finalizer
/// (splitmix64-style), giving good avalanche for short keys — the common
/// case for KV workloads.
pub fn hash64(data: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Finalize (splitmix64 tail).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Seeds for the hash family used by the two-level index.
///
/// `FAMILY[0..n]` select candidate buckets; `TAG_SEED` produces keyTags.
pub const FAMILY: [u64; 4] = [
    0x1f3d_5b79_9b5d_3f1b,
    0x2e4c_6a8a_a86a_4c2e,
    0x3b59_77bb_bb77_593b,
    0x4866_84cc_cc84_6648,
];

/// Seed for the keyTag hash (`h_{n+1}` in the paper).
pub const TAG_SEED: u64 = 0x57a6_91dd_dd91_a657;

/// Candidate-bucket hash `h_i(key)` for `i` in `0..FAMILY.len()`.
#[inline]
pub fn bucket_hash(key: &[u8], i: usize) -> u64 {
    hash64(key, FAMILY[i])
}

/// The 2-byte keyTag stored in hash-index entries: the top 16 bits of
/// `h_{n+1}(key)` as in the paper.
#[inline]
pub fn key_tag(key: &[u8]) -> u16 {
    (hash64(key, TAG_SEED) >> 48) as u16
}

/// 32-bit hash used by Bloom filters and LRU shard selection.
#[inline]
pub fn hash32(data: &[u8], seed: u32) -> u32 {
    hash64(data, seed as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"key", 1), hash64(b"key", 1));
        assert_ne!(hash64(b"key", 1), hash64(b"key", 2));
        assert_ne!(hash64(b"key1", 1), hash64(b"key2", 1));
    }

    #[test]
    fn family_members_are_independent_enough() {
        // Different family seeds should disagree on bucket choice for a
        // decent fraction of keys (this is what makes cuckoo insertion work).
        let n = 10_000u64;
        let buckets = 1024u64;
        let mut same = 0;
        for i in 0..n {
            let k = i.to_be_bytes();
            if bucket_hash(&k, 0) % buckets == bucket_hash(&k, 1) % buckets {
                same += 1;
            }
        }
        // Expected collision rate is 1/1024 ≈ 10 of 10_000; allow slack.
        assert!(same < 100, "family hashes too correlated: {same}");
    }

    #[test]
    fn tag_distribution_is_wide() {
        let tags: HashSet<u16> = (0..10_000u64).map(|i| key_tag(&i.to_be_bytes())).collect();
        // With 65536 possible tags and 10k keys, expect thousands distinct.
        assert!(tags.len() > 8_000, "only {} distinct tags", tags.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let a = hash64(&[], 0);
        let b = hash64(&[], 1);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn prop_hash_is_pure(data in proptest::collection::vec(any::<u8>(), 0..64), seed in any::<u64>()) {
            prop_assert_eq!(hash64(&data, seed), hash64(&data, seed));
        }

        #[test]
        fn prop_avalanche_on_append(data in proptest::collection::vec(any::<u8>(), 0..64), b in any::<u8>()) {
            let mut longer = data.clone();
            longer.push(b);
            prop_assert_ne!(hash64(&data, 7), hash64(&longer, 7));
        }
    }
}
