//! CRC32C (Castagnoli polynomial) with the LevelDB masking scheme.
//!
//! A slicing-by-4 software implementation: fast enough for the block sizes
//! used here (4–32 KiB) without any architecture-specific code. The mask
//! guards against recursive checksumming: storing a CRC next to the data it
//! covers and then checksumming the combination would otherwise be fragile.

const POLY: u32 = 0x82f6_3b78; // reflected Castagnoli

/// Lookup tables for slicing-by-4, built at compile time.
const TABLES: [[u32; 256]; 4] = build_tables();

const fn build_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Compute the CRC32C of `data` starting from an existing crc state.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        crc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = TABLES[3][(crc & 0xff) as usize]
            ^ TABLES[2][((crc >> 8) & 0xff) as usize]
            ^ TABLES[1][((crc >> 16) & 0xff) as usize]
            ^ TABLES[0][(crc >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Compute the CRC32C of `data` from scratch.
#[inline]
pub fn value(data: &[u8]) -> u32 {
    extend(0, data)
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Return a masked representation of `crc`, suitable for storing alongside
/// the data it covers.
#[inline]
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Invert [`mask`].
#[inline]
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(value(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(value(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(value(&ascending), 0x46dd_794e);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(value(&descending), 0x113f_db5c);
        assert_eq!(value(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_equals_concat() {
        let a = b"hello ";
        let b = b"world";
        let whole = value(b"hello world");
        let split = extend(value(a), b);
        assert_eq!(whole, split);
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        assert_ne!(value(b"a"), value(b"foo"));
        assert_ne!(value(b"foo"), value(b"bar"));
    }

    #[test]
    fn mask_roundtrip_and_changes_value() {
        let crc = value(b"foo");
        assert_ne!(crc, mask(crc));
        assert_ne!(crc, mask(mask(crc)));
        assert_eq!(crc, unmask(mask(crc)));
        assert_eq!(crc, unmask(unmask(mask(mask(crc)))));
    }

    proptest! {
        #[test]
        fn prop_mask_roundtrip(crc in any::<u32>()) {
            prop_assert_eq!(unmask(mask(crc)), crc);
        }

        #[test]
        fn prop_extend_concat(a in proptest::collection::vec(any::<u8>(), 0..256),
                              b in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut ab = a.clone();
            ab.extend_from_slice(&b);
            prop_assert_eq!(value(&ab), extend(value(&a), &b));
        }

        #[test]
        fn prop_single_bit_flip_detected(data in proptest::collection::vec(any::<u8>(), 1..128),
                                         bit in 0usize..1024) {
            let mut flipped = data.clone();
            let bit = bit % (data.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(value(&data), value(&flipped));
        }
    }
}
