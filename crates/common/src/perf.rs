//! Opt-in, thread-local per-operation performance profiling.
//!
//! Aggregate histograms (see [`crate::metrics`]) answer *how much*; this
//! module answers *why was this one operation slow*. A profiled operation
//! activates a thread-local profiler for its duration; instrumented code
//! throughout the workspace ([`mark`] / count hooks in the core read and
//! write paths, the SSTable reader, the value log, and the WAL) attributes
//! wall time and I/O counts to named stages. The result is a
//! [`PerfContext`]: per-stage microseconds and hit counts plus probe/IO
//! counters for one operation.
//!
//! Two properties are load-bearing:
//!
//! * **Zero cost when inactive.** Every hook first reads one thread-local
//!   flag and returns; no clock read, no allocation. An unprofiled run is
//!   byte-identical to a build without the hooks.
//! * **Exact accounting under the injectable clock.** Profiling is
//!   *mark-based*: [`begin_at`] receives the operation's own start
//!   reading, each [`mark`] reads the clock once and charges the elapsed
//!   time since the previous mark to its stage, and [`finish_at`] receives
//!   the operation's end reading, charging the residual to
//!   [`PerfStage::Other`]. Stage sums therefore equal `t1 - t0` — the
//!   exact duration the operation's latency histogram records — even
//!   under [`crate::metrics::manual_step_clock`], where every clock
//!   reading advances time.

use crate::metrics::MetricsRegistry;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Stages a profiled operation's time is attributed to. Shared by every
/// engine in the workspace so cross-engine breakdowns are comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerfStage {
    /// Routing the key to its range partition.
    Router,
    /// Waiting in a write stall (slowdown sleep or stop wait).
    StallWait,
    /// Appending the record to the write-ahead log.
    WalAppend,
    /// Waiting for a WAL sync to reach stable storage.
    WalSync,
    /// Memtable insert (writes) or memtable-chain lookup (reads).
    Memtable,
    /// Probing the UnsortedStore two-level hash index.
    IndexProbe,
    /// Binary search over SortedStore boundary keys.
    BoundarySearch,
    /// SSTable block reads (including block-cache hits).
    BlockRead,
    /// Fetching a separated value from the value log.
    VlogFetch,
    /// Anything not covered by a named stage (residual).
    Other,
}

/// Number of profiling stages.
pub const PERF_STAGE_COUNT: usize = 10;

impl PerfStage {
    /// Every stage, in display order.
    pub const ALL: [PerfStage; PERF_STAGE_COUNT] = [
        PerfStage::Router,
        PerfStage::StallWait,
        PerfStage::WalAppend,
        PerfStage::WalSync,
        PerfStage::Memtable,
        PerfStage::IndexProbe,
        PerfStage::BoundarySearch,
        PerfStage::BlockRead,
        PerfStage::VlogFetch,
        PerfStage::Other,
    ];

    /// Stable snake_case stage name (used in breakdown tables and CI
    /// completeness checks).
    pub fn name(self) -> &'static str {
        match self {
            PerfStage::Router => "router",
            PerfStage::StallWait => "stall_wait",
            PerfStage::WalAppend => "wal_append",
            PerfStage::WalSync => "wal_sync",
            PerfStage::Memtable => "memtable",
            PerfStage::IndexProbe => "index_probe",
            PerfStage::BoundarySearch => "boundary_search",
            PerfStage::BlockRead => "block_read",
            PerfStage::VlogFetch => "vlog_fetch",
            PerfStage::Other => "other",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Per-operation profile: stage timings plus probe/IO counts. Merges
/// additively, so a sampler can fold many profiled ops into one summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfContext {
    /// Microseconds attributed to each stage (indexed by `PerfStage`).
    pub stage_micros: [u64; PERF_STAGE_COUNT],
    /// Number of times each stage was marked.
    pub stage_hits: [u64; PERF_STAGE_COUNT],
    /// UnsortedStore hash-index candidate tables probed.
    pub hash_probes: u64,
    /// SSTable blocks read (cache hits + misses).
    pub block_reads: u64,
    /// Block-cache hits.
    pub cache_hits: u64,
    /// Block-cache misses.
    pub cache_misses: u64,
    /// Values fetched from a value log.
    pub vlog_fetches: u64,
    /// Total operation wall time (`t1 - t0`; equals the stage sum).
    pub total_micros: u64,
    /// Operations folded into this context (1 for a single op).
    pub ops: u64,
}

impl PerfContext {
    /// Microseconds for one stage.
    pub fn stage(&self, stage: PerfStage) -> u64 {
        self.stage_micros[stage.idx()]
    }

    /// Sum of all stage timings (always equals `total_micros`).
    pub fn stage_sum(&self) -> u64 {
        self.stage_micros.iter().sum()
    }

    /// Fold `other` into `self` (all fields add).
    pub fn merge(&mut self, other: &PerfContext) {
        for i in 0..PERF_STAGE_COUNT {
            self.stage_micros[i] += other.stage_micros[i];
            self.stage_hits[i] += other.stage_hits[i];
        }
        self.hash_probes += other.hash_probes;
        self.block_reads += other.block_reads;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.vlog_fetches += other.vlog_fetches;
        self.total_micros += other.total_micros;
        self.ops += other.ops;
    }

    /// Human-readable per-stage breakdown. Every declared stage appears,
    /// even when zero — CI completeness checks rely on this.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<16} {:>8} {:>12} {:>10}\n",
            "stage", "hits", "total_us", "avg_us"
        ));
        for stage in PerfStage::ALL {
            let us = self.stage_micros[stage.idx()];
            let hits = self.stage_hits[stage.idx()];
            let avg = if hits == 0 {
                0.0
            } else {
                us as f64 / hits as f64
            };
            out.push_str(&format!(
                "  {:<16} {:>8} {:>12} {:>10.1}\n",
                stage.name(),
                hits,
                us,
                avg
            ));
        }
        out.push_str(&format!(
            "  ops={} total_us={} hash_probes={} block_reads={} cache_hits={} cache_misses={} vlog_fetches={}\n",
            self.ops,
            self.total_micros,
            self.hash_probes,
            self.block_reads,
            self.cache_hits,
            self.cache_misses,
            self.vlog_fetches
        ));
        out
    }
}

struct ProfilerState {
    registry: Arc<MetricsRegistry>,
    ctx: PerfContext,
    start: u64,
    last: u64,
}

thread_local! {
    // Fast flag checked by every hook; the boxed state is only touched
    // while a profiled operation is in flight on this thread.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<ProfilerState>> = const { RefCell::new(None) };
}

/// True while a profiled operation is in flight on this thread.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Activate profiling for the current operation. `t0` is the clock
/// reading the operation already took for its latency histogram; no
/// extra clock read happens here. Must be paired with [`finish_at`].
pub fn begin_at(registry: Arc<MetricsRegistry>, t0: u64) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(ProfilerState {
            registry,
            ctx: PerfContext {
                ops: 1,
                ..PerfContext::default()
            },
            start: t0,
            last: t0,
        });
    });
    ACTIVE.with(|a| a.set(true));
}

/// Charge the time since the previous mark to `stage` (one clock read).
/// No-op — and no clock read — when no profiled op is in flight.
#[inline]
pub fn mark(stage: PerfStage) {
    if !is_active() {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let now = st.registry.now_micros();
            st.ctx.stage_micros[stage.idx()] += now.saturating_sub(st.last);
            st.ctx.stage_hits[stage.idx()] += 1;
            st.last = now;
        }
    });
}

#[inline]
fn with_ctx(f: impl FnOnce(&mut PerfContext)) {
    if !is_active() {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            f(&mut st.ctx);
        }
    });
}

/// Count hash-index candidates probed (no clock read).
#[inline]
pub fn count_hash_probes(n: u64) {
    with_ctx(|c| c.hash_probes += n);
}

/// Count one SSTable block read served from the block cache.
#[inline]
pub fn count_cache_hit() {
    with_ctx(|c| {
        c.block_reads += 1;
        c.cache_hits += 1;
    });
}

/// Count one SSTable block read that missed the cache (or ran uncached).
#[inline]
pub fn count_cache_miss() {
    with_ctx(|c| {
        c.block_reads += 1;
        c.cache_misses += 1;
    });
}

/// Count one value fetched from a value log.
#[inline]
pub fn count_vlog_fetch() {
    with_ctx(|c| c.vlog_fetches += 1);
}

/// Deactivate profiling without producing a context. Error paths call
/// this instead of [`finish_at`] so a failed profiled operation cannot
/// leave a stale profiler armed on the thread.
pub fn cancel() {
    ACTIVE.with(|a| a.set(false));
    STATE.with(|s| {
        s.borrow_mut().take();
    });
}

/// Deactivate profiling and return the finished profile. `t1` is the
/// clock reading the operation already took for its latency histogram;
/// the residual since the last mark is charged to [`PerfStage::Other`],
/// so `total_micros == stage_sum() == t1 - t0` exactly.
pub fn finish_at(t1: u64) -> PerfContext {
    ACTIVE.with(|a| a.set(false));
    STATE.with(|s| match s.borrow_mut().take() {
        Some(st) => {
            let mut ctx = st.ctx;
            let residual = t1.saturating_sub(st.last);
            ctx.stage_micros[PerfStage::Other.idx()] += residual;
            ctx.stage_hits[PerfStage::Other.idx()] += 1;
            ctx.total_micros = t1.saturating_sub(st.start);
            ctx
        }
        None => PerfContext::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::manual_step_clock;

    #[test]
    fn inactive_hooks_are_noops() {
        assert!(!is_active());
        mark(PerfStage::Router);
        count_hash_probes(3);
        count_cache_hit();
        count_cache_miss();
        count_vlog_fetch();
        // finish without begin yields an empty context.
        assert_eq!(finish_at(100), PerfContext::default());
    }

    #[test]
    fn stage_sums_equal_total_under_manual_clock() {
        let reg = MetricsRegistry::new(true, 0);
        reg.set_clock(Some(manual_step_clock(5)));
        let t0 = reg.now_micros(); // 5
        begin_at(reg.clone(), t0);
        assert!(is_active());
        mark(PerfStage::Router); // 10 -> router = 5
        mark(PerfStage::Memtable); // 15 -> memtable = 5
        count_hash_probes(2);
        mark(PerfStage::BlockRead); // 20 -> block_read = 5
        let t1 = reg.now_micros(); // 25
        let ctx = finish_at(t1);
        assert!(!is_active());
        assert_eq!(ctx.total_micros, 20);
        assert_eq!(ctx.stage_sum(), ctx.total_micros);
        assert_eq!(ctx.stage(PerfStage::Router), 5);
        assert_eq!(ctx.stage(PerfStage::Memtable), 5);
        assert_eq!(ctx.stage(PerfStage::BlockRead), 5);
        assert_eq!(ctx.stage(PerfStage::Other), 5);
        assert_eq!(ctx.hash_probes, 2);
        assert_eq!(ctx.ops, 1);
    }

    #[test]
    fn merge_adds_everything_and_table_lists_all_stages() {
        let reg = MetricsRegistry::new(true, 0);
        reg.set_clock(Some(manual_step_clock(1)));
        let t0 = reg.now_micros();
        begin_at(reg.clone(), t0);
        mark(PerfStage::WalAppend);
        count_cache_hit();
        let a = finish_at(reg.now_micros());
        let t0 = reg.now_micros();
        begin_at(reg.clone(), t0);
        mark(PerfStage::WalSync);
        count_cache_miss();
        count_vlog_fetch();
        let mut b = finish_at(reg.now_micros());
        b.merge(&a);
        assert_eq!(b.ops, 2);
        assert_eq!(b.block_reads, 2);
        assert_eq!(b.cache_hits, 1);
        assert_eq!(b.cache_misses, 1);
        assert_eq!(b.vlog_fetches, 1);
        assert_eq!(b.total_micros, a.total_micros + 2);
        assert_eq!(b.stage_sum(), b.total_micros);
        let table = b.render_table();
        for stage in PerfStage::ALL {
            assert!(table.contains(stage.name()), "missing {}", stage.name());
        }
    }
}
