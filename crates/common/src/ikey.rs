//! Internal key encoding: `user_key ++ fixed64(seq << 8 | value_type)`.
//!
//! Ordering is the LevelDB rule every engine in this workspace shares:
//! ascending by user key, then *descending* by sequence number, then
//! descending by value type — so the newest version of a key sorts first
//! and a seek at `(key, snapshot_seq)` lands on the newest visible version.

use crate::coding::{decode_fixed64, put_fixed64};
use crate::error::{Error, Result};
use std::cmp::Ordering;

/// Monotonically increasing write sequence number (56 bits usable).
pub type SequenceNumber = u64;

/// Largest representable sequence number (56 bits).
pub const MAX_SEQUENCE_NUMBER: SequenceNumber = (1 << 56) - 1;

/// The kind of a versioned record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// Tombstone: the key was deleted at this sequence number.
    Deletion = 0,
    /// Normal value.
    Value = 1,
}

impl ValueType {
    /// Decode from the low byte of the packed trailer.
    pub fn from_u8(v: u8) -> Result<ValueType> {
        match v {
            0 => Ok(ValueType::Deletion),
            1 => Ok(ValueType::Value),
            other => Err(Error::corruption(format!("bad value type {other}"))),
        }
    }
}

/// Value type used when seeking: sorts before all real types at the same
/// sequence number, so a seek finds the first entry with `seq' <= seq`.
pub const VALUE_TYPE_FOR_SEEK: ValueType = ValueType::Value;

/// Pack a sequence number and type into the 8-byte trailer.
#[inline]
pub fn pack_seq_and_type(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE_NUMBER);
    (seq << 8) | t as u64
}

/// Append the encoded internal key for `(user_key, seq, t)` to `dst`.
pub fn append_internal_key(dst: &mut Vec<u8>, user_key: &[u8], seq: SequenceNumber, t: ValueType) {
    dst.extend_from_slice(user_key);
    put_fixed64(dst, pack_seq_and_type(seq, t));
}

/// Build an encoded internal key.
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Vec<u8> {
    let mut v = Vec::with_capacity(user_key.len() + 8);
    append_internal_key(&mut v, user_key, seq, t);
    v
}

/// Extract the user key portion of an encoded internal key.
///
/// # Panics
/// Panics in debug builds if `ikey` is shorter than the 8-byte trailer.
#[inline]
pub fn extract_user_key(ikey: &[u8]) -> &[u8] {
    debug_assert!(ikey.len() >= 8, "internal key too short");
    &ikey[..ikey.len() - 8]
}

/// Extract `(seq, type)` from an encoded internal key.
pub fn extract_seq_type(ikey: &[u8]) -> Result<(SequenceNumber, ValueType)> {
    if ikey.len() < 8 {
        return Err(Error::corruption("internal key too short"));
    }
    let packed = decode_fixed64(&ikey[ikey.len() - 8..]);
    let t = ValueType::from_u8((packed & 0xff) as u8)?;
    Ok((packed >> 8, t))
}

/// Compare two encoded internal keys under the internal ordering.
pub fn compare_internal_keys(a: &[u8], b: &[u8]) -> Ordering {
    let ua = extract_user_key(a);
    let ub = extract_user_key(b);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = decode_fixed64(&a[a.len() - 8..]);
            let tb = decode_fixed64(&b[b.len() - 8..]);
            // Higher (seq,type) sorts first.
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// An owned, parsed internal key. Handy for metadata (SSTable boundaries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    encoded: Vec<u8>,
}

impl InternalKey {
    /// Build from parts.
    pub fn new(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Self {
        InternalKey {
            encoded: make_internal_key(user_key, seq, t),
        }
    }

    /// Wrap an already-encoded internal key, validating its trailer.
    pub fn decode(encoded: &[u8]) -> Result<Self> {
        extract_seq_type(encoded)?;
        Ok(InternalKey {
            encoded: encoded.to_vec(),
        })
    }

    /// The raw encoded bytes.
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// The user key portion.
    pub fn user_key(&self) -> &[u8] {
        extract_user_key(&self.encoded)
    }

    /// The sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        extract_seq_type(&self.encoded)
            .expect("validated at construction")
            .0
    }

    /// The value type.
    pub fn value_type(&self) -> ValueType {
        extract_seq_type(&self.encoded)
            .expect("validated at construction")
            .1
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_internal_keys(&self.encoded, &other.encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let ik = make_internal_key(b"foo", 42, ValueType::Value);
        assert_eq!(extract_user_key(&ik), b"foo");
        assert_eq!(extract_seq_type(&ik).unwrap(), (42, ValueType::Value));
    }

    #[test]
    fn ordering_user_key_ascending() {
        let a = make_internal_key(b"a", 100, ValueType::Value);
        let b = make_internal_key(b"b", 1, ValueType::Value);
        assert_eq!(compare_internal_keys(&a, &b), Ordering::Less);
    }

    #[test]
    fn ordering_seq_descending_within_key() {
        let new = make_internal_key(b"k", 10, ValueType::Value);
        let old = make_internal_key(b"k", 5, ValueType::Value);
        assert_eq!(compare_internal_keys(&new, &old), Ordering::Less);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_seq() {
        let v = make_internal_key(b"k", 7, ValueType::Value);
        let d = make_internal_key(b"k", 7, ValueType::Deletion);
        assert_eq!(compare_internal_keys(&v, &d), Ordering::Less);
    }

    #[test]
    fn bad_type_is_corruption() {
        let mut ik = make_internal_key(b"k", 7, ValueType::Value);
        let n = ik.len();
        ik[n - 8] = 99; // clobber the type byte
        assert!(extract_seq_type(&ik).is_err());
        assert!(InternalKey::decode(&ik).is_err());
    }

    #[test]
    fn internal_key_struct_accessors() {
        let ik = InternalKey::new(b"user", 9, ValueType::Deletion);
        assert_eq!(ik.user_key(), b"user");
        assert_eq!(ik.sequence(), 9);
        assert_eq!(ik.value_type(), ValueType::Deletion);
        let back = InternalKey::decode(ik.encoded()).unwrap();
        assert_eq!(back, ik);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(key in proptest::collection::vec(any::<u8>(), 0..64),
                          seq in 0u64..MAX_SEQUENCE_NUMBER,
                          t in prop_oneof![Just(ValueType::Value), Just(ValueType::Deletion)]) {
            let ik = make_internal_key(&key, seq, t);
            prop_assert_eq!(extract_user_key(&ik), &key[..]);
            prop_assert_eq!(extract_seq_type(&ik).unwrap(), (seq, t));
        }

        #[test]
        fn prop_order_consistent_with_tuple(
            k1 in proptest::collection::vec(any::<u8>(), 0..8),
            s1 in 0u64..1000,
            k2 in proptest::collection::vec(any::<u8>(), 0..8),
            s2 in 0u64..1000,
        ) {
            let a = make_internal_key(&k1, s1, ValueType::Value);
            let b = make_internal_key(&k2, s2, ValueType::Value);
            let expect = (&k1, std::cmp::Reverse(s1)).cmp(&(&k2, std::cmp::Reverse(s2)));
            prop_assert_eq!(compare_internal_keys(&a, &b), expect);
        }
    }
}
